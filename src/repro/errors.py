"""Top-level exception hierarchy shared by all repro subsystems.

Every error raised by the Descend compiler or the GPU simulator derives from
:class:`ReproError` so that applications embedding the library can catch a
single exception type.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DescendError(ReproError):
    """Base class for errors raised by the Descend compiler."""


class DescendSyntaxError(DescendError):
    """Raised by the lexer or parser on malformed source code."""

    def __init__(self, message: str, diagnostic=None):
        super().__init__(message)
        self.diagnostic = diagnostic


class DescendTypeError(DescendError):
    """Raised by the type checker when a program violates Descend's rules.

    The attached :attr:`diagnostic` carries the error code, primary span and
    labels used to render the rustc-style error messages shown in the paper.
    """

    def __init__(self, message: str, diagnostic=None):
        super().__init__(message)
        self.diagnostic = diagnostic

    @property
    def code(self) -> str:
        if self.diagnostic is not None:
            return self.diagnostic.code
        return ""


class DescendCodegenError(DescendError):
    """Raised when code generation encounters an unsupported construct."""


class DescendRuntimeError(DescendError):
    """Raised by the Descend interpreter when executing a program fails."""


class GpuSimError(ReproError):
    """Base class for errors raised by the GPU simulator substrate."""


class DeviceMemoryError(GpuSimError):
    """Invalid device memory operation (bad handle, out-of-bounds access...)."""


class LaunchConfigurationError(GpuSimError):
    """A kernel launch used an invalid grid/block configuration."""


class BarrierDivergenceError(GpuSimError):
    """Threads of one block did not all reach the same barrier."""


class DataRaceError(GpuSimError):
    """The dynamic race detector observed conflicting accesses."""

    def __init__(self, message: str, races=None):
        super().__init__(message)
        self.races = list(races or [])


class BenchmarkError(ReproError):
    """Raised by the benchmark harness on invalid configurations."""
