"""Block-wide parallel reduction in Descend.

Every block reduces its chunk of the input to one partial sum in shared
memory using the classic tree reduction.  The loop over reduction steps
splits the block's threads at the (halving) stride position — only the
"active" half performs additions — and a block-wide barrier separates the
steps.  This is the Descend idiom for the ``if (tid < s)`` pattern of the
handwritten CUDA kernel.
"""

from __future__ import annotations

import math

from repro.descend.builder import *
from repro.descend.ast import terms as T
from repro.descend.nat import NatBinOp, NatConst, NatVar, as_nat


def build_reduce_kernel(n: int, block_size: int) -> T.FunDef:
    """Per-block sums of an ``n``-element vector with ``block_size`` threads per block."""
    if n % block_size != 0:
        raise ValueError("n must be divisible by block_size")
    if block_size & (block_size - 1):
        raise ValueError("block_size must be a power of two")
    num_blocks = n // block_size
    log_steps = int(math.log2(block_size))

    # stride of reduction step k: block_size / 2^(k+1)
    stride = as_nat(block_size) / (as_nat(2) ** (NatVar("k") + 1))

    load_elem = var("input").view("group", block_size).select("block").select("thread")

    active_sum = assign(
        var("tmp").view("split", stride).fst.select("thread"),
        add(
            read(var("tmp").view("split", stride).fst.select("thread")),
            read(var("tmp").view("split", stride).snd.view("split", stride).fst.select("thread")),
        ),
    )

    return fun(
        "block_reduce",
        [
            param("input", shared_ref(GPU_GLOBAL, array(F64, n))),
            param("output", uniq_ref(GPU_GLOBAL, array(F64, num_blocks))),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                let("tmp", alloc_shared(array(F64, block_size))),
                sched("X", "thread", "block", assign(var("tmp").select("thread"), read(load_elem))),
                for_nat(
                    "k",
                    0,
                    log_steps,
                    sync(),
                    split_exec(
                        "X",
                        "block",
                        stride,
                        ("active", block(sched("X", "thread", "active", active_sum))),
                        ("inactive", block()),
                    ),
                ),
                sync(),
                split_exec(
                    "X",
                    "block",
                    1,
                    (
                        "first",
                        block(
                            sched(
                                "X",
                                "t",
                                "first",
                                assign(
                                    var("output").select("block"),
                                    read(var("tmp").view("split", 1).fst.select("t")),
                                ),
                            )
                        ),
                    ),
                    ("rest", block()),
                ),
            )
        ),
    )


def build_reduce_program(n: int = 1024, block_size: int = 64) -> T.Program:
    return program(build_reduce_kernel(n, block_size))
