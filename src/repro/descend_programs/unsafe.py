"""The ill-typed programs of Section 2: each paired with the error that rejects it.

Every builder returns a :class:`~repro.descend.ast.terms.Program` that the
type checker must *reject*; :data:`UNSAFE_PROGRAMS` maps a short name to the
builder and the expected error code, and is used by the tests and by
``examples/safety_errors.py`` to regenerate the paper's error listings.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.descend.builder import *
from repro.descend.ast import terms as T


def build_rev_per_block_race(n: int = 256, block_size: int = 32) -> T.Program:
    """Section 2.2 — ``rev_per_block``: reading the reversed block while writing it.

    Expected rejection: E0001 (conflicting memory access).
    """
    num_blocks = n // block_size
    write_elem = var("arr").view("group", block_size).select("block").select("thread")
    read_elem = var("arr").view("group", block_size).select("block").view("rev").select("thread")
    kernel = fun(
        "rev_per_block",
        [param("arr", uniq_ref(GPU_GLOBAL, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched("X", "thread", "block", assign(write_elem, read(read_elem))),
            )
        ),
    )
    return program(kernel)


def build_barrier_in_split(block_size: int = 64) -> T.Program:
    """Section 2.2 — a barrier executed by only the first 32 threads of a block.

    Expected rejection: E0002 (barrier not allowed here).
    """
    kernel = fun(
        "kernel",
        [param("arr", uniq_ref(GPU_GLOBAL, array(F64, 1024)))],
        gpu_grid_spec("grid", dim_x(16), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                split_exec(
                    "X",
                    "block",
                    32,
                    ("first_32_threads", block(sync())),
                    ("rest", block()),
                ),
            )
        ),
    )
    return program(kernel)


def build_swapped_copy_args(n: int = 256) -> T.Program:
    """Section 2.3 — ``copy_mem_to_host`` with destination and source swapped.

    Expected rejection: E0003 (mismatched types / memory spaces).
    """
    host = fun(
        "host_fun",
        [param("h_vec", uniq_ref(CPU_MEM, array(F64, n)))],
        cpu_spec("t"),
        body(
            let("d_vec", gpu_alloc_copy(borrow(var("h_vec").deref()))),
            # swapped: the GPU buffer is passed as the destination's *source* side
            copy_to_host(uniq_borrow(var("d_vec").deref()), borrow(var("h_vec").deref())),
        ),
    )
    return program(host)


def build_cpu_pointer_on_gpu(n: int = 256, block_size: int = 32) -> T.Program:
    """Section 2.3 — a GPU kernel dereferencing a pointer into CPU memory.

    Expected rejection: E0004 (cannot dereference `cpu.mem` on the GPU).
    """
    num_blocks = n // block_size
    kernel = fun(
        "init_kernel",
        [param("vec", uniq_ref(CPU_MEM, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    assign(
                        var("vec").deref().view("group", block_size).select("block").select("thread"),
                        lit_f64(1.0),
                    ),
                ),
            )
        ),
    )
    return program(kernel)


def build_wrong_launch_config(n: int = 1024, block_size: int = 64) -> T.Program:
    """Section 2.3 — launching ``scale_vec`` with the wrong grid shape.

    Expected rejection: E0005 (mismatched launch configuration).
    """
    num_blocks = n // block_size
    elem = var("vec").view("group", block_size).select("block").select("thread")
    kernel = fun(
        "scale_vec",
        [param("vec", uniq_ref(GPU_GLOBAL, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched("X", "thread", "block", assign(elem, mul(read(elem), lit_f64(3.0)))),
            )
        ),
    )
    host = fun(
        "host_fun",
        [param("h_vec", uniq_ref(CPU_MEM, array(F64, n)))],
        cpu_spec("t"),
        body(
            let("d_vec", gpu_alloc_copy(borrow(var("h_vec").deref()))),
            # wrong: one block of `n` threads instead of `num_blocks` x `block_size`
            launch("scale_vec", dim_x(1), dim_x(n), uniq_borrow(var("d_vec").deref())),
        ),
    )
    return program(kernel, host)


def build_wrong_vector_size(n: int = 1024, block_size: int = 64) -> T.Program:
    """Section 2.3 — launching with a vector whose size does not match the kernel.

    Expected rejection: E0005 (mismatched types on the kernel argument).
    """
    num_blocks = n // block_size
    elem = var("vec").view("group", block_size).select("block").select("thread")
    kernel = fun(
        "scale_vec",
        [param("vec", uniq_ref(GPU_GLOBAL, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched("X", "thread", "block", assign(elem, mul(read(elem), lit_f64(3.0)))),
            )
        ),
    )
    host = fun(
        "host_fun",
        [param("h_vec", uniq_ref(CPU_MEM, array(F64, 2 * n)))],
        cpu_spec("t"),
        body(
            let("d_vec", gpu_alloc_copy(borrow(var("h_vec").deref()))),
            launch(
                "scale_vec",
                dim_x(num_blocks),
                dim_x(block_size),
                uniq_borrow(var("d_vec").deref()),
            ),
        ),
    )
    return program(kernel, host)


def build_borrow_narrowing_violation() -> T.Program:
    """Section 3.3 — borrowing the whole array uniquely after scheduling blocks.

    Expected rejection: E0006 (narrowing violated).
    """
    kernel = fun(
        "kernel",
        [param("arr", uniq_ref(GPU_GLOBAL, array(F32, 1024)))],
        gpu_grid_spec("grid", dim_x(32), dim_x(32)),
        body(
            sched("X", "block", "grid", let("in_borrow", uniq_borrow(var("arr").deref()))),
        ),
    )
    return program(kernel)


def build_select_narrowing_violation() -> T.Program:
    """Section 3.3 — selecting per thread without first narrowing per block.

    Expected rejection: E0006 (narrowing violated).
    """
    kernel = fun(
        "kernel",
        [param("arr", uniq_ref(GPU_GLOBAL, array(F32, 1024)))],
        gpu_grid_spec("grid", dim_x(32), dim_x(32)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    let("grp", uniq_borrow(var("arr").view("group", 32).select("thread"))),
                ),
            )
        ),
    )
    return program(kernel)


def build_missing_sync(n: int = 256, block_size: int = 32) -> T.Program:
    """Transpose-like kernel with the barrier removed.

    Expected rejection: E0001 (conflicting memory access).
    """
    num_blocks = n // block_size
    kernel = fun(
        "kernel",
        [param("arr", uniq_ref(GPU_GLOBAL, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                let("tmp", alloc_shared(array(F64, block_size))),
                sched(
                    "X",
                    "thread",
                    "block",
                    assign(
                        var("tmp").select("thread"),
                        read(var("arr").view("group", block_size).select("block").select("thread")),
                    ),
                    # missing `sync` here
                    assign(
                        var("arr").view("group", block_size).select("block").select("thread"),
                        read(var("tmp").view("rev").select("thread")),
                    ),
                ),
            )
        ),
    )
    return program(kernel)


#: name -> (builder, expected error code)
UNSAFE_PROGRAMS: Dict[str, Tuple[Callable[[], T.Program], str]] = {
    "rev_per_block_race": (build_rev_per_block_race, "E0001"),
    "barrier_in_split": (build_barrier_in_split, "E0002"),
    "swapped_copy_args": (build_swapped_copy_args, "E0003"),
    "cpu_pointer_on_gpu": (build_cpu_pointer_on_gpu, "E0004"),
    "wrong_launch_config": (build_wrong_launch_config, "E0005"),
    "wrong_vector_size": (build_wrong_vector_size, "E0005"),
    "borrow_narrowing_violation": (build_borrow_narrowing_violation, "E0006"),
    "select_narrowing_violation": (build_select_narrowing_violation, "E0006"),
    "missing_sync": (build_missing_sync, "E0001"),
}
