"""Three-point stencil in Descend: halo exchange through view windows.

``out[i] = (inp[i] + inp[i+1] + inp[i+2]) / 3`` over a padded input of
``n + 2`` elements.  The halo is expressed purely with views: three
overlapping windows of the padded input —

* left   = ``inp.split::<n>.fst``                 (elements ``0 .. n``),
* center = ``inp.split::<1>.snd.split::<n>.fst``  (elements ``1 .. n+1``),
* right  = ``inp.split::<2>.snd``                 (elements ``2 .. n+2``),

each grouped per block and selected per thread.  Neighbouring threads (and
neighbouring blocks, at chunk boundaries) read the *same* padded cells, so
the windows genuinely overlap — the shared/unique distinction is what makes
this safe, and the race detector sees the overlapping read sets.  Writes go
to the distinct per-thread cells of ``out``.
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def _window(offset: int, n: int):
    """The ``n``-element window of the padded input starting at ``offset``."""
    place = var("inp")
    if offset > 0:
        place = place.view("split", offset).snd
    return place.view("split", n).fst


def _window_elem(offset: int, n: int, block_size: int):
    """Per-thread element of one shifted window."""
    return _window(offset, n).view("group", block_size).select("block").select("thread")


def build_stencil_kernel(n: int, block_size: int) -> T.FunDef:
    """``out[i]`` = mean of the three padded cells ``inp[i..i+2]``."""
    if n % block_size != 0:
        raise ValueError("n must be divisible by block_size")
    num_blocks = n // block_size
    out_cell = var("out").view("group", block_size).select("block").select("thread")
    return fun(
        "stencil3",
        [
            param("inp", shared_ref(GPU_GLOBAL, array(F64, n + 2))),
            param("out", uniq_ref(GPU_GLOBAL, array(F64, n))),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    assign(
                        out_cell,
                        mul(
                            add(
                                add(
                                    read(_window_elem(0, n, block_size)),
                                    read(_window_elem(1, n, block_size)),
                                ),
                                read(_window_elem(2, n, block_size)),
                            ),
                            lit_f64(1.0 / 3.0),
                        ),
                    ),
                ),
            )
        ),
    )


def build_stencil_program(n: int = 256, block_size: int = 32) -> T.Program:
    return program(build_stencil_kernel(n, block_size))
