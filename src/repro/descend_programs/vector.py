"""Vector scaling in Descend (the ``scale_vec`` example of Section 2.3).

Contains both the GPU function and a host function that allocates GPU memory,
copies the data, launches the kernel with the matching configuration, and
copies the result back — the full heterogeneous pipeline of the paper's
holistic programming model.
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def element_place(vec: str, block_size: int):
    """``vec.group::<block_size>[[block]][[thread]]`` — one element per thread."""
    return var(vec).view("group", block_size).select("block").select("thread")


def build_scale_kernel(n: int, block_size: int, factor: float = 3.0) -> T.FunDef:
    """The GPU function: every thread scales one element of the vector."""
    if n % block_size != 0:
        raise ValueError("n must be divisible by block_size")
    num_blocks = n // block_size
    return fun(
        "scale_vec",
        [param("vec", uniq_ref(GPU_GLOBAL, array(F64, n)))],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    assign(
                        element_place("vec", block_size),
                        mul(read(element_place("vec", block_size)), lit_f64(factor)),
                    ),
                ),
            )
        ),
    )


def build_host_scale(n: int, block_size: int) -> T.FunDef:
    """The host function: allocate, copy, launch, copy back."""
    num_blocks = n // block_size
    return fun(
        "host_scale",
        [param("h_vec", uniq_ref(CPU_MEM, array(F64, n)))],
        cpu_spec("t"),
        body(
            let("d_vec", gpu_alloc_copy(borrow(var("h_vec").deref()))),
            launch(
                "scale_vec",
                dim_x(num_blocks),
                dim_x(block_size),
                uniq_borrow(var("d_vec").deref()),
            ),
            copy_to_host(uniq_borrow(var("h_vec").deref()), borrow(var("d_vec").deref())),
        ),
    )


def build_scale_program(n: int = 1024, block_size: int = 64, factor: float = 3.0) -> T.Program:
    """The whole program: GPU kernel plus host pipeline."""
    return program(build_scale_kernel(n, block_size, factor), build_host_scale(n, block_size))


def build_saxpy_kernel(n: int, block_size: int) -> T.FunDef:
    """``y[i] = alpha * x[i] + y[i]`` — a second element-wise example."""
    num_blocks = n // block_size
    y_elem = var("y").view("group", block_size).select("block").select("thread")
    x_elem = var("x").view("group", block_size).select("block").select("thread")
    return fun(
        "saxpy",
        [
            param("y", uniq_ref(GPU_GLOBAL, array(F64, n))),
            param("x", shared_ref(GPU_GLOBAL, array(F64, n))),
            param("alpha", F64),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    assign(y_elem, add(mul(read(var("alpha")), read(x_elem)), read(y_elem))),
                ),
            )
        ),
    )


def build_saxpy_program(n: int = 1024, block_size: int = 64) -> T.Program:
    return program(build_saxpy_kernel(n, block_size))
