"""Two-kernel inclusive scan in Descend.

Kernel 1 (``scan_blocks``): every thread sequentially scans its own chunk of
``elems_per_thread`` elements into the output, the per-thread totals are
scanned in shared memory by a single thread of the block (obtained by
splitting the block at 1), the block's total sum is written out, and finally
every thread adds its exclusive offset to its chunk.

Between the kernels the host performs an exclusive scan over the (small)
array of per-block sums.

Kernel 2 (``add_offsets``): every thread adds its block's offset to its
chunk, completing the global scan.  The harness measures kernel 1 + kernel 2,
as the paper does.
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def _chunk_elem(root: str, chunk: int, elems_per_thread: int):
    """``root.group::<chunk>[[block]].group::<elems_per_thread>[[thread]][j]``."""
    return (
        var(root)
        .view("group", chunk)
        .select("block")
        .view("group", elems_per_thread)
        .select("thread")
        .idx("j")
    )


def build_scan_kernel(n: int, block_size: int, elems_per_thread: int) -> T.FunDef:
    """Kernel 1: per-block scan with per-thread sequential chunks."""
    chunk = block_size * elems_per_thread
    if n % chunk != 0:
        raise ValueError("n must be divisible by block_size * elems_per_thread")
    num_blocks = n // chunk

    phase1 = sched(
        "X",
        "thread",
        "block",
        let("running", lit_f64(0.0)),
        for_nat(
            "j",
            0,
            elems_per_thread,
            assign(
                var("running"),
                add(read(var("running")), read(_chunk_elem("input", chunk, elems_per_thread))),
            ),
            assign(_chunk_elem("output", chunk, elems_per_thread), read(var("running"))),
        ),
        assign(var("sums").select("thread"), read(var("running"))),
    )

    phase2 = split_exec(
        "X",
        "block",
        1,
        (
            "first",
            block(
                sched(
                    "X",
                    "t",
                    "first",
                    let("acc", lit_f64(0.0)),
                    for_nat(
                        "i",
                        0,
                        block_size,
                        let("value", read(var("sums").idx("i"))),
                        assign(var("sums").idx("i"), read(var("acc"))),
                        assign(var("acc"), add(read(var("acc")), read(var("value")))),
                    ),
                    assign(var("block_sums").select("block"), read(var("acc"))),
                )
            ),
        ),
        ("rest", block()),
    )

    phase3 = sched(
        "X",
        "thread",
        "block",
        for_nat(
            "j",
            0,
            elems_per_thread,
            assign(
                _chunk_elem("output", chunk, elems_per_thread),
                add(
                    read(_chunk_elem("output", chunk, elems_per_thread)),
                    read(var("sums").select("thread")),
                ),
            ),
        ),
    )

    return fun(
        "scan_blocks",
        [
            param("input", shared_ref(GPU_GLOBAL, array(F64, n))),
            param("output", uniq_ref(GPU_GLOBAL, array(F64, n))),
            param("block_sums", uniq_ref(GPU_GLOBAL, array(F64, num_blocks))),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                let("sums", alloc_shared(array(F64, block_size))),
                phase1,
                sync(),
                phase2,
                sync(),
                phase3,
            )
        ),
    )


def build_add_offsets_kernel(n: int, block_size: int, elems_per_thread: int) -> T.FunDef:
    """Kernel 2: add each block's exclusive offset to its chunk of the output."""
    chunk = block_size * elems_per_thread
    num_blocks = n // chunk
    return fun(
        "add_offsets",
        [
            param("output", uniq_ref(GPU_GLOBAL, array(F64, n))),
            param("offsets", shared_ref(GPU_GLOBAL, array(F64, num_blocks))),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(block_size)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    for_nat(
                        "j",
                        0,
                        elems_per_thread,
                        assign(
                            _chunk_elem("output", chunk, elems_per_thread),
                            add(
                                read(_chunk_elem("output", chunk, elems_per_thread)),
                                read(var("offsets").select("block")),
                            ),
                        ),
                    ),
                ),
            )
        ),
    )


def build_scan_program(n: int = 1024, block_size: int = 32, elems_per_thread: int = 4) -> T.Program:
    return program(
        build_scan_kernel(n, block_size, elems_per_thread),
        build_add_offsets_kernel(n, block_size, elems_per_thread),
    )
