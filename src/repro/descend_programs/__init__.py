"""Descend programs: the paper's benchmarks and examples written in Descend.

Every builder function returns a fully concrete :class:`~repro.descend.ast.terms.Program`
(sizes baked in as nat constants) that type checks and can be

* executed on the GPU simulator through :class:`repro.descend.interp.DescendKernel`, and
* compiled to CUDA C++ through :mod:`repro.descend.codegen`.

Modules:

* :mod:`repro.descend_programs.vector` — vector scaling (quickstart / §2.3),
* :mod:`repro.descend_programs.reduce` — block-wide tree reduction,
* :mod:`repro.descend_programs.transpose` — tiled matrix transposition (Listing 2),
* :mod:`repro.descend_programs.scan` — two-kernel scan,
* :mod:`repro.descend_programs.matmul` — tiled matrix multiplication,
* :mod:`repro.descend_programs.histogram` — gather-style bin counting,
* :mod:`repro.descend_programs.stencil` — three-point stencil via view windows,
* :mod:`repro.descend_programs.unsafe` — the ill-typed programs of Section 2
  (each paired with the error code Descend rejects it with).
"""

from repro.descend_programs import (
    histogram,
    matmul,
    reduce,
    scan,
    stencil,
    transpose,
    unsafe,
    vector,
)

__all__ = [
    "vector",
    "reduce",
    "transpose",
    "scan",
    "matmul",
    "histogram",
    "stencil",
    "unsafe",
]
