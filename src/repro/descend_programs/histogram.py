"""Histogram in Descend: contended bin counting through views.

The classic CUDA histogram contends on atomic adds; Descend has no atomics,
and its type system (correctly) rejects any schedule in which two threads
write the same bin.  The Descend idiom is therefore *gather-style*: every
thread owns one bin, scans its block's chunk of the key stream, and counts
the keys matching its bin behind a divergent ``if`` — every thread of a
block reads every element of the chunk, so the race detector sees maximal
overlapping read sets next to the per-thread uniq writes, exercising its
batched checking paths.

Kernel 1 (``histogram_partials``): grid of ``num_blocks`` blocks with one
thread per bin.  Thread ``t`` reads its bin id from ``bin_ids`` (the host
fills it with ``0..bins-1``), walks the block's chunk of ``keys``, and
counts matches into a register; the count lands in the per-(block, bin)
cell of ``partials``.

Kernel 2 (``combine_bins``): one block of ``bins`` threads; thread ``t``
sums column ``t`` of the ``num_blocks x bins`` partials matrix into
``bins_out``.
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def _key_elem(chunk: int):
    """``keys.group::<chunk>[[block]][j]`` — element ``j`` of the block's chunk,
    read by *every* thread of the block (overlapping shared reads)."""
    return var("keys").view("group", chunk).select("block").idx("j")


def build_histogram_kernel(n: int, bins: int, num_blocks: int) -> T.FunDef:
    """Per-block bin counts: ``partials[block][t] = |{j : keys_chunk[j] == t}|``."""
    if n % num_blocks != 0:
        raise ValueError("n must be divisible by num_blocks")
    chunk = n // num_blocks
    partial_cell = var("partials").view("group", bins).select("block").select("thread")
    return fun(
        "histogram_partials",
        [
            param("keys", shared_ref(GPU_GLOBAL, array(F64, n))),
            param("bin_ids", shared_ref(GPU_GLOBAL, array(F64, bins))),
            param("partials", uniq_ref(GPU_GLOBAL, array(F64, num_blocks * bins))),
        ],
        gpu_grid_spec("grid", dim_x(num_blocks), dim_x(bins)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    let("my_bin", read(var("bin_ids").select("thread"))),
                    let("count", lit_f64(0.0)),
                    for_nat(
                        "j",
                        0,
                        chunk,
                        if_(
                            eq(read(_key_elem(chunk)), read(var("my_bin"))),
                            block(
                                assign(var("count"), add(read(var("count")), lit_f64(1.0)))
                            ),
                        ),
                    ),
                    assign(partial_cell, read(var("count"))),
                ),
            )
        ),
    )


def build_combine_kernel(bins: int, num_blocks: int) -> T.FunDef:
    """Column sums of the partials matrix: ``bins_out[t] = sum_i partials[i][t]``."""
    partial_row = var("partials").view("group", bins).idx("i").select("thread")
    return fun(
        "combine_bins",
        [
            param("partials", shared_ref(GPU_GLOBAL, array(F64, num_blocks * bins))),
            param("bins_out", uniq_ref(GPU_GLOBAL, array(F64, bins))),
        ],
        gpu_grid_spec("grid", dim_x(1), dim_x(bins)),
        body(
            sched(
                "X",
                "block",
                "grid",
                sched(
                    "X",
                    "thread",
                    "block",
                    let("acc", lit_f64(0.0)),
                    for_nat(
                        "i",
                        0,
                        num_blocks,
                        assign(var("acc"), add(read(var("acc")), read(partial_row))),
                    ),
                    assign(var("bins_out").select("thread"), read(var("acc"))),
                ),
            )
        ),
    )


def build_histogram_program(n: int = 256, bins: int = 16, num_blocks: int = 4) -> T.Program:
    """Both kernels; the host seeds ``bin_ids`` with ``0..bins-1``."""
    return program(
        build_histogram_kernel(n, bins, num_blocks),
        build_combine_kernel(bins, num_blocks),
    )
