"""Tiled matrix transposition in Descend (Listing 2 of the paper).

A grid of ``(n/tile)²`` blocks, each with ``tile × rows`` threads, transposes
an ``n × n`` matrix.  Every block stages one tile in shared memory; every
thread copies ``tile / rows`` elements per phase using the composed views
``group_by_tile``, ``transpose`` and ``group_by_row`` — exactly the access
pattern of the paper's Listing 1/2 (with the within-tile transposition made
explicit through a ``transpose`` view on the staged tile, which reproduces
the ``tmp[threadIdx.x*32 + threadIdx.y + j]`` read of the CUDA listing).
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def build_transpose_kernel(n: int, tile: int = 16, rows: int = 4) -> T.FunDef:
    """The GPU transposition function for an ``n × n`` matrix of f64."""
    if n % tile != 0:
        raise ValueError("matrix size must be divisible by the tile size")
    if tile % rows != 0:
        raise ValueError("tile size must be divisible by the block's row count")
    blocks_per_dim = n // tile
    per_thread = tile // rows

    # input tile for block (y, x) is tile (x, y): group into tiles, swap with
    # `transpose`, then distribute the tile rows over the block's threads.
    input_elem = (
        var("input")
        .view("group_by_tile", tile, tile)
        .view("transpose")
        .select("block")
        .view("group_by_row", tile, per_thread)
        .select("thread")
        .idx("i")
    )
    tmp_store = var("tmp").view("group_by_row", tile, per_thread).select("thread").idx("i")
    # reading the staged tile transposed yields the fully transposed matrix
    tmp_load = (
        var("tmp")
        .view("transpose")
        .view("group_by_row", tile, per_thread)
        .select("thread")
        .idx("i")
    )
    output_elem = (
        var("output")
        .view("group_by_tile", tile, tile)
        .select("block")
        .view("group_by_row", tile, per_thread)
        .select("thread")
        .idx("i")
    )

    return fun(
        "transpose",
        [
            param("input", shared_ref(GPU_GLOBAL, array2d(F64, n, n))),
            param("output", uniq_ref(GPU_GLOBAL, array2d(F64, n, n))),
        ],
        gpu_grid_spec(
            "grid",
            dim_xy(blocks_per_dim, blocks_per_dim),
            dim_xy(tile, rows),
        ),
        body(
            sched(
                "YX",
                "block",
                "grid",
                let("tmp", alloc_shared(array2d(F64, tile, tile))),
                sched(
                    "YX",
                    "thread",
                    "block",
                    for_nat("i", 0, per_thread, assign(tmp_store, read(input_elem))),
                    sync(),
                    for_nat("i", 0, per_thread, assign(output_elem, read(tmp_load))),
                ),
            )
        ),
    )


def build_transpose_program(n: int = 64, tile: int = 16, rows: int = 4) -> T.Program:
    return program(build_transpose_kernel(n, tile, rows))
