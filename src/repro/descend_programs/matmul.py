"""Tiled matrix multiplication in Descend (the MM benchmark).

Every block computes one ``tile × tile`` tile of ``C = A × B``; per phase it
stages a tile of A and a tile of B in shared memory (distributed over the
block's threads via selects), synchronises, accumulates the per-thread dot
product, and synchronises again before the next phase overwrites the staged
tiles.
"""

from __future__ import annotations

from repro.descend.builder import *
from repro.descend.ast import terms as T


def build_matmul_kernel(m: int, k: int, n: int, tile: int = 8) -> T.FunDef:
    """``C[m, n] = A[m, k] × B[k, n]`` with ``tile × tile`` thread blocks."""
    for size, label in ((m, "m"), (k, "k"), (n, "n")):
        if size % tile != 0:
            raise ValueError(f"{label} must be divisible by the tile size")

    a_elem = (
        var("a")
        .view("group_by_tile", tile, tile)
        .select("brow")
        .idx("p")
        .select("ty")
        .select("tx")
    )
    b_elem = (
        var("b")
        .view("group_by_tile", tile, tile)
        .idx("p")
        .select("bcol")
        .select("ty")
        .select("tx")
    )
    c_elem = (
        var("c")
        .view("group_by_tile", tile, tile)
        .select("brow")
        .select("bcol")
        .select("ty")
        .select("tx")
    )

    phase_body = [
        assign(var("a_tile").select("ty").select("tx"), read(a_elem)),
        assign(var("b_tile").select("ty").select("tx"), read(b_elem)),
        sync(),
        for_nat(
            "kk",
            0,
            tile,
            assign(
                var("acc"),
                add(
                    read(var("acc")),
                    mul(
                        read(var("a_tile").select("ty").idx("kk")),
                        read(var("b_tile").idx("kk").select("tx")),
                    ),
                ),
            ),
        ),
        sync(),
    ]

    return fun(
        "matmul",
        [
            param("a", shared_ref(GPU_GLOBAL, array2d(F64, m, k))),
            param("b", shared_ref(GPU_GLOBAL, array2d(F64, k, n))),
            param("c", uniq_ref(GPU_GLOBAL, array2d(F64, m, n))),
        ],
        gpu_grid_spec("grid", dim_xy(n // tile, m // tile), dim_xy(tile, tile)),
        body(
            sched(
                "Y",
                "brow",
                "grid",
                sched(
                    "X",
                    "bcol",
                    "brow",
                    let("a_tile", alloc_shared(array2d(F64, tile, tile))),
                    let("b_tile", alloc_shared(array2d(F64, tile, tile))),
                    sched(
                        "Y",
                        "ty",
                        "bcol",
                        sched(
                            "X",
                            "tx",
                            "ty",
                            let("acc", lit_f64(0.0)),
                            for_nat("p", 0, k // tile, *phase_body),
                            assign(c_elem, read(var("acc"))),
                        ),
                    ),
                ),
            )
        ),
    )


def build_matmul_program(m: int = 32, k: int = 32, n: int = 32, tile: int = 8) -> T.Program:
    return program(build_matmul_kernel(m, k, n, tile))
