"""The runtime half of the fault harness: deciding when a site fires.

The serving stack calls :func:`check` (or :func:`maybe_raise`) at every
instrumented seam.  With no ``REPRO_FAULTS`` in the environment that is one
dict lookup and an early return — the harness costs nothing in production.
With a spec, a process-wide :class:`FaultRegistry` tracks per-site hit
counters and draws from per-site PRNGs seeded by ``(seed, site, epoch)``,
so a fault schedule is a deterministic function of the spec and the
process's own sequence of I/O operations: the same chaos run replays
exactly, including inside ``spawn``-ed sweep workers (which inherit the
environment and therefore the plan).
"""

from __future__ import annotations

import os
import random
import threading
from typing import Dict, Optional

from repro.faults.spec import FaultPlan, FaultRule, parse_spec

__all__ = [
    "ENV_SPEC",
    "ENV_EPOCH",
    "InjectedFault",
    "InjectedError",
    "InjectedOSError",
    "FaultRegistry",
    "active",
    "check",
    "maybe_raise",
    "report",
    "reset",
]

#: Environment variables the harness reads.  Both are inherited by spawned
#: subprocesses (daemon workers, sweep shards), which is how one spec
#: governs a whole process tree.
ENV_SPEC = "REPRO_FAULTS"
ENV_EPOCH = "REPRO_FAULTS_EPOCH"


class InjectedFault(Exception):
    """Marker base of every injected failure (``except InjectedFault`` in
    tests distinguishes planned chaos from real bugs)."""


class InjectedError(InjectedFault, RuntimeError):
    """An injected in-process failure (kind ``exc``)."""


class InjectedOSError(InjectedFault, OSError):
    """An injected I/O failure (kind ``oserror``)."""


class FaultRegistry:
    """Per-process fault state: hit counters, fire counters, per-site PRNGs."""

    def __init__(self, plan: FaultPlan, epoch: int = 0, spec: str = "") -> None:
        self.plan = plan
        self.epoch = epoch
        self.spec = spec
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}:{self.epoch}")
        return rng

    def check(self, site: str) -> Optional[FaultRule]:
        """Record one hit of ``site``; the rule to apply, or ``None``."""
        rules = self.plan.rules_for(site)
        if not rules:
            return None
        with self._lock:
            hit = self._hits.get(site, 0) + 1
            self._hits[site] = hit
            for rule in rules:
                if rule.epoch is not None and rule.epoch != self.epoch:
                    continue
                key = f"{site}:{rule.kind}"
                if rule.max_fires is not None and self._fired.get(key, 0) >= rule.max_fires:
                    continue
                if rule.nth is not None and hit != rule.nth:
                    continue
                if rule.p < 1.0 and self._rng(site).random() >= rule.p:
                    continue
                self._fired[key] = self._fired.get(key, 0) + 1
                return rule
        return None

    def report(self) -> Dict[str, object]:
        """The chaos run's ledger: what was planned, hit, and fired."""
        with self._lock:
            return {
                "spec": self.spec,
                "seed": self.plan.seed,
                "epoch": self.epoch,
                "rules": len(self.plan.rules),
                "hits": dict(sorted(self._hits.items())),
                "fired": dict(sorted(self._fired.items())),
            }


# The process-wide registry, (re)loaded lazily from the environment.  The
# cache key is the (spec, epoch) pair actually in the environment, so tests
# that monkeypatch REPRO_FAULTS take effect on the next check() with no
# explicit reload hook.
_cache_key: Optional[object] = None
_registry: Optional[FaultRegistry] = None
_load_lock = threading.Lock()


def _env_key() -> object:
    return (os.environ.get(ENV_SPEC) or "", os.environ.get(ENV_EPOCH) or "0")


def active() -> Optional[FaultRegistry]:
    """The registry for the current environment, or ``None`` when unset."""
    global _cache_key, _registry
    key = _env_key()
    if key == _cache_key:
        return _registry
    with _load_lock:
        if key != _cache_key:
            spec, epoch_text = key  # type: ignore[misc]
            if not spec:
                _registry = None
            else:
                try:
                    epoch = int(epoch_text)
                except ValueError:
                    epoch = 0
                _registry = FaultRegistry(parse_spec(spec), epoch=epoch, spec=spec)
            _cache_key = key
    return _registry


def reset() -> None:
    """Forget the cached registry (fresh counters on the next check)."""
    global _cache_key, _registry
    with _load_lock:
        _cache_key = None
        _registry = None


def check(site: str) -> Optional[FaultRule]:
    """The rule firing at ``site`` right now, or ``None`` (the fast path)."""
    registry = active()
    if registry is None:
        return None
    return registry.check(site)


def maybe_raise(site: str) -> Optional[FaultRule]:
    """Check ``site`` and raise for the exception-shaped kinds.

    ``oserror`` raises :class:`InjectedOSError`, ``exc`` raises
    :class:`InjectedError`, ``crash`` hard-kills the process (the sweep
    chaos class: a worker dying without cleanup).  Any other kind is
    returned for the seam to interpret (``torn``, ``drop``).
    """
    rule = check(site)
    if rule is None:
        return None
    if rule.kind == "oserror":
        raise InjectedOSError(f"injected oserror at {site}")
    if rule.kind == "exc":
        raise InjectedError(f"injected exception at {site}")
    if rule.kind == "crash":
        os._exit(3)
    return rule


def report() -> Optional[Dict[str, object]]:
    """The active registry's ledger, or ``None`` when no plan is loaded."""
    registry = active()
    return registry.report() if registry is not None else None
