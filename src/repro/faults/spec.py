"""The ``REPRO_FAULTS`` specification grammar.

A fault plan is a seed plus a list of rules, each naming one injection
*site* (a hot I/O seam instrumented with :func:`repro.faults.check`) and
describing when it misbehaves and how::

    REPRO_FAULTS = [seed=<int>;] <rule> [; <rule> ...]
    rule         = <site>:<field>[,<field>...]
    field        = kind=<kind> | p=<float> | nth=<int> | max=<int> | epoch=<int>

``kind`` is mandatory and names the misbehavior the seam applies (see
:data:`KINDS`); the remaining fields are the *trigger*:

``p=<float>``
    Fire on each hit with this probability (default ``1.0``), drawn from a
    per-site PRNG seeded with ``(seed, site, epoch)`` — the schedule is a
    pure function of the spec, never of wall-clock or pids, so the same
    spec replays the same faults.
``nth=<int>``
    Fire only on exactly the *nth* hit of the site (1-based) in this
    process.
``max=<int>``
    Stop firing after this many fires (how chaos tests let a retry
    eventually succeed against a long-lived daemon).
``epoch=<int>``
    Fire only when ``REPRO_FAULTS_EPOCH`` equals this value.  Spawned
    sweep workers inherit the orchestrator's epoch (the retry round), so
    "every cell fails in round 0, succeeds in round 1" is expressible and
    deterministic even though worker-local hit counters restart per
    process.

Example: a store whose first two blob writes are torn, a daemon that
drops the socket on the second response::

    REPRO_FAULTS="seed=42;store.blob.write:kind=torn,max=2;serve.conn.write:kind=drop,nth=2"
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["FaultRule", "FaultPlan", "FaultSpecError", "SITES", "KINDS", "parse_spec"]


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` string that does not parse: fail loud, not quiet.

    A typo'd chaos run that silently injects nothing would report a green
    "survived all faults" without testing anything.
    """


#: Every injection point wired into the serving stack.  Parsing rejects
#: unknown sites so a typo cannot silently disable a chaos scenario.
SITES = frozenset(
    {
        "store.blob.read",
        "store.blob.write",
        "store.blob.rename",
        "store.index.flock",
        "store.http.get",
        "store.http.put",
        "serve.conn.read",
        "serve.conn.write",
        "serve.exec.submit",
        "sweep.spawn",
        "sweep.cell",
        "sweep.dispatch",
    }
)

#: The misbehavior vocabulary.  Sites interpret the kinds that make sense
#: for them (a socket cannot tear a pickle; a flock cannot drop a frame):
#:
#: ``oserror``  raise :class:`repro.faults.InjectedOSError` at the seam
#: ``exc``      raise :class:`repro.faults.InjectedError` at the seam
#: ``torn``     truncate the bytes in flight (blob writes/reads, responses)
#: ``drop``     close the connection without (fully) answering
#: ``crash``    hard-kill the process (``os._exit``) — sweep workers only
KINDS = frozenset({"oserror", "exc", "torn", "drop", "crash"})


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: *where* (site), *what* (kind), and *when* (trigger)."""

    site: str
    kind: str
    p: float = 1.0
    nth: Optional[int] = None
    max_fires: Optional[int] = None
    epoch: Optional[int] = None


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` value: the seed plus every rule."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def rules_for(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)


def _parse_fields(site: str, text: str) -> FaultRule:
    fields: Dict[str, str] = {}
    for chunk in text.split(","):
        if "=" not in chunk:
            raise FaultSpecError(
                f"fault rule field {chunk!r} for site {site!r} must be key=value"
            )
        key, _, value = chunk.partition("=")
        key, value = key.strip(), value.strip()
        if key in fields:
            raise FaultSpecError(f"duplicate field {key!r} in rule for site {site!r}")
        fields[key] = value
    kind = fields.pop("kind", None)
    if kind is None:
        raise FaultSpecError(f"fault rule for site {site!r} is missing kind=")
    if kind not in KINDS:
        raise FaultSpecError(
            f"unknown fault kind {kind!r} for site {site!r}; expected one of "
            f"{sorted(KINDS)}"
        )
    try:
        p = float(fields.pop("p", "1.0"))
        nth = int(fields.pop("nth")) if "nth" in fields else None
        max_fires = int(fields.pop("max")) if "max" in fields else None
        epoch = int(fields.pop("epoch")) if "epoch" in fields else None
    except ValueError as exc:
        raise FaultSpecError(f"bad numeric field in rule for site {site!r}: {exc}") from None
    if fields:
        raise FaultSpecError(
            f"unknown fault rule field(s) {sorted(fields)} for site {site!r}"
        )
    if not 0.0 <= p <= 1.0:
        raise FaultSpecError(f"fault probability p={p} for site {site!r} not in [0, 1]")
    if nth is not None and nth < 1:
        raise FaultSpecError(f"fault nth={nth} for site {site!r} must be >= 1")
    if max_fires is not None and max_fires < 1:
        raise FaultSpecError(f"fault max={max_fires} for site {site!r} must be >= 1")
    return FaultRule(site=site, kind=kind, p=p, nth=nth, max_fires=max_fires, epoch=epoch)


def parse_spec(spec: str) -> FaultPlan:
    """Parse one ``REPRO_FAULTS`` value (raises :class:`FaultSpecError`)."""
    seed = 0
    rules = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise FaultSpecError(f"bad fault seed in {clause!r}") from None
            continue
        if ":" not in clause:
            raise FaultSpecError(
                f"fault rule {clause!r} must be <site>:<field>[,<field>...]"
            )
        site, _, fields = clause.partition(":")
        site = site.strip()
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; expected one of {sorted(SITES)}"
            )
        rules.append(_parse_fields(site, fields))
    return FaultPlan(seed=seed, rules=tuple(rules))
