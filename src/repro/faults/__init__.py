"""Deterministic fault injection for the compile-service stack.

The serving path around the Descend compiler — the content-addressed
artifact store, the ``descendc serve`` daemon, the multi-process sweep
orchestrator — promises to *degrade*, never die, under partial failure.
This package makes that promise testable: named injection points are wired
into the hot I/O seams (blob read/write/rename, index flock, socket
read/write, executor submission, worker spawn/execution), and a
seed-driven plan parsed from ``REPRO_FAULTS`` decides deterministically
when each one misbehaves.  Daemon and sweep subprocesses inherit the plan
through the environment, so one spec governs the whole process tree and
every chaos run replays exactly.

Spec grammar: :mod:`repro.faults.spec`.  Runtime: :mod:`repro.faults.registry`.
The chaos suite asserting the stack's invariants under every fault class
lives in ``tests/test_faults.py``; CI runs the fault matrix as the
``chaos-smoke`` job.
"""

from repro.faults.registry import (
    ENV_EPOCH,
    ENV_SPEC,
    FaultRegistry,
    InjectedError,
    InjectedFault,
    InjectedOSError,
    active,
    check,
    maybe_raise,
    report,
    reset,
)
from repro.faults.spec import KINDS, SITES, FaultPlan, FaultRule, FaultSpecError, parse_spec

__all__ = [
    "ENV_EPOCH",
    "ENV_SPEC",
    "FaultPlan",
    "FaultRegistry",
    "FaultRule",
    "FaultSpecError",
    "InjectedError",
    "InjectedFault",
    "InjectedOSError",
    "KINDS",
    "SITES",
    "active",
    "check",
    "maybe_raise",
    "parse_spec",
    "report",
    "reset",
]
