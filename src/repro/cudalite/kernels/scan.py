"""Two-kernel inclusive scan (the Scan benchmark of Figure 8).

The structure follows the "scan-then-propagate" scheme that the Descend
program uses as well, so that both sides of Figure 8 perform the same memory
accesses:

1. ``scan_block_kernel`` — every thread scans its own chunk of
   ``elems_per_thread`` elements sequentially (writing the partial scan into
   the output), the per-thread totals are turned into per-thread exclusive
   offsets in shared memory, the per-block total goes to ``block_sums``, and
   finally every thread adds its offset to its chunk.
2. the host scans ``block_sums`` (exclusive) to obtain per-block offsets,
3. ``add_offsets_kernel`` — every thread adds its block's offset to its chunk.

The paper measures the scan benchmark "from the start of the first until the
end of the second kernel"; the benchmark harness therefore adds the two
kernel costs.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def scan_block_kernel(
    ctx: ThreadCtx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    block_sums: DeviceBuffer,
    elems_per_thread: int,
):
    """Per-block inclusive scan with sequential per-thread chunks."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = (ctx.blockIdx.x * block_size + tid) * elems_per_thread

    running = input_buf.dtype.type(0)
    for j in range(elems_per_thread):
        value = ctx.load(input_buf, base + j)
        ctx.arith(1)
        running = running + value
        ctx.store(output_buf, base + j, running)

    sums = ctx.shared("sums", (block_size,), dtype=input_buf.dtype)
    ctx.store(sums, tid, running)
    yield  # __syncthreads()

    if tid == 0:
        running_block = input_buf.dtype.type(0)
        for i in range(block_size):
            value = ctx.load(sums, i)
            ctx.store(sums, i, running_block)
            ctx.arith(1)
            running_block = running_block + value
        ctx.store(block_sums, ctx.blockIdx.x, running_block)
    yield  # __syncthreads()

    offset = ctx.load(sums, tid)
    for j in range(elems_per_thread):
        value = ctx.load(output_buf, base + j)
        ctx.arith(1)
        ctx.store(output_buf, base + j, value + offset)


def add_offsets_kernel(
    ctx: ThreadCtx,
    output_buf: DeviceBuffer,
    block_offsets: DeviceBuffer,
    elems_per_thread: int,
):
    """Add each block's exclusive offset to every element the block produced."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = (ctx.blockIdx.x * block_size + tid) * elems_per_thread
    offset = ctx.load(block_offsets, ctx.blockIdx.x)
    for j in range(elems_per_thread):
        value = ctx.load(output_buf, base + j)
        ctx.arith(1)
        ctx.store(output_buf, base + j, value + offset)
    return
    yield  # pragma: no cover


@vectorized_impl(scan_block_kernel)
def scan_block_kernel_vec(
    ctx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    block_sums: DeviceBuffer,
    elems_per_thread: int,
):
    """Vectorized per-block scan; thread 0's serial pass runs under a mask."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = (ctx.blockIdx.x * block_size + tid) * elems_per_thread

    running = ctx.zeros(dtype=input_buf.dtype)
    for j in range(elems_per_thread):
        value = ctx.load(input_buf, base + j)
        ctx.arith(1)
        running = running + value
        ctx.store(output_buf, base + j, running)

    sums = ctx.shared("sums", (block_size,), dtype=input_buf.dtype)
    ctx.store(sums, tid, running)
    ctx.sync()

    leader = tid == 0
    running_block = ctx.zeros(dtype=input_buf.dtype)
    for i in range(block_size):
        value = ctx.load(sums, i, where=leader)
        ctx.store(sums, i, running_block, where=leader)
        ctx.arith(1, where=leader)
        running_block = running_block + value
    ctx.store(block_sums, ctx.blockIdx.x, running_block, where=leader)
    ctx.sync()

    offset = ctx.load(sums, tid)
    for j in range(elems_per_thread):
        value = ctx.load(output_buf, base + j)
        ctx.arith(1)
        ctx.store(output_buf, base + j, value + offset)


@vectorized_impl(add_offsets_kernel)
def add_offsets_kernel_vec(
    ctx,
    output_buf: DeviceBuffer,
    block_offsets: DeviceBuffer,
    elems_per_thread: int,
):
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = (ctx.blockIdx.x * block_size + tid) * elems_per_thread
    offset = ctx.load(block_offsets, ctx.blockIdx.x)
    for j in range(elems_per_thread):
        value = ctx.load(output_buf, base + j)
        ctx.arith(1)
        ctx.store(output_buf, base + j, value + offset)


def exclusive_scan_on_host(block_sums: np.ndarray) -> np.ndarray:
    """The host-side exclusive scan of the per-block sums (between the kernels)."""
    result = np.zeros_like(block_sums)
    if block_sums.size > 1:
        result[1:] = np.cumsum(block_sums)[:-1]
    return result
