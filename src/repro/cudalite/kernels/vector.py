"""Element-wise vector kernels (the scale_vec example of Section 2.3).

Each kernel exists twice: the per-thread reference form (a generator run by
the ``"reference"`` engine) and the grid-wide vectorized form registered via
:func:`vectorized_impl` (run by the ``"vectorized"`` engine).  Both perform
identical memory accesses, so cycle counts agree exactly.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def global_tid(ctx) -> int:
    """The CUDA ``blockIdx.x * blockDim.x + threadIdx.x`` global thread index.

    Works for both context flavours: scalar per-thread indices under the
    reference engine, per-thread index *arrays* under the vectorized engine.
    """
    return ctx.blockIdx.x * ctx.blockDim.x + ctx.threadIdx.x


def scale_vec_kernel(ctx: ThreadCtx, vec: DeviceBuffer, factor: float):
    """``vec[i] = vec[i] * factor`` with one thread per element."""
    index = global_tid(ctx)
    value = ctx.load(vec, index)
    ctx.arith(1)
    ctx.store(vec, index, value * factor)
    return
    yield  # pragma: no cover - makes this a generator for uniform handling


def init_kernel(ctx: ThreadCtx, vec: DeviceBuffer, value: float):
    """``vec[i] = value`` with one thread per element (Section 2.3 example)."""
    index = global_tid(ctx)
    ctx.store(vec, index, value)
    return
    yield  # pragma: no cover


def vec_add_kernel(ctx: ThreadCtx, out: DeviceBuffer, lhs: DeviceBuffer, rhs: DeviceBuffer):
    """``out[i] = lhs[i] + rhs[i]`` with one thread per element."""
    index = global_tid(ctx)
    a = ctx.load(lhs, index)
    b = ctx.load(rhs, index)
    ctx.arith(1)
    ctx.store(out, index, a + b)
    return
    yield  # pragma: no cover


def saxpy_kernel(ctx: ThreadCtx, y: DeviceBuffer, x: DeviceBuffer, alpha: float):
    """``y[i] = alpha * x[i] + y[i]``."""
    index = global_tid(ctx)
    xv = ctx.load(x, index)
    yv = ctx.load(y, index)
    ctx.arith(2)
    ctx.store(y, index, alpha * xv + yv)
    return
    yield  # pragma: no cover


# ---------------------------------------------------------------------------
# Vectorized forms: same accesses, one numpy operation per kernel line.
# ---------------------------------------------------------------------------


@vectorized_impl(scale_vec_kernel)
def scale_vec_kernel_vec(ctx, vec: DeviceBuffer, factor: float):
    index = global_tid(ctx)
    value = ctx.load(vec, index)
    ctx.arith(1)
    ctx.store(vec, index, value * factor)


@vectorized_impl(init_kernel)
def init_kernel_vec(ctx, vec: DeviceBuffer, value: float):
    ctx.store(vec, global_tid(ctx), value)


@vectorized_impl(vec_add_kernel)
def vec_add_kernel_vec(ctx, out: DeviceBuffer, lhs: DeviceBuffer, rhs: DeviceBuffer):
    index = global_tid(ctx)
    a = ctx.load(lhs, index)
    b = ctx.load(rhs, index)
    ctx.arith(1)
    ctx.store(out, index, a + b)


@vectorized_impl(saxpy_kernel)
def saxpy_kernel_vec(ctx, y: DeviceBuffer, x: DeviceBuffer, alpha: float):
    index = global_tid(ctx)
    xv = ctx.load(x, index)
    yv = ctx.load(y, index)
    ctx.arith(2)
    ctx.store(y, index, alpha * xv + yv)
