"""Element-wise vector kernels (the scale_vec example of Section 2.3)."""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.launch import ThreadCtx


def global_tid(ctx: ThreadCtx) -> int:
    """The CUDA ``blockIdx.x * blockDim.x + threadIdx.x`` global thread index."""
    return ctx.blockIdx.x * ctx.blockDim.x + ctx.threadIdx.x


def scale_vec_kernel(ctx: ThreadCtx, vec: DeviceBuffer, factor: float):
    """``vec[i] = vec[i] * factor`` with one thread per element."""
    index = global_tid(ctx)
    value = ctx.load(vec, index)
    ctx.arith(1)
    ctx.store(vec, index, value * factor)
    return
    yield  # pragma: no cover - makes this a generator for uniform handling


def init_kernel(ctx: ThreadCtx, vec: DeviceBuffer, value: float):
    """``vec[i] = value`` with one thread per element (Section 2.3 example)."""
    index = global_tid(ctx)
    ctx.store(vec, index, value)
    return
    yield  # pragma: no cover


def vec_add_kernel(ctx: ThreadCtx, out: DeviceBuffer, lhs: DeviceBuffer, rhs: DeviceBuffer):
    """``out[i] = lhs[i] + rhs[i]`` with one thread per element."""
    index = global_tid(ctx)
    a = ctx.load(lhs, index)
    b = ctx.load(rhs, index)
    ctx.arith(1)
    ctx.store(out, index, a + b)
    return
    yield  # pragma: no cover


def saxpy_kernel(ctx: ThreadCtx, y: DeviceBuffer, x: DeviceBuffer, alpha: float):
    """``y[i] = alpha * x[i] + y[i]``."""
    index = global_tid(ctx)
    xv = ctx.load(x, index)
    yv = ctx.load(y, index)
    ctx.arith(2)
    ctx.store(y, index, alpha * xv + yv)
    return
    yield  # pragma: no cover
