"""The *buggy* transpose of Listing 1 of the paper.

Line 5 of Listing 1 misses parentheses: ``threadIdx.y + j*32 + threadIdx.x``
instead of ``(threadIdx.y + j)*32 + threadIdx.x``.  Several threads of a
block therefore write to the same shared-memory location — a data race that
the simulator's dynamic race detector reports, and that Descend's type
checker rejects statically (the equivalent unsafe view cannot be expressed).
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def buggy_transpose_kernel(
    ctx: ThreadCtx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    """Listing 1, bug included: the shared-memory index is missing parentheses."""
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y

    tmp = ctx.shared("tile", (tile * tile,), dtype=input_buf.dtype)

    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        # BUG (faithful to Listing 1): `ty + j*tile + tx` instead of `(ty + j)*tile + tx`.
        ctx.store(
            tmp,
            (ty + j * tile + tx) % (tile * tile),
            ctx.load(input_buf, (row + j) * matrix_size + col),
        )
        j += rows

    yield  # __syncthreads()

    out_col = ctx.blockIdx.y * tile + tx
    out_row = ctx.blockIdx.x * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            output_buf,
            (out_row + j) * matrix_size + out_col,
            ctx.load(tmp, tx * tile + ty + j),
        )
        j += rows


@vectorized_impl(buggy_transpose_kernel)
def buggy_transpose_kernel_vec(
    ctx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    """The same Listing 1 bug, as one racy scatter per copy round.

    Several lanes of the same scatter hit the same shared-memory offset; the
    batched race detector must flag it exactly like the reference engine does.
    """
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y

    tmp = ctx.shared("tile", (tile * tile,), dtype=input_buf.dtype)

    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        # BUG (faithful to Listing 1): `ty + j*tile + tx` instead of `(ty + j)*tile + tx`.
        ctx.store(
            tmp,
            (ty + j * tile + tx) % (tile * tile),
            ctx.load(input_buf, (row + j) * matrix_size + col),
        )
        j += rows

    ctx.sync()

    out_col = ctx.blockIdx.y * tile + tx
    out_row = ctx.blockIdx.x * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            output_buf,
            (out_row + j) * matrix_size + out_col,
            ctx.load(tmp, tx * tile + ty + j),
        )
        j += rows
