"""Tiled matrix multiplication (the MM benchmark of Figure 8).

Every block computes one ``tile × tile`` tile of ``C = A × B`` by marching
over the K dimension in tile-sized phases, staging one tile of A and one
tile of B in shared memory per phase (with barriers around the staging), and
accumulating the per-thread dot product in a register.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def matmul_kernel(
    ctx: ThreadCtx,
    a_buf: DeviceBuffer,
    b_buf: DeviceBuffer,
    c_buf: DeviceBuffer,
    size_m: int,
    size_k: int,
    size_n: int,
    tile: int = 8,
):
    """``C[M, N] = A[M, K] @ B[K, N]`` with square ``tile × tile`` thread blocks."""
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y
    row = ctx.blockIdx.y * tile + ty
    col = ctx.blockIdx.x * tile + tx

    a_tile = ctx.shared("a_tile", (tile * tile,), dtype=a_buf.dtype)
    b_tile = ctx.shared("b_tile", (tile * tile,), dtype=b_buf.dtype)

    acc = a_buf.dtype.type(0)
    phases = size_k // tile
    for phase in range(phases):
        ctx.store(a_tile, ty * tile + tx, ctx.load(a_buf, row * size_k + phase * tile + tx))
        ctx.store(b_tile, ty * tile + tx, ctx.load(b_buf, (phase * tile + ty) * size_n + col))
        yield  # __syncthreads()

        for k in range(tile):
            a_val = ctx.load(a_tile, ty * tile + k)
            b_val = ctx.load(b_tile, k * tile + tx)
            ctx.arith(2)
            acc = acc + a_val * b_val
        yield  # __syncthreads()

    ctx.store(c_buf, row * size_n + col, acc)


@vectorized_impl(matmul_kernel)
def matmul_kernel_vec(
    ctx,
    a_buf: DeviceBuffer,
    b_buf: DeviceBuffer,
    c_buf: DeviceBuffer,
    size_m: int,
    size_k: int,
    size_n: int,
    tile: int = 8,
):
    """Vectorized tiled matmul: the K phases stay a host loop, threads don't."""
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y
    row = ctx.blockIdx.y * tile + ty
    col = ctx.blockIdx.x * tile + tx

    a_tile = ctx.shared("a_tile", (tile * tile,), dtype=a_buf.dtype)
    b_tile = ctx.shared("b_tile", (tile * tile,), dtype=b_buf.dtype)

    acc = ctx.zeros(dtype=a_buf.dtype)
    phases = size_k // tile
    for phase in range(phases):
        ctx.store(a_tile, ty * tile + tx, ctx.load(a_buf, row * size_k + phase * tile + tx))
        ctx.store(b_tile, ty * tile + tx, ctx.load(b_buf, (phase * tile + ty) * size_n + col))
        ctx.sync()

        for k in range(tile):
            a_val = ctx.load(a_tile, ty * tile + k)
            b_val = ctx.load(b_tile, k * tile + tx)
            ctx.arith(2)
            acc = acc + a_val * b_val
        ctx.sync()

    ctx.store(c_buf, row * size_n + col, acc)
