"""Block-wide parallel reduction (the Reduce benchmark of Figure 8).

The classic shared-memory tree reduction: each block loads one chunk of the
input into shared memory and repeatedly halves the number of active threads,
each adding its partner's element, with a barrier between steps.  Thread 0
writes the block's partial sum to the output.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx

import numpy as np


def block_reduce_kernel(ctx: ThreadCtx, input_buf: DeviceBuffer, output_buf: DeviceBuffer):
    """One partial sum per block; ``output[blockIdx.x] = sum(chunk of input)``."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = ctx.blockIdx.x * block_size

    tmp = ctx.shared("tmp", (block_size,), dtype=input_buf.dtype)
    value = ctx.load(input_buf, base + tid)
    ctx.store(tmp, tid, value)
    yield  # __syncthreads()

    stride = block_size // 2
    while stride >= 1:
        if tid < stride:
            left = ctx.load(tmp, tid)
            right = ctx.load(tmp, tid + stride)
            ctx.arith(1)
            ctx.store(tmp, tid, left + right)
        yield  # __syncthreads()
        stride //= 2

    if tid == 0:
        total = ctx.load(tmp, 0)
        ctx.store(output_buf, ctx.blockIdx.x, total)


@vectorized_impl(block_reduce_kernel)
def block_reduce_kernel_vec(ctx, input_buf: DeviceBuffer, output_buf: DeviceBuffer):
    """Vectorized tree reduction: active lanes are selected with ``where=``."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = ctx.blockIdx.x * block_size

    tmp = ctx.shared("tmp", (block_size,), dtype=input_buf.dtype)
    value = ctx.load(input_buf, base + tid)
    ctx.store(tmp, tid, value)
    ctx.sync()

    stride = block_size // 2
    while stride >= 1:
        active = tid < stride
        left = ctx.load(tmp, tid, where=active)
        right = ctx.load(tmp, tid + stride, where=active)
        ctx.arith(1, where=active)
        ctx.store(tmp, tid, left + right, where=active)
        ctx.sync()
        stride //= 2

    leader = tid == 0
    total = ctx.load(tmp, 0, where=leader)
    ctx.store(output_buf, ctx.blockIdx.x, total, where=leader)


def final_reduce_on_host(partial_sums: np.ndarray) -> float:
    """The host-side final reduction over the per-block partial sums."""
    return float(np.sum(partial_sums))
