"""Block-wide parallel reduction (the Reduce benchmark of Figure 8).

The classic shared-memory tree reduction: each block loads one chunk of the
input into shared memory and repeatedly halves the number of active threads,
each adding its partner's element, with a barrier between steps.  Thread 0
writes the block's partial sum to the output.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.launch import ThreadCtx

import numpy as np


def block_reduce_kernel(ctx: ThreadCtx, input_buf: DeviceBuffer, output_buf: DeviceBuffer):
    """One partial sum per block; ``output[blockIdx.x] = sum(chunk of input)``."""
    tid = ctx.threadIdx.x
    block_size = ctx.blockDim.x
    base = ctx.blockIdx.x * block_size

    tmp = ctx.shared("tmp", (block_size,), dtype=input_buf.dtype)
    value = ctx.load(input_buf, base + tid)
    ctx.store(tmp, tid, value)
    yield  # __syncthreads()

    stride = block_size // 2
    while stride >= 1:
        if tid < stride:
            left = ctx.load(tmp, tid)
            right = ctx.load(tmp, tid + stride)
            ctx.arith(1)
            ctx.store(tmp, tid, left + right)
        yield  # __syncthreads()
        stride //= 2

    if tid == 0:
        total = ctx.load(tmp, 0)
        ctx.store(output_buf, ctx.blockIdx.x, total)


def final_reduce_on_host(partial_sums: np.ndarray) -> float:
    """The host-side final reduction over the per-block partial sums."""
    return float(np.sum(partial_sums))
