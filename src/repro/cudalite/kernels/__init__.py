"""The handwritten CUDA-lite baseline kernels, one module per benchmark."""

from repro.cudalite.kernels import buggy, matmul, reduce, scan, transpose, vector

__all__ = ["vector", "reduce", "transpose", "scan", "matmul", "buggy"]
