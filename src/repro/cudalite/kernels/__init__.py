"""The handwritten CUDA-lite baseline kernels, one module per benchmark."""

from repro.cudalite.kernels import (
    buggy,
    histogram,
    matmul,
    reduce,
    scan,
    stencil,
    transpose,
    vector,
)

__all__ = [
    "vector", "reduce", "transpose", "scan", "matmul",
    "histogram", "stencil", "buggy",
]
