"""Tiled matrix transposition through shared memory (the Transpose benchmark).

This is the (fixed) version of Listing 1 of the paper: a block of
``tile × rows`` threads transposes one ``tile × tile`` tile of the matrix,
staging it in shared memory; each thread copies ``tile / rows`` elements.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def transpose_kernel(
    ctx: ThreadCtx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    """Transpose a ``matrix_size``²  matrix; launched with blocks of ``tile × rows``."""
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y

    tmp = ctx.shared("tile", (tile * tile,), dtype=input_buf.dtype)

    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            tmp,
            (ty + j) * tile + tx,
            ctx.load(input_buf, (row + j) * matrix_size + col),
        )
        j += rows

    yield  # __syncthreads()

    out_col = ctx.blockIdx.y * tile + tx
    out_row = ctx.blockIdx.x * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            output_buf,
            (out_row + j) * matrix_size + out_col,
            ctx.load(tmp, tx * tile + ty + j),
        )
        j += rows


def naive_transpose_kernel(
    ctx: ThreadCtx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    """Transpose without shared-memory tiling (used by the coalescing ablation).

    Every thread writes directly to the transposed position in global memory,
    so either the reads or the writes of a warp are strided by ``matrix_size``
    and cannot be coalesced — the cost model charges one transaction per
    element for that side, which is why the tiled kernel wins.
    """
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y
    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        value = ctx.load(input_buf, (row + j) * matrix_size + col)
        ctx.store(output_buf, col * matrix_size + (row + j), value)
        j += rows
    return
    yield  # pragma: no cover


@vectorized_impl(transpose_kernel)
def transpose_kernel_vec(
    ctx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    """Vectorized tiled transpose; the ``tile / rows`` copy loop stays host-side."""
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y

    tmp = ctx.shared("tile", (tile * tile,), dtype=input_buf.dtype)

    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            tmp,
            (ty + j) * tile + tx,
            ctx.load(input_buf, (row + j) * matrix_size + col),
        )
        j += rows

    ctx.sync()

    out_col = ctx.blockIdx.y * tile + tx
    out_row = ctx.blockIdx.x * tile + ty
    j = 0
    while j < tile:
        ctx.store(
            output_buf,
            (out_row + j) * matrix_size + out_col,
            ctx.load(tmp, tx * tile + ty + j),
        )
        j += rows


@vectorized_impl(naive_transpose_kernel)
def naive_transpose_kernel_vec(
    ctx,
    input_buf: DeviceBuffer,
    output_buf: DeviceBuffer,
    matrix_size: int,
    tile: int = 16,
):
    rows = ctx.blockDim.y
    tx = ctx.threadIdx.x
    ty = ctx.threadIdx.y
    col = ctx.blockIdx.x * tile + tx
    row = ctx.blockIdx.y * tile + ty
    j = 0
    while j < tile:
        value = ctx.load(input_buf, (row + j) * matrix_size + col)
        ctx.store(output_buf, col * matrix_size + (row + j), value)
        j += rows
