"""Three-point stencil (the halo-exchange workload).

``out[i] = (inp[i] + inp[i+1] + inp[i+2]) / 3`` over a padded input of
``n + 2`` elements: each thread reads its own cell plus the two halo
neighbours — the window reads of adjacent threads (and of adjacent blocks,
at chunk boundaries) overlap, matching the view-window formulation of the
Descend variant (:mod:`repro.descend_programs.stencil`).
"""

from __future__ import annotations

from repro.cudalite.kernels.vector import global_tid
from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def stencil3_kernel(ctx: ThreadCtx, input_buf: DeviceBuffer, output_buf: DeviceBuffer):
    """``out[i]`` = mean of the three padded cells ``inp[i .. i+2]``."""
    index = global_tid(ctx)
    left = ctx.load(input_buf, index)
    center = ctx.load(input_buf, index + 1)
    right = ctx.load(input_buf, index + 2)
    ctx.arith(3)
    ctx.store(output_buf, index, (left + center + right) * (1.0 / 3.0))
    return
    yield  # pragma: no cover - makes this a generator for uniform handling


@vectorized_impl(stencil3_kernel)
def stencil3_kernel_vec(ctx, input_buf: DeviceBuffer, output_buf: DeviceBuffer):
    index = global_tid(ctx)
    left = ctx.load(input_buf, index)
    center = ctx.load(input_buf, index + 1)
    right = ctx.load(input_buf, index + 2)
    ctx.arith(3)
    ctx.store(output_buf, index, (left + center + right) * (1.0 / 3.0))
