"""Gather-style histogram (the contention workload, sans atomics).

The classic CUDA histogram contends on ``atomicAdd``; the simulator has no
atomics, so the baseline uses the same gather-style schedule as the Descend
variant (:mod:`repro.descend_programs.histogram`): one thread per bin, every
thread of a block scans the block's whole chunk of the key stream — maximal
overlapping reads — and counts its matches into a register.  A second
single-block kernel sums the per-(block, bin) partials into the final
histogram.
"""

from __future__ import annotations

from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.engine import vectorized_impl
from repro.gpusim.launch import ThreadCtx


def histogram_partials_kernel(
    ctx: ThreadCtx, keys: DeviceBuffer, partials: DeviceBuffer, chunk: int
):
    """``partials[block * bins + t] = |{j : keys_chunk[j] == t}|``."""
    my_bin = ctx.threadIdx.x
    bins = ctx.blockDim.x
    base = ctx.blockIdx.x * chunk
    count = 0.0
    for j in range(chunk):
        key = ctx.load(keys, base + j)
        ctx.arith(1)
        count = count + (key == my_bin) * 1.0
    ctx.store(partials, ctx.blockIdx.x * bins + my_bin, count)
    return
    yield  # pragma: no cover - makes this a generator for uniform handling


@vectorized_impl(histogram_partials_kernel)
def histogram_partials_kernel_vec(ctx, keys: DeviceBuffer, partials: DeviceBuffer, chunk: int):
    my_bin = ctx.threadIdx.x
    bins = ctx.blockDim.x
    base = ctx.blockIdx.x * chunk
    count = 0.0
    for j in range(chunk):
        key = ctx.load(keys, base + j)
        ctx.arith(1)
        count = count + (key == my_bin) * 1.0
    ctx.store(partials, ctx.blockIdx.x * bins + my_bin, count)


def combine_bins_kernel(
    ctx: ThreadCtx, partials: DeviceBuffer, bins_out: DeviceBuffer, num_blocks: int
):
    """``bins_out[t] = sum_i partials[i * bins + t]`` (one block of bins threads)."""
    my_bin = ctx.threadIdx.x
    bins = ctx.blockDim.x
    acc = 0.0
    for i in range(num_blocks):
        value = ctx.load(partials, i * bins + my_bin)
        ctx.arith(1)
        acc = acc + value
    ctx.store(bins_out, my_bin, acc)
    return
    yield  # pragma: no cover


@vectorized_impl(combine_bins_kernel)
def combine_bins_kernel_vec(ctx, partials: DeviceBuffer, bins_out: DeviceBuffer, num_blocks: int):
    my_bin = ctx.threadIdx.x
    bins = ctx.blockDim.x
    acc = 0.0
    for i in range(num_blocks):
        value = ctx.load(partials, i * bins + my_bin)
        ctx.arith(1)
        acc = acc + value
    ctx.store(bins_out, my_bin, acc)
