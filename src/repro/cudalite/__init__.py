"""CUDA-lite: handwritten CUDA-style baseline kernels.

The paper's evaluation compares Descend-generated CUDA against handwritten
CUDA implementations that use the same optimisations and access patterns
(Section 5).  This package is that baseline: kernels written directly against
the simulator's CUDA-style :class:`~repro.gpusim.launch.ThreadCtx` (with
``threadIdx`` / ``blockIdx`` / shared memory / ``yield`` as
``__syncthreads()``), one module per benchmark:

* :mod:`repro.cudalite.kernels.vector` — element-wise kernels (quickstart),
* :mod:`repro.cudalite.kernels.reduce` — block-wide tree reduction,
* :mod:`repro.cudalite.kernels.transpose` — tiled matrix transposition,
* :mod:`repro.cudalite.kernels.scan` — two-kernel scan,
* :mod:`repro.cudalite.kernels.matmul` — tiled matrix multiplication,
* :mod:`repro.cudalite.kernels.buggy` — the racy transpose of Listing 1.
"""

from repro.cudalite.kernels import buggy, matmul, reduce, scan, transpose, vector

__all__ = ["vector", "reduce", "transpose", "scan", "matmul", "buggy"]
