"""repro — a Python reproduction of *Descend: A Safe GPU Systems Programming Language*.

The package is organised into four layers:

``repro.descend``
    The paper's primary contribution: the Descend language (AST, parser,
    type system with extended borrow checking, CUDA code generation, and an
    interpreter that executes Descend programs on the simulator).

``repro.gpusim``
    The substrate: a GPU simulator with host/global/shared memories,
    grid/block/thread execution, barrier synchronisation, a dynamic data-race
    detector, and an analytic cost model used for benchmark timing.

``repro.cudalite``
    The baseline: "handwritten CUDA" kernels written against a CUDA-style
    thread context and executed on the same simulator.

``repro.benchsuite``
    The evaluation harness reproducing Figure 8 and the ablations listed in
    DESIGN.md.
"""

from repro._version import __version__

__all__ = ["__version__"]
