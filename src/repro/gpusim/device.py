"""The device front-end: allocation, host<->device copies, kernel launches.

:class:`GpuDevice` plays the role of the CUDA runtime API in the paper's
heterogeneous programming model.  Copy directions are explicit (as in
``cudaMemcpy``) and mismatching the direction raises an error — the dynamic
analogue of the ``copy_mem_to_host`` example of Section 2.3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DataRaceError, DeviceMemoryError, LaunchConfigurationError
from repro.gpusim.buffer import DeviceBuffer, HostBuffer
from repro.gpusim.cost import CostParameters, KernelCost
from repro.gpusim.engine import get_engine
from repro.gpusim.launch import Dim3, normalize_dim3
from repro.gpusim.races import RaceReport


class CopyDirection(enum.Enum):
    """Direction of a host/device copy (mirrors ``cudaMemcpyKind``)."""

    HOST_TO_DEVICE = "host_to_device"
    DEVICE_TO_HOST = "device_to_host"


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel_name: str
    grid_dim: Dim3
    block_dim: Dim3
    cost: KernelCost
    races: List[RaceReport] = field(default_factory=list)
    barriers: int = 0
    execution_mode: str = "reference"

    @property
    def cycles(self) -> float:
        return self.cost.cycles

    def raise_on_races(self) -> "LaunchResult":
        if self.races:
            raise DataRaceError(
                f"kernel `{self.kernel_name}` contains data races: "
                + "; ".join(r.describe() for r in self.races[:3]),
                races=self.races,
            )
        return self


@dataclass
class DeviceProperties:
    """Static properties of the simulated device."""

    name: str = "repro-sim (P100-like)"
    max_threads_per_block: int = 1024
    max_grid_dim: Tuple[int, int, int] = (2 ** 31 - 1, 65535, 65535)
    max_block_dim: Tuple[int, int, int] = (1024, 1024, 64)
    warp_size: int = 32
    shared_memory_per_block: int = 48 * 1024


class GpuDevice:
    """A simulated GPU device.

    ``execution_mode`` selects the default engine for kernel launches:
    ``"reference"`` (per-thread generator interpreter, the semantic baseline)
    or ``"vectorized"`` (lockstep numpy execution, identical cycle counts,
    an order of magnitude faster — requires kernels registered with
    :func:`repro.gpusim.engine.vectorized_impl`).  Individual launches can
    override it via ``launch(..., execution_mode=...)``.
    """

    def __init__(
        self,
        cost_parameters: CostParameters = CostParameters(),
        properties: DeviceProperties = DeviceProperties(),
        detect_races: bool = True,
        execution_mode: str = "reference",
    ) -> None:
        self.cost_parameters = cost_parameters
        self.properties = properties
        self.detect_races = detect_races
        get_engine(execution_mode)  # validate eagerly
        self.execution_mode = execution_mode
        self._allocations: Dict[int, DeviceBuffer] = {}
        self.launch_log: List[LaunchResult] = []

    # -- memory management ------------------------------------------------------------
    def malloc(self, shape: Sequence[int], dtype=np.float64, label: str = "") -> DeviceBuffer:
        buffer = DeviceBuffer.allocate(shape, dtype=dtype, space="global", label=label)
        self._allocations[buffer.buffer_id] = buffer
        return buffer

    def free(self, buffer: DeviceBuffer) -> None:
        self._allocations.pop(buffer.buffer_id, None)

    def allocated_bytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._allocations.values())

    def to_device(self, array: np.ndarray, label: str = "") -> DeviceBuffer:
        """Allocate a global buffer and copy a host array into it."""
        array = np.asarray(array)
        buffer = self.malloc(array.shape, dtype=array.dtype, label=label)
        buffer.data[:] = array.reshape(-1)
        return buffer

    def memcpy(self, dst, src, direction: CopyDirection) -> None:
        """Copy between host and device buffers with an explicit direction.

        Passing arguments that do not match the direction raises a
        :class:`DeviceMemoryError` — this is the unsafe CUDA behaviour that
        Descend's reference types rule out statically.
        """
        if direction is CopyDirection.HOST_TO_DEVICE:
            if not isinstance(dst, DeviceBuffer) or not isinstance(src, HostBuffer):
                raise DeviceMemoryError(
                    "HOST_TO_DEVICE copy needs a device destination and a host source"
                )
            dst.copy_from_host(src)
            return
        if direction is CopyDirection.DEVICE_TO_HOST:
            if not isinstance(dst, HostBuffer) or not isinstance(src, DeviceBuffer):
                raise DeviceMemoryError(
                    "DEVICE_TO_HOST copy needs a host destination and a device source"
                )
            src.copy_to_host(dst)
            return
        raise DeviceMemoryError(f"unknown copy direction {direction!r}")

    def to_host(self, buffer: DeviceBuffer) -> np.ndarray:
        return buffer.as_array()

    # -- launching -----------------------------------------------------------------------
    def _validate_launch(self, grid_dim: Dim3, block_dim: Dim3) -> None:
        props = self.properties
        threads = block_dim[0] * block_dim[1] * block_dim[2]
        if threads == 0 or grid_dim[0] * grid_dim[1] * grid_dim[2] == 0:
            raise LaunchConfigurationError("grid and block dimensions must be positive")
        if threads > props.max_threads_per_block:
            raise LaunchConfigurationError(
                f"{threads} threads per block exceed the device limit of "
                f"{props.max_threads_per_block}"
            )
        for axis in range(3):
            if block_dim[axis] > props.max_block_dim[axis]:
                raise LaunchConfigurationError(
                    f"block dimension {block_dim} exceeds device limit {props.max_block_dim}"
                )
            if grid_dim[axis] > props.max_grid_dim[axis]:
                raise LaunchConfigurationError(
                    f"grid dimension {grid_dim} exceeds device limit {props.max_grid_dim}"
                )

    def launch(
        self,
        kernel: Callable,
        grid_dim,
        block_dim,
        args: Sequence[object] = (),
        kernel_name: Optional[str] = None,
        detect_races: Optional[bool] = None,
        execution_mode: Optional[str] = None,
    ) -> LaunchResult:
        """Execute a kernel over the given grid and collect cost/race reports."""
        grid_dim = normalize_dim3(grid_dim)
        block_dim = normalize_dim3(block_dim)
        self._validate_launch(grid_dim, block_dim)

        mode = execution_mode if execution_mode is not None else self.execution_mode
        engine = get_engine(mode)
        # The engine picks its accounting implementations (the jit engine
        # substitutes streaming parity-exact ones); defaults are the stock
        # CostModel / RaceDetector.
        cost = engine.make_cost(
            self.cost_parameters, grid_dim, block_dim, self.properties.warp_size
        )
        races_enabled = self.detect_races if detect_races is None else detect_races
        detector = engine.make_races() if races_enabled else None

        stats = engine.run(
            kernel=kernel,
            args=tuple(args),
            grid_dim=grid_dim,
            block_dim=block_dim,
            cost=cost,
            races=detector,
            warp_size=self.properties.warp_size,
        )

        threads_per_block = block_dim[0] * block_dim[1] * block_dim[2]
        blocks = grid_dim[0] * grid_dim[1] * grid_dim[2]
        result = LaunchResult(
            kernel_name=kernel_name or getattr(kernel, "__name__", "<kernel>"),
            grid_dim=grid_dim,
            block_dim=block_dim,
            cost=cost.finalize(blocks=blocks, threads_per_block=threads_per_block),
            races=detector.check() if detector is not None else [],
            barriers=stats.barriers,
            execution_mode=mode,
        )
        self.launch_log.append(result)
        return result
