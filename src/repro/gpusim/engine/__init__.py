"""Execution engines of the GPU simulator.

The simulator can execute a kernel launch with one of three interchangeable
engines:

* ``"reference"`` (:mod:`repro.gpusim.engine.reference`) — the original
  generator-based interpreter: every thread is a Python generator, barriers
  are ``yield`` points, and every memory access is recorded individually.
  It detects barrier divergence and is the semantic baseline.
* ``"vectorized"`` (:mod:`repro.gpusim.engine.vectorized`) — the
  warp-vectorized engine: all threads of the whole grid execute in lockstep
  over numpy index arrays, memory accesses are bulk gathers/scatters, and the
  cost model and race detector receive batched access records.  It produces
  *identical* cycle counts and race verdicts at a fraction of the wall-clock
  time, but requires a vectorized kernel implementation (registered with
  :func:`vectorized_impl`).
* ``"jit"`` (:mod:`repro.gpusim.engine.jit`) — runs plan-JIT kernels
  (straight-line Python emitted by the ``lower.plan.codegen`` pass,
  registered with :func:`jit_impl`) over the same grid-wide ``VecCtx``, and
  substitutes streaming parity-exact cost/race accounting via the engine
  factory hooks.  Same cycle counts and race verdicts again, faster still.

Engines are selected per device (``GpuDevice(execution_mode=...)``) or per
launch (``device.launch(..., execution_mode=...)``).
"""

from repro.gpusim.engine.base import (
    EXECUTION_MODES,
    EngineStats,
    ExecutionEngine,
    get_engine,
    jit_impl,
    resolve_jit,
    resolve_reference,
    resolve_vectorized,
    vectorized_impl,
)
from repro.gpusim.engine.jit import JitCostModel, JitEngine, JitRaceDetector
from repro.gpusim.engine.reference import ReferenceEngine
from repro.gpusim.engine.vectorized import VecCtx, VecLocalBuffer, VecSharedBuffer, VectorizedEngine

__all__ = [
    "EXECUTION_MODES",
    "EngineStats",
    "ExecutionEngine",
    "JitCostModel",
    "JitEngine",
    "JitRaceDetector",
    "ReferenceEngine",
    "VecCtx",
    "VecLocalBuffer",
    "VecSharedBuffer",
    "VectorizedEngine",
    "get_engine",
    "jit_impl",
    "resolve_jit",
    "resolve_reference",
    "resolve_vectorized",
    "vectorized_impl",
]
