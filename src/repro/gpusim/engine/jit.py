"""The jit execution engine: codegen'd kernels + streaming exact accounting.

This engine runs plan-JIT kernels (straight-line Python emitted by
:mod:`repro.descend.plan.codegen`, registered with
:func:`~repro.gpusim.engine.base.jit_impl`) over the same grid-wide
:class:`~repro.gpusim.engine.vectorized.VecCtx` the vectorized engine uses —
the recording surface is identical, so cycle counts and race verdicts are
identical by construction.

What makes it faster than ``vectorized`` is not only the generated code: on
the heavy bench rows 75–95 % of the vectorized wall-clock is the
*end-of-launch analysis* (``np.unique`` grouping over every recorded access
in :meth:`CostModel._batched_global_transactions` /
:meth:`RaceDetector._check_batches`).  The jit engine therefore substitutes
two parity-exact accounting implementations via the engine factory hooks
(:meth:`ExecutionEngine.make_cost` / :meth:`make_races`):

* :class:`JitCostModel` folds *uniform full-grid* batches (every lane
  active, all lanes at the same slot counter — the common case for
  straight-line plan code) into running totals **at record time** with one
  cheap per-warp-row pass, instead of buffering them for a global sort.
  Correctness: a full-grid batch at uniform slot ``s`` consumes slot ``s``
  of *every* lane, so its ``(block, warp, s)`` groups can never be joined by
  any other batch — per-batch group counts add exactly.  Non-qualifying
  (divergent) batches take the stock buffered path; the totals sum.
* :class:`JitRaceDetector` replaces the ~10 ``np.unique`` passes of the
  stock batched analysis with **one** sort of a packed
  ``(buffer, offset, block, epoch, thread)`` integer key, deriving every
  grouping from boundary flags on the single permutation.  Group identities,
  the dense-rank iteration order of racy locations, and the reported access
  pairs (via the inherited :meth:`RaceDetector._pair_for_location`) are all
  identical to the stock detector; keys that cannot pack into 63 bits fall
  back to the inherited analysis.
"""

from __future__ import annotations

import inspect
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.errors import LaunchConfigurationError
from repro.gpusim.cost import CostModel, CostParameters, KernelCost
from repro.gpusim.engine.base import Dim3, EngineStats, ExecutionEngine, resolve_jit
from repro.gpusim.engine.vectorized import VecCtx
from repro.gpusim.races import RaceDetector, RaceReport


class JitCostModel(CostModel):
    """Cost model with a streaming fast path for uniform full-grid batches."""

    def __init__(
        self,
        params: CostParameters,
        num_blocks: int,
        threads_per_block: int,
        warp_size: int,
    ) -> None:
        super().__init__(params)
        self._num_threads = num_blocks * threads_per_block
        self._warp_size = warp_size
        # Warp rows must tile the batch exactly for the reshape(-1, warp)
        # trick to reproduce the (block, warp) grouping.
        self._streaming_ok = (
            warp_size > 0 and threads_per_block % warp_size == 0 and self._num_threads > 0
        )
        self._fast_global_transactions = 0
        self._fast_global_accesses = 0
        self._fast_shared_conflicts = 0
        self._fast_shared_accesses = 0

    # -- recording -------------------------------------------------------------
    def record_access_batch(self, blocks, warps, slots, addresses, is_write, space) -> None:
        if (
            self._streaming_ok
            and space in ("global", "shared")
            and len(addresses) == self._num_threads
        ):
            slots = np.asarray(slots)
            if slots.size and (slots == slots[0]).all():
                addresses = np.asarray(addresses, dtype=np.int64)
                if space == "global":
                    self._fast_global_transactions += self._uniform_global(addresses)
                    self._fast_global_accesses += int(addresses.size)
                else:
                    self._fast_shared_conflicts += self._uniform_shared(addresses)
                    self._fast_shared_accesses += int(addresses.size)
                return
        super().record_access_batch(blocks, warps, slots, addresses, is_write, space)

    def _uniform_global(self, addresses: np.ndarray) -> int:
        """Distinct 128-byte segments per warp row, summed over the grid."""
        segments = addresses // self.params.global_segment_bytes
        rows = np.sort(segments.reshape(-1, self._warp_size), axis=1)
        if rows.shape[1] <= 1:
            return rows.shape[0]
        distinct = 1 + np.count_nonzero(rows[:, 1:] != rows[:, :-1], axis=1)
        return int(distinct.sum())

    def _uniform_shared(self, addresses: np.ndarray) -> int:
        """Worst-bank distinct-address count per warp row, summed (conflicts)."""
        params = self.params
        rows = addresses.reshape(-1, self._warp_size)
        n_rows = rows.shape[0]
        banks = (rows // params.shared_bank_width) % params.shared_banks
        # One sortable key per lane: (bank, address) packed so that sorting a
        # row groups each bank's addresses contiguously.
        key = banks * (np.int64(1) << np.int64(40)) + rows
        key = np.sort(key, axis=1)
        new_pair = np.ones_like(key, dtype=bool)
        if key.shape[1] > 1:
            new_pair[:, 1:] = key[:, 1:] != key[:, :-1]
        sorted_banks = key >> np.int64(40)
        flat = np.arange(n_rows, dtype=np.int64)[:, None] * params.shared_banks + sorted_banks
        counts = np.bincount(flat[new_pair], minlength=n_rows * params.shared_banks)
        conflict = counts.reshape(n_rows, params.shared_banks).max(axis=1)
        return int(conflict.sum())

    # -- evaluation ------------------------------------------------------------
    # The streaming totals fold in through the two batched-analysis seams so
    # finalize()'s formula (and float evaluation order) stays untouched; all
    # fast totals are integers, so the sums are float-exact.
    def _batched_global_transactions(self) -> int:
        return super()._batched_global_transactions() + self._fast_global_transactions

    def _batched_shared_cycles(self) -> float:
        return super()._batched_shared_cycles() + float(
            self.params.shared_access_cost * self._fast_shared_conflicts
        )

    def finalize(self, blocks: int, threads_per_block: int) -> KernelCost:
        result = super().finalize(blocks, threads_per_block)
        result.global_accesses += self._fast_global_accesses
        result.shared_accesses += self._fast_shared_accesses
        return result


class JitRaceDetector(RaceDetector):
    """Race detector whose batched analysis is one packed-key sort."""

    #: Packed keys must stay within int64 (sign bit spare).
    _MAX_KEY = 1 << 62

    def _check_batches(self, limit: int) -> List[RaceReport]:
        bid, off, roff, blk, thr, epo, wrt = self._batch_columns()
        key = self._packed_key((bid, off, blk, epo, thr))
        if key is None:
            return super()._check_batches(limit)

        order = np.argsort(key, kind="stable")
        b_s, o_s = bid[order], off[order]
        k_s, e_s, t_s = blk[order], epo[order], thr[order]

        # Boundary flags on the one sorted permutation give every grouping
        # the stock analysis builds with repeated np.unique passes.  The key
        # sorts lexicographically by (buffer, offset, block, epoch, thread),
        # so each refinement only adds its own column's changes.
        loc_start = np.ones(len(key), dtype=bool)
        loc_start[1:] = (b_s[1:] != b_s[:-1]) | (o_s[1:] != o_s[:-1])
        pair_start = loc_start.copy()
        pair_start[1:] |= k_s[1:] != k_s[:-1]
        group_start = pair_start.copy()
        group_start[1:] |= e_s[1:] != e_s[:-1]
        member_start = group_start.copy()
        member_start[1:] |= t_s[1:] != t_s[:-1]

        loc_ids_sorted = np.cumsum(loc_start) - 1
        n_locs = int(loc_ids_sorted[-1]) + 1
        group_ids_sorted = np.cumsum(group_start) - 1
        n_groups = int(group_ids_sorted[-1]) + 1

        w_s = wrt[order]
        has_write = np.zeros(n_locs, dtype=bool)
        has_write[loc_ids_sorted[w_s]] = True

        # Cross-block rule: >= 2 distinct blocks at one location + a write.
        blocks_per_loc = np.bincount(loc_ids_sorted[pair_start], minlength=n_locs)
        racy_locs = (blocks_per_loc >= 2) & has_write

        # Same-(block, epoch) rule: >= 2 distinct threads + a write.
        threads_per_group = np.bincount(group_ids_sorted[member_start], minlength=n_groups)
        group_has_write = np.zeros(n_groups, dtype=bool)
        group_has_write[group_ids_sorted[w_s]] = True
        racy_groups = (threads_per_group >= 2) & group_has_write
        loc_of_group = loc_ids_sorted[np.nonzero(group_start)[0]]
        racy_locs[loc_of_group[racy_groups]] = True

        if not racy_locs.any():
            return []

        labels = {batch.buffer_id: batch.buffer_label for batch in self._batches}

        def materialize(i: int):
            from repro.gpusim.races import RecordedAccess

            return RecordedAccess(
                buffer_id=int(bid[i]),
                offset=int(roff[i]),
                block=int(blk[i]),
                thread=int(thr[i]),
                epoch=int(epo[i]),
                is_write=bool(wrt[i]),
                buffer_label=labels.get(int(bid[i]), ""),
            )

        # Dense loc ids follow sorted (buffer, offset) order — the same order
        # row_group_ids assigns — so reports come out in the stock order; and
        # feeding _pair_for_location lanes in ascending record order makes
        # the chosen pairs identical too.
        reports: List[RaceReport] = []
        for loc in np.nonzero(racy_locs)[0]:
            lanes = np.sort(order[loc_ids_sorted == loc])
            pair = self._pair_for_location(lanes, blk, thr, epo, wrt)
            if pair is not None:
                reports.append(RaceReport(materialize(pair[0]), materialize(pair[1])))
            if len(reports) >= limit:
                break
        return reports

    @classmethod
    def _packed_key(cls, columns) -> Optional[np.ndarray]:
        """One int64 lexicographic key over ``columns`` (or ``None`` if it
        cannot pack: negative values or > 62 bits of combined range)."""
        key = np.zeros(len(columns[0]), dtype=np.int64)
        radix = 1
        for column in columns:
            column = np.asarray(column, dtype=np.int64)
            if column.size == 0 or int(column.min()) < 0:
                return None
            width = int(column.max()) + 1
            radix *= width  # exact Python-int arithmetic for the bound check
            if radix > cls._MAX_KEY:
                return None
            key = key * np.int64(width) + column
        return key


class JitEngine(ExecutionEngine):
    """Runs codegen'd plan kernels with streaming accounting."""

    name = "jit"

    def run(
        self,
        kernel: Callable,
        args: Sequence[object],
        grid_dim: Dim3,
        block_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        warp_size: int = 32,
    ) -> EngineStats:
        impl = resolve_jit(kernel)
        if impl is None:
            name = getattr(kernel, "__name__", repr(kernel))
            raise LaunchConfigurationError(
                f"kernel `{name}` has no jit implementation; register one "
                "with @jit_impl or launch with execution_mode='reference'"
            )
        ctx = VecCtx(grid_dim, block_dim, cost=cost, races=races, warp_size=warp_size)
        result = impl(ctx, *tuple(args))
        if inspect.isgenerator(result):
            raise LaunchConfigurationError(
                "jit kernels must be plain functions that call ctx.sync(), not generators"
            )
        return EngineStats(barriers=ctx.barriers)

    def make_cost(
        self,
        params: CostParameters,
        grid_dim: Dim3,
        block_dim: Dim3,
        warp_size: int,
    ) -> CostModel:
        num_blocks = grid_dim[0] * grid_dim[1] * grid_dim[2]
        threads_per_block = block_dim[0] * block_dim[1] * block_dim[2]
        return JitCostModel(params, num_blocks, threads_per_block, warp_size)

    def make_races(self) -> RaceDetector:
        return JitRaceDetector()
