"""The warp-vectorized execution engine.

Instead of interpreting every thread as its own Python generator, this engine
executes *all threads of the whole grid in lockstep*: ``threadIdx`` /
``blockIdx`` are numpy index arrays with one entry per thread, memory
accesses are bulk gathers/scatters through the flat buffer storage, and the
cost model / race detector receive whole-operation batches
(:meth:`CostModel.record_access_batch`, :meth:`RaceDetector.record_batch`)
instead of one Python call per thread per access.

Parity with the reference engine is exact, not approximate:

* every thread keeps its own *slot* counter (the per-thread access index that
  the cost model groups coalescing decisions by), advanced only for lanes
  active under the current ``where=`` mask — exactly like inactive threads
  of a divergent branch in the reference engine;
* barriers advance one epoch for the whole grid and record one barrier per
  block, matching the per-block accounting of :func:`run_block`;
* shared memory is stored as one ``(blocks, size)`` array; the cost model
  sees within-block byte addresses (bank conflicts are per block) while the
  race detector sees block-disjoint offsets (so cross-block false positives
  are impossible, mirroring the per-block buffers of the reference engine).

Vectorized kernels are plain functions (no generators); they call
``ctx.sync()`` where CUDA would call ``__syncthreads()`` and pass boolean
``where=`` masks where the reference kernel would branch on the thread index.
By construction every block reaches every ``sync()`` — barrier divergence
cannot be expressed, which is why the reference engine remains the semantic
baseline for arbitrary kernels.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.errors import DeviceMemoryError, LaunchConfigurationError
from repro.gpusim.buffer import DeviceBuffer, next_buffer_id
from repro.gpusim.cost import CostModel
from repro.gpusim.engine.base import Dim3, EngineStats, ExecutionEngine, resolve_vectorized
from repro.gpusim.launch import Index3
from repro.gpusim.races import RaceDetector


@dataclass
class VecIndex3:
    """A CUDA-style 3D index whose components are per-thread numpy arrays."""

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray


class VecSharedBuffer:
    """Per-block shared memory of one launch, stacked over all blocks.

    ``data[b, i]`` is element ``i`` of block ``b``'s copy; ``size`` is the
    per-block element count (what kernels index against).
    """

    space = "shared"

    def __init__(self, num_blocks: int, shape: Sequence[int], dtype, label: str = "") -> None:
        self.shape = tuple(int(s) for s in shape) or (1,)
        if any(s <= 0 for s in self.shape):
            raise DeviceMemoryError(f"invalid shared buffer shape {self.shape}")
        self.size = int(math.prod(self.shape))
        self.dtype = np.dtype(dtype)
        self.data = np.zeros((num_blocks, self.size), dtype=self.dtype)
        self.label = label
        self.buffer_id = next_buffer_id()

    @property
    def element_size(self) -> int:
        return int(self.data.itemsize)


class VecLocalBuffer:
    """Per-thread private memory of one launch, stacked over all threads.

    ``data[t, i]`` is element ``i`` of (global) thread ``t``'s copy; ``size``
    is the per-thread element count.  The reference engine allocates one
    :class:`~repro.gpusim.buffer.DeviceBuffer` per thread per ``ctx.local()``
    call; this is the batched equivalent (one call allocates for the grid).
    """

    space = "local"

    def __init__(self, num_threads: int, shape: Sequence[int], dtype, label: str = "local") -> None:
        self.shape = tuple(int(s) for s in shape) or (1,)
        if any(s <= 0 for s in self.shape):
            raise DeviceMemoryError(f"invalid local buffer shape {self.shape}")
        self.size = int(math.prod(self.shape))
        self.dtype = np.dtype(dtype)
        self.data = np.zeros((num_threads, self.size), dtype=self.dtype)
        self.label = label
        self.buffer_id = next_buffer_id()

    @property
    def element_size(self) -> int:
        return int(self.data.itemsize)


class VecCtx:
    """Grid-wide execution context handed to vectorized kernels.

    ``threadIdx`` / ``blockIdx`` components are arrays of length
    :attr:`num_threads` (all threads of all blocks, block-major, x fastest
    within a block — the same enumeration order as the reference engine);
    ``blockDim`` / ``gridDim`` stay scalar :class:`Index3` values.
    """

    def __init__(
        self,
        grid_dim: Dim3,
        block_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        warp_size: int = 32,
    ) -> None:
        gx, gy, gz = grid_dim
        bx, by, bz = block_dim
        self.num_blocks = gx * gy * gz
        self.threads_per_block = bx * by * bz
        self.num_threads = self.num_blocks * self.threads_per_block

        lin_thread = np.tile(np.arange(self.threads_per_block, dtype=np.int64), self.num_blocks)
        lin_block = np.repeat(np.arange(self.num_blocks, dtype=np.int64), self.threads_per_block)
        self.threadIdx = VecIndex3(lin_thread % bx, (lin_thread // bx) % by, lin_thread // (bx * by))
        self.blockIdx = VecIndex3(lin_block % gx, (lin_block // gx) % gy, lin_block // (gx * gy))
        self.blockDim = Index3(*block_dim)
        self.gridDim = Index3(*grid_dim)

        self.linear_thread_id = lin_thread
        self.linear_block_id = lin_block
        self.global_thread_id = lin_block * self.threads_per_block + lin_thread
        self.warp_id = lin_thread // warp_size

        self._cost = cost
        self._races = races
        self._epoch = 0
        self._barriers = 0
        self._slots = np.zeros(self.num_threads, dtype=np.int64)
        self._shared_pool: Dict[str, VecSharedBuffer] = {}

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def barriers(self) -> int:
        return self._barriers

    # -- helpers -------------------------------------------------------------------
    def zeros(self, dtype=np.float64) -> np.ndarray:
        """A fresh per-thread register file (one element per thread)."""
        return np.zeros(self.num_threads, dtype=dtype)

    def _per_thread(self, values, name: str) -> np.ndarray:
        array = np.asarray(values)
        if array.ndim == 0:
            return np.broadcast_to(array, (self.num_threads,))
        if array.shape != (self.num_threads,):
            raise DeviceMemoryError(
                f"per-thread {name} must be scalar or have shape ({self.num_threads},), "
                f"got {array.shape}"
            )
        return array

    def _activate(self, offsets, where):
        offsets = self._per_thread(offsets, "offsets").astype(np.int64, copy=False)
        if where is None:
            return offsets, None
        mask = self._per_thread(where, "mask").astype(bool, copy=False)
        return offsets, mask

    def _record(
        self,
        buffer: Union[DeviceBuffer, VecSharedBuffer, VecLocalBuffer],
        offsets: np.ndarray,
        mask: Optional[np.ndarray],
        is_write: bool,
    ):
        """Bounds-check and record the active lanes; returns (offsets, rows).

        ``rows`` is the first index into stacked per-block (shared) or
        per-thread (local) storage, and ``None`` for flat global buffers.
        """
        if mask is None:
            active_offsets = offsets
            blocks = self.linear_block_id
            warps = self.warp_id
            threads = self.linear_thread_id
            slots = self._slots.copy()
            self._slots += 1
        else:
            active_offsets = offsets[mask]
            blocks = self.linear_block_id[mask]
            warps = self.warp_id[mask]
            threads = self.linear_thread_id[mask]
            slots = self._slots[mask]
            self._slots[mask] += 1
        if isinstance(buffer, VecSharedBuffer):
            rows: Optional[np.ndarray] = blocks
        elif isinstance(buffer, VecLocalBuffer):
            rows = self.global_thread_id if mask is None else self.global_thread_id[mask]
        else:
            rows = None
        if active_offsets.size == 0:
            return active_offsets, rows
        lowest = int(active_offsets.min())
        highest = int(active_offsets.max())
        if lowest < 0 or highest >= buffer.size:
            bad = lowest if lowest < 0 else highest
            raise DeviceMemoryError(
                f"out-of-bounds access at offset {bad} of buffer "
                f"{buffer.label or buffer.buffer_id} (size {buffer.size})"
            )
        if self._cost is not None:
            self._cost.record_access_batch(
                blocks=blocks,
                warps=warps,
                slots=slots,
                addresses=active_offsets * buffer.element_size,
                is_write=is_write,
                space=buffer.space,
            )
        if self._races is not None and buffer.space in ("global", "shared"):
            if buffer.space == "shared":
                # Per-block copies live at disjoint key offsets so the
                # detector's cross-block rule can never fire between two
                # blocks' copies; reports still show the within-block offset.
                race_offsets = blocks * buffer.size + active_offsets
                report_offsets = active_offsets
            else:
                race_offsets = active_offsets
                report_offsets = None
            self._races.record_batch(
                buffer_id=buffer.buffer_id,
                offsets=race_offsets,
                blocks=blocks,
                threads=threads,
                epoch=self._epoch,
                is_write=is_write,
                buffer_label=buffer.label,
                report_offsets=report_offsets,
            )
        return active_offsets, rows

    # -- memory ---------------------------------------------------------------------
    def load(
        self,
        buffer: Union[DeviceBuffer, VecSharedBuffer, VecLocalBuffer],
        offsets,
        where=None,
    ) -> np.ndarray:
        """Gather one element per (active) thread; inactive lanes read as 0."""
        offsets, mask = self._activate(offsets, where)
        active_offsets, rows = self._record(buffer, offsets, mask, is_write=False)
        if mask is None:
            if rows is not None:
                return buffer.data[rows, active_offsets]
            return buffer.data[active_offsets]
        out = np.zeros(self.num_threads, dtype=buffer.dtype)
        if active_offsets.size:
            out[mask] = buffer.data[rows, active_offsets] if rows is not None else buffer.data[active_offsets]
        return out

    def store(
        self,
        buffer: Union[DeviceBuffer, VecSharedBuffer, VecLocalBuffer],
        offsets,
        values,
        where=None,
    ) -> None:
        """Scatter one element per (active) thread."""
        offsets, mask = self._activate(offsets, where)
        active_offsets, rows = self._record(buffer, offsets, mask, is_write=True)
        if active_offsets.size == 0:
            return
        values = np.asarray(values)
        if values.ndim != 0:
            values = self._per_thread(values, "values")
            values = values if mask is None else values[mask]
        if rows is not None:
            buffer.data[rows, active_offsets] = values
        else:
            buffer.data[active_offsets] = values

    def arith(self, count: int = 1, where=None) -> None:
        """Account for ``count`` arithmetic instructions per (active) thread."""
        if self._cost is None:
            return
        if where is None:
            active = self.num_threads
        else:
            active = int(np.count_nonzero(self._per_thread(where, "mask")))
        if active:
            self._cost.record_arithmetic(int(count) * active)

    # -- synchronisation ---------------------------------------------------------------
    def sync(self) -> None:
        """Block-wide barrier (``__syncthreads()``) for every block at once."""
        self._barriers += self.num_blocks
        if self._cost is not None:
            self._cost.record_barrier(self.num_blocks)
        self._epoch += 1

    # -- allocation --------------------------------------------------------------------
    def shared(self, name: str, shape: Sequence[int], dtype=np.float64) -> VecSharedBuffer:
        """Per-block shared memory (one stacked copy per block)."""
        if name not in self._shared_pool:
            self._shared_pool[name] = VecSharedBuffer(
                self.num_blocks, shape, dtype=dtype, label=f"shared:{name}"
            )
        return self._shared_pool[name]

    def local(self, shape: Sequence[int], dtype=np.float64, label: str = "local") -> VecLocalBuffer:
        """Per-thread private memory (one stacked copy per thread of the grid)."""
        return VecLocalBuffer(self.num_threads, shape, dtype=dtype, label=label)


class VectorizedEngine(ExecutionEngine):
    """Runs the whole grid in lockstep over numpy index arrays."""

    name = "vectorized"

    def run(
        self,
        kernel: Callable,
        args: Sequence[object],
        grid_dim: Dim3,
        block_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        warp_size: int = 32,
    ) -> EngineStats:
        impl = resolve_vectorized(kernel)
        if impl is None:
            name = getattr(kernel, "__name__", repr(kernel))
            raise LaunchConfigurationError(
                f"kernel `{name}` has no vectorized implementation; register one "
                "with @vectorized_impl or launch with execution_mode='reference'"
            )
        ctx = VecCtx(grid_dim, block_dim, cost=cost, races=races, warp_size=warp_size)
        result = impl(ctx, *tuple(args))
        if inspect.isgenerator(result):
            raise LaunchConfigurationError(
                "vectorized kernels must be plain functions that call ctx.sync(), "
                "not generators"
            )
        return EngineStats(barriers=ctx.barriers)
