"""The reference engine: the original per-thread generator interpreter.

Every thread of every block runs as its own Python generator
(:func:`repro.gpusim.launch.run_block`); barriers are ``yield`` points and
barrier divergence is detected.  This engine defines the simulator's
semantics — the vectorized engine is validated against it.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.gpusim.cost import CostModel
from repro.gpusim.engine.base import Dim3, EngineStats, ExecutionEngine, resolve_reference
from repro.gpusim.launch import _iter_indices, run_block
from repro.gpusim.races import RaceDetector


class ReferenceEngine(ExecutionEngine):
    """Runs each block with the generator-based per-thread interpreter."""

    name = "reference"

    def run(
        self,
        kernel: Callable,
        args: Sequence[object],
        grid_dim: Dim3,
        block_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        warp_size: int = 32,
    ) -> EngineStats:
        impl = resolve_reference(kernel)
        stats = EngineStats()
        for block_idx in _iter_indices(grid_dim):
            block_stats = run_block(
                kernel=impl,
                args=tuple(args),
                block_idx=block_idx,
                block_dim=block_dim,
                grid_dim=grid_dim,
                cost=cost,
                races=races,
                warp_size=warp_size,
            )
            stats.barriers += block_stats.barriers
        return stats
