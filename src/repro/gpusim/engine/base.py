"""Engine interface, registry, and the vectorized-kernel registration API."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.errors import LaunchConfigurationError
from repro.gpusim.cost import CostModel, CostParameters
from repro.gpusim.races import RaceDetector

Dim3 = Tuple[int, int, int]

#: Attribute linking a reference kernel to its vectorized implementation.
_VECTORIZED_ATTR = "__vectorized_impl__"
#: Attribute linking a vectorized kernel back to its reference implementation.
_REFERENCE_ATTR = "__reference_impl__"
#: Attribute linking a reference kernel to its jit-compiled implementation.
_JIT_ATTR = "__jit_impl__"


@dataclass
class EngineStats:
    """What an engine reports back to the device after a launch."""

    barriers: int = 0


class ExecutionEngine(abc.ABC):
    """Executes one kernel launch over a grid and records cost/race events."""

    name: str = "abstract"

    @abc.abstractmethod
    def run(
        self,
        kernel: Callable,
        args: Sequence[object],
        grid_dim: Dim3,
        block_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        warp_size: int = 32,
    ) -> EngineStats:
        """Execute every thread of the launch; mutates buffers in ``args``."""

    # -- accounting factories ---------------------------------------------------
    # The device asks the engine for its cost model and race detector so an
    # engine can substitute parity-exact faster implementations (the jit
    # engine's streaming accounting); the defaults are the stock classes.
    def make_cost(
        self,
        params: CostParameters,
        grid_dim: Dim3,
        block_dim: Dim3,
        warp_size: int,
    ) -> CostModel:
        """The cost model one launch under this engine records into."""
        return CostModel(params)

    def make_races(self) -> RaceDetector:
        """The race detector one launch under this engine records into."""
        return RaceDetector()


def vectorized_impl(reference_kernel: Callable) -> Callable[[Callable], Callable]:
    """Decorator registering a vectorized implementation for a kernel.

    Usage::

        def my_kernel(ctx, buf):          # reference, per-thread
            ...

        @vectorized_impl(my_kernel)
        def my_kernel_vec(ctx, buf):      # vectorized, per-grid
            ...

    After registration either function can be passed to
    :meth:`GpuDevice.launch`; each engine resolves the implementation it
    needs, so call sites do not change when switching modes.
    """

    def register(vec_kernel: Callable) -> Callable:
        setattr(reference_kernel, _VECTORIZED_ATTR, vec_kernel)
        setattr(vec_kernel, _VECTORIZED_ATTR, vec_kernel)
        setattr(vec_kernel, _REFERENCE_ATTR, reference_kernel)
        return vec_kernel

    return register


def resolve_vectorized(kernel: Callable) -> Optional[Callable]:
    """The vectorized implementation registered for ``kernel`` (or ``None``)."""
    return getattr(kernel, _VECTORIZED_ATTR, None)


def resolve_reference(kernel: Callable) -> Callable:
    """The reference implementation for ``kernel`` (itself if unregistered)."""
    return getattr(kernel, _REFERENCE_ATTR, kernel)


def jit_impl(reference_kernel: Callable) -> Callable[[Callable], Callable]:
    """Decorator registering a jit-compiled implementation for a kernel.

    Same registration shape as :func:`vectorized_impl`; the jit engine
    resolves this attribute.  ``DescendKernel.launch`` registers the
    plan-codegen entry here per launch.
    """

    def register(jit_kernel: Callable) -> Callable:
        setattr(reference_kernel, _JIT_ATTR, jit_kernel)
        setattr(jit_kernel, _JIT_ATTR, jit_kernel)
        setattr(jit_kernel, _REFERENCE_ATTR, reference_kernel)
        return jit_kernel

    return register


def resolve_jit(kernel: Callable) -> Optional[Callable]:
    """The jit implementation registered for ``kernel`` (or ``None``)."""
    return getattr(kernel, _JIT_ATTR, None)


#: The execution modes a device or launch can select.
EXECUTION_MODES: Tuple[str, ...] = ("reference", "vectorized", "jit")

# Engine instances are stateless; built lazily to avoid circular imports.
_ENGINES = {}


def get_engine(mode: str) -> ExecutionEngine:
    """Look up an engine instance by mode name."""
    if not _ENGINES:
        from repro.gpusim.engine.jit import JitEngine
        from repro.gpusim.engine.reference import ReferenceEngine
        from repro.gpusim.engine.vectorized import VectorizedEngine

        for engine in (ReferenceEngine(), VectorizedEngine(), JitEngine()):
            _ENGINES[engine.name] = engine
    try:
        return _ENGINES[mode]
    except KeyError:
        raise LaunchConfigurationError(
            f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
        ) from None
