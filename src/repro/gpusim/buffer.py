"""Memory buffers of the GPU simulator.

The simulator distinguishes the same address spaces as CUDA / Descend:

* :class:`HostBuffer` — CPU memory (the host side of ``cudaMemcpy``),
* :class:`DeviceBuffer` with ``space="global"`` — GPU global memory,
* :class:`DeviceBuffer` with ``space="shared"`` — per-block shared memory,
* :class:`DeviceBuffer` with ``space="local"`` — per-thread private memory.

Buffers are flat numpy arrays plus a logical shape; all accesses from kernels
go through :class:`repro.gpusim.launch.ThreadCtx`, which records them for the
race detector and the cost model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DeviceMemoryError

_buffer_ids = itertools.count(1)


def next_buffer_id() -> int:
    """Reserve a fresh buffer id (shared with the vectorized engine's buffers)."""
    return next(_buffer_ids)


#: Address spaces known to the simulator.
SPACES = ("global", "shared", "local", "host")


def _normalize_shape(shape: Sequence[int]) -> Tuple[int, ...]:
    shape = tuple(int(s) for s in shape)
    if not shape:
        shape = (1,)
    if any(s <= 0 for s in shape):
        raise DeviceMemoryError(f"invalid buffer shape {shape}")
    return shape


@dataclass
class HostBuffer:
    """A CPU-side allocation (the source/target of host<->device copies)."""

    shape: Tuple[int, ...]
    dtype: np.dtype
    data: np.ndarray
    label: str = ""
    buffer_id: int = field(default_factory=next_buffer_id)

    @staticmethod
    def from_array(array: np.ndarray, label: str = "") -> "HostBuffer":
        array = np.asarray(array)
        return HostBuffer(
            shape=tuple(array.shape),
            dtype=array.dtype,
            data=array.reshape(-1).copy(),
            label=label,
        )

    @staticmethod
    def zeros(shape: Sequence[int], dtype=np.float64, label: str = "") -> "HostBuffer":
        shape = _normalize_shape(shape)
        return HostBuffer(shape=shape, dtype=np.dtype(dtype), data=np.zeros(int(np.prod(shape)), dtype=dtype), label=label)

    @property
    def size(self) -> int:
        return int(self.data.size)

    def as_array(self) -> np.ndarray:
        return self.data.reshape(self.shape).copy()

    def __repr__(self) -> str:  # pragma: no cover
        return f"HostBuffer(id={self.buffer_id}, shape={self.shape}, dtype={self.dtype}, label={self.label!r})"


@dataclass
class DeviceBuffer:
    """A GPU-side allocation in global, shared, or private memory."""

    shape: Tuple[int, ...]
    dtype: np.dtype
    data: np.ndarray
    space: str = "global"
    label: str = ""
    buffer_id: int = field(default_factory=next_buffer_id)

    def __post_init__(self) -> None:
        if self.space not in SPACES:
            raise DeviceMemoryError(f"unknown address space {self.space!r}")

    @staticmethod
    def allocate(
        shape: Sequence[int],
        dtype=np.float64,
        space: str = "global",
        label: str = "",
        fill: Optional[float] = None,
    ) -> "DeviceBuffer":
        shape = _normalize_shape(shape)
        size = int(np.prod(shape))
        data = np.zeros(size, dtype=dtype)
        if fill is not None:
            data[:] = fill
        return DeviceBuffer(shape=shape, dtype=np.dtype(dtype), data=data, space=space, label=label)

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def element_size(self) -> int:
        return int(self.data.itemsize)

    def check_offset(self, offset: int) -> int:
        offset = int(offset)
        if offset < 0 or offset >= self.size:
            raise DeviceMemoryError(
                f"out-of-bounds access at offset {offset} of buffer "
                f"{self.label or self.buffer_id} (size {self.size})"
            )
        return offset

    def read(self, offset: int):
        return self.data[self.check_offset(offset)]

    def write(self, offset: int, value) -> None:
        self.data[self.check_offset(offset)] = value

    def as_array(self) -> np.ndarray:
        return self.data.reshape(self.shape).copy()

    def copy_from_host(self, host: HostBuffer) -> None:
        if host.size != self.size:
            raise DeviceMemoryError(
                f"size mismatch copying host buffer of {host.size} elements into "
                f"device buffer of {self.size} elements"
            )
        self.data[:] = host.data.astype(self.dtype, copy=False)

    def copy_to_host(self, host: HostBuffer) -> None:
        if host.size != self.size:
            raise DeviceMemoryError(
                f"size mismatch copying device buffer of {self.size} elements into "
                f"host buffer of {host.size} elements"
            )
        host.data[:] = self.data.astype(host.dtype, copy=False)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DeviceBuffer(id={self.buffer_id}, space={self.space}, shape={self.shape}, "
            f"dtype={self.dtype}, label={self.label!r})"
        )
