"""Kernel execution: grids, blocks, threads, and barriers.

A kernel is a Python callable ``kernel(ctx, *args)`` where ``ctx`` is a
:class:`ThreadCtx`.  Kernels that use barriers must be *generator functions*
and ``yield`` wherever CUDA would call ``__syncthreads()``; the block
executor advances all threads of a block from barrier to barrier and checks
that they reach barriers together (barrier divergence is an error, mirroring
the undefined behaviour of CUDA described in Section 2 of the paper).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import BarrierDivergenceError, DeviceMemoryError
from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.cost import CostModel, MemoryAccess
from repro.gpusim.races import RaceDetector, RecordedAccess

Dim3 = Tuple[int, int, int]


def normalize_dim3(dim) -> Dim3:
    """Accept ints, 1/2/3-tuples and fill missing dimensions with 1.

    Zero or negative extents are rejected here rather than producing an empty
    grid that would silently execute no threads at all.
    """
    if isinstance(dim, (int, np.integer)):
        values: Tuple[int, ...] = (int(dim),)
    else:
        values = tuple(int(v) for v in dim)
    if len(values) > 3 or not values:
        raise DeviceMemoryError(f"invalid launch dimension {dim!r}")
    if any(value <= 0 for value in values):
        raise DeviceMemoryError(
            f"invalid launch dimension {dim!r}: every extent must be positive, "
            "an empty grid would silently execute no threads"
        )
    return (values + (1, 1, 1))[:3]


@dataclass(frozen=True)
class Index3:
    """A CUDA-style 3D index (``.x``, ``.y``, ``.z``)."""

    x: int
    y: int
    z: int

    def as_tuple(self) -> Dim3:
        return (self.x, self.y, self.z)


class ThreadCtx:
    """Per-thread execution context handed to kernels.

    It mirrors the CUDA built-ins (``threadIdx``, ``blockIdx``, ``blockDim``,
    ``gridDim``) and mediates every memory access so the race detector and the
    cost model see them.
    """

    def __init__(
        self,
        thread_idx: Dim3,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        cost: Optional[CostModel],
        races: Optional[RaceDetector],
        shared_pool: Dict[str, DeviceBuffer],
        warp_size: int = 32,
    ) -> None:
        self.threadIdx = Index3(*thread_idx)
        self.blockIdx = Index3(*block_idx)
        self.blockDim = Index3(*block_dim)
        self.gridDim = Index3(*grid_dim)
        self._cost = cost
        self._races = races
        self._shared_pool = shared_pool
        self._warp_size = warp_size
        self._epoch = 0
        self._mem_slot = 0
        self._local_buffers: List[DeviceBuffer] = []

    # -- identity ------------------------------------------------------------------
    @property
    def linear_thread_id(self) -> int:
        bd = self.blockDim
        ti = self.threadIdx
        return (ti.z * bd.y + ti.y) * bd.x + ti.x

    @property
    def linear_block_id(self) -> int:
        gd = self.gridDim
        bi = self.blockIdx
        return (bi.z * gd.y + bi.y) * gd.x + bi.x

    @property
    def global_thread_id(self) -> int:
        return self.linear_block_id * (self.blockDim.x * self.blockDim.y * self.blockDim.z) + self.linear_thread_id

    @property
    def warp_id(self) -> int:
        return self.linear_thread_id // self._warp_size

    @property
    def epoch(self) -> int:
        return self._epoch

    def advance_epoch(self) -> None:
        self._epoch += 1

    # -- memory ---------------------------------------------------------------------
    def _record(self, buffer: DeviceBuffer, offset: int, is_write: bool) -> None:
        if self._cost is not None:
            self._cost.record_access(
                MemoryAccess(
                    block=self.linear_block_id,
                    warp=self.warp_id,
                    slot=self._mem_slot,
                    address=offset * buffer.element_size,
                    is_write=is_write,
                    space=buffer.space,
                )
            )
        self._mem_slot += 1
        if self._races is not None and buffer.space in ("global", "shared"):
            self._races.record(
                RecordedAccess(
                    buffer_id=buffer.buffer_id,
                    offset=offset,
                    block=self.linear_block_id,
                    thread=self.linear_thread_id,
                    epoch=self._epoch,
                    is_write=is_write,
                    buffer_label=buffer.label,
                )
            )

    def load(self, buffer: DeviceBuffer, offset: int):
        """Read one element of a buffer."""
        offset = int(offset)
        self._record(buffer, offset, is_write=False)
        return buffer.read(offset)

    def store(self, buffer: DeviceBuffer, offset: int, value) -> None:
        """Write one element of a buffer."""
        offset = int(offset)
        self._record(buffer, offset, is_write=True)
        buffer.write(offset, value)

    def arith(self, count: int = 1) -> None:
        """Account for arithmetic instructions executed by this thread."""
        if self._cost is not None:
            self._cost.record_arithmetic(count)

    # -- allocation --------------------------------------------------------------------
    def shared(self, name: str, shape: Sequence[int], dtype=np.float64) -> DeviceBuffer:
        """Per-block shared memory, shared by all threads of the block."""
        if name not in self._shared_pool:
            self._shared_pool[name] = DeviceBuffer.allocate(
                shape, dtype=dtype, space="shared", label=f"shared:{name}"
            )
        return self._shared_pool[name]

    def local(self, shape: Sequence[int], dtype=np.float64, label: str = "local") -> DeviceBuffer:
        """Per-thread private memory."""
        buffer = DeviceBuffer.allocate(shape, dtype=dtype, space="local", label=label)
        self._local_buffers.append(buffer)
        return buffer


@dataclass
class BlockRunStats:
    """Statistics of executing one block."""

    barriers: int = 0
    threads: int = 0


def _iter_indices(dim: Dim3) -> Iterable[Dim3]:
    for z in range(dim[2]):
        for y in range(dim[1]):
            for x in range(dim[0]):
                yield (x, y, z)


def run_block(
    kernel: Callable,
    args: Sequence[object],
    block_idx: Dim3,
    block_dim: Dim3,
    grid_dim: Dim3,
    cost: Optional[CostModel],
    races: Optional[RaceDetector],
    warp_size: int = 32,
) -> BlockRunStats:
    """Execute all threads of one block, respecting barriers."""
    shared_pool: Dict[str, DeviceBuffer] = {}
    contexts: List[ThreadCtx] = []
    generators: List[Optional[object]] = []
    stats = BlockRunStats(threads=block_dim[0] * block_dim[1] * block_dim[2])

    for thread_idx in _iter_indices(block_dim):
        ctx = ThreadCtx(
            thread_idx=thread_idx,
            block_idx=block_idx,
            block_dim=block_dim,
            grid_dim=grid_dim,
            cost=cost,
            races=races,
            shared_pool=shared_pool,
            warp_size=warp_size,
        )
        contexts.append(ctx)
        result = kernel(ctx, *args)
        generators.append(result if inspect.isgenerator(result) else None)

    live = [gen is not None for gen in generators]
    while any(live):
        was_live = list(live)
        reached_barrier = []
        for index, gen in enumerate(generators):
            if not live[index]:
                reached_barrier.append(False)
                continue
            try:
                next(gen)
                reached_barrier.append(True)
            except StopIteration:
                live[index] = False
                reached_barrier.append(False)
        if not any(reached_barrier):
            break
        # Every thread that was still running at the start of this round must
        # have reached the barrier; a mix of "finished" and "at barrier" (or a
        # thread that skipped the barrier) is barrier divergence.
        if not all(reached_barrier[i] for i, alive in enumerate(was_live) if alive):
            raise BarrierDivergenceError(
                f"barrier divergence in block {block_idx}: not all threads reached the barrier"
            )
        stats.barriers += 1
        if cost is not None:
            cost.record_barrier(1)
        for ctx in contexts:
            ctx.advance_epoch()
    return stats
