"""The analytic cost model of the GPU simulator.

The benchmark harness (Figure 8) compares *relative* kernel runtimes of
Descend-generated code against handwritten CUDA.  We therefore need a cost
model that rewards/punishes the same things real GPUs do, so that differences
in access patterns show up:

* **global memory**: accesses are grouped per warp and per static program
  position; each group costs one transaction per 128-byte segment touched
  (perfectly coalesced accesses of a 32-thread warp to consecutive 4/8-byte
  elements need 1–2 transactions, strided or transposed accesses up to 32),
* **shared memory**: per warp and program position, the cost is the maximum
  number of distinct addresses that map to the same of the 32 banks
  (bank-conflict serialisation),
* **arithmetic**: counted per thread and divided by the warp width,
* **barriers**: a fixed cost per barrier per block.

The absolute numbers are synthetic; the *ratios* between two kernels with the
same access patterns are ≈ 1, which is the property Figure 8 reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import DefaultDict, Dict, Iterable, List, Tuple

import numpy as np

from repro.gpusim.grouping import group_representatives, row_group_ids


@dataclass(frozen=True)
class CostParameters:
    """Latency/throughput parameters of the synthetic device (in cycles)."""

    global_transaction_cost: float = 32.0
    global_segment_bytes: int = 128
    shared_access_cost: float = 2.0
    shared_banks: int = 32
    shared_bank_width: int = 4
    arithmetic_cost: float = 1.0
    barrier_cost: float = 16.0
    launch_overhead: float = 500.0
    warp_size: int = 32
    #: how many memory transactions the device can overlap (memory parallelism)
    memory_parallelism: float = 8.0
    #: how many warps execute concurrently (compute parallelism)
    compute_parallelism: float = 16.0


@dataclass
class MemoryAccess:
    """One recorded memory access (already reduced to what the model needs)."""

    block: int
    warp: int
    slot: int
    address: int
    is_write: bool
    space: str


@dataclass
class KernelCost:
    """Aggregated cost of one kernel launch."""

    global_transactions: int = 0
    global_accesses: int = 0
    shared_cycles: float = 0.0
    shared_accesses: int = 0
    arithmetic_ops: int = 0
    barriers: int = 0
    blocks: int = 0
    threads_per_block: int = 0
    cycles: float = 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "global_transactions": self.global_transactions,
            "global_accesses": self.global_accesses,
            "shared_accesses": self.shared_accesses,
            "shared_cycles": self.shared_cycles,
            "arithmetic_ops": self.arithmetic_ops,
            "barriers": self.barriers,
        }


class CostModel:
    """Accumulates memory accesses / arithmetic and converts them into cycles.

    Accesses arrive through one of two equivalent paths:

    * :meth:`record_access` — one :class:`MemoryAccess` at a time (the
      per-thread reference interpreter),
    * :meth:`record_access_batch` — numpy arrays covering one vector operation
      of the warp-vectorized engine.

    Both paths produce bit-identical cycle counts: the batched path evaluates
    the same per-``(block, warp, slot)`` grouping with ``np.unique`` instead
    of Python dictionaries.
    """

    def __init__(self, params: CostParameters = CostParameters()) -> None:
        self.params = params
        self._global: DefaultDict[Tuple[int, int, int], List[MemoryAccess]] = defaultdict(list)
        self._shared: DefaultDict[Tuple[int, int, int], List[MemoryAccess]] = defaultdict(list)
        self._global_batches: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._shared_batches: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._arithmetic = 0
        self._barriers = 0

    # -- recording -------------------------------------------------------------
    def record_access(self, access: MemoryAccess) -> None:
        key = (access.block, access.warp, access.slot)
        if access.space == "global":
            self._global[key].append(access)
        elif access.space == "shared":
            self._shared[key].append(access)
        # private/local accesses are register-like: folded into arithmetic cost
        else:
            self._arithmetic += 1

    def record_access_batch(
        self,
        blocks: np.ndarray,
        warps: np.ndarray,
        slots: np.ndarray,
        addresses: np.ndarray,
        is_write: bool,
        space: str,
    ) -> None:
        """Record one vectorized operation: parallel arrays of equal length.

        ``addresses`` are byte addresses (``offset * element_size``), matching
        what :meth:`record_access` receives via :class:`MemoryAccess`.
        """
        count = len(addresses)
        if count == 0:
            return
        batch = (
            np.asarray(blocks, dtype=np.int64),
            np.asarray(warps, dtype=np.int64),
            np.asarray(slots, dtype=np.int64),
            np.asarray(addresses, dtype=np.int64),
        )
        if space == "global":
            self._global_batches.append(batch)
        elif space == "shared":
            self._shared_batches.append(batch)
        else:
            self._arithmetic += count

    def record_arithmetic(self, count: int = 1) -> None:
        self._arithmetic += count

    def record_barrier(self, count: int = 1) -> None:
        self._barriers += count

    # -- evaluation --------------------------------------------------------------
    def _global_transactions(self) -> int:
        transactions = 0
        segment = self.params.global_segment_bytes
        for accesses in self._global.values():
            segments = {access.address // segment for access in accesses}
            transactions += len(segments)
        return transactions

    def _shared_cycles(self) -> float:
        cycles = 0.0
        banks = self.params.shared_banks
        width = self.params.shared_bank_width
        for accesses in self._shared.values():
            per_bank: DefaultDict[int, set] = defaultdict(set)
            for access in accesses:
                bank = (access.address // width) % banks
                per_bank[bank].add(access.address)
            conflict_factor = max((len(addresses) for addresses in per_bank.values()), default=0)
            cycles += self.params.shared_access_cost * max(conflict_factor, 1 if accesses else 0)
        return cycles

    @staticmethod
    def _concat_batches(batches) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return tuple(np.concatenate([batch[i] for batch in batches]) for i in range(4))

    def _batched_global_transactions(self) -> int:
        """Distinct ``(block, warp, slot, segment)`` tuples over all batches.

        Summing per-group distinct segments (the dict-based path) equals
        counting globally distinct group+segment tuples.
        """
        if not self._global_batches:
            return 0
        blocks, warps, slots, addresses = self._concat_batches(self._global_batches)
        segments = addresses // self.params.global_segment_bytes
        _, transactions = row_group_ids(blocks, warps, slots, segments)
        return transactions

    def _batched_shared_cycles(self) -> float:
        """Bank-conflict serialisation over batched accesses (same formula)."""
        if not self._shared_batches:
            return 0.0
        blocks, warps, slots, addresses = self._concat_batches(self._shared_batches)
        banks = (addresses // self.params.shared_bank_width) % self.params.shared_banks
        warp_ids, n_warp_groups = row_group_ids(blocks, warps, slots)
        bank_ids, n_bank_groups = row_group_ids(warp_ids, banks)
        warp_of_bank = group_representatives(bank_ids, n_bank_groups, warp_ids)
        # distinct addresses per (warp group, bank) ...
        addr_ids, n_addr_groups = row_group_ids(bank_ids, addresses)
        bank_of_addr = group_representatives(addr_ids, n_addr_groups, bank_ids)
        per_bank_counts = np.bincount(bank_of_addr, minlength=n_bank_groups)
        # ... and the worst bank per warp group serialises the warp
        conflict = np.zeros(n_warp_groups, dtype=np.int64)
        np.maximum.at(conflict, warp_of_bank, per_bank_counts)
        return float(self.params.shared_access_cost * conflict.sum())

    def finalize(self, blocks: int, threads_per_block: int) -> KernelCost:
        """Convert the recorded events into a kernel cost estimate."""
        params = self.params
        global_transactions = self._global_transactions() + self._batched_global_transactions()
        shared_cycles = self._shared_cycles() + self._batched_shared_cycles()
        global_accesses = sum(len(v) for v in self._global.values())
        global_accesses += sum(len(batch[3]) for batch in self._global_batches)
        shared_accesses = sum(len(v) for v in self._shared.values())
        shared_accesses += sum(len(batch[3]) for batch in self._shared_batches)

        global_cycles = global_transactions * params.global_transaction_cost / params.memory_parallelism
        arithmetic_cycles = (
            self._arithmetic * params.arithmetic_cost / (params.warp_size * params.compute_parallelism)
        )
        barrier_cycles = self._barriers * params.barrier_cost
        cycles = (
            params.launch_overhead
            + global_cycles
            + shared_cycles / params.compute_parallelism
            + arithmetic_cycles
            + barrier_cycles
        )
        return KernelCost(
            global_transactions=global_transactions,
            global_accesses=global_accesses,
            shared_cycles=shared_cycles,
            shared_accesses=shared_accesses,
            arithmetic_ops=self._arithmetic,
            barriers=self._barriers,
            blocks=blocks,
            threads_per_block=threads_per_block,
            cycles=cycles,
        )
