"""Dynamic data-race detection for the GPU simulator.

Every memory access performed by a kernel is recorded with the thread that
performed it and the barrier *epoch* it happened in.  Two accesses to the
same element race when

* they come from different threads,
* at least one of them is a write, and
* nothing orders them: either the threads are in different blocks (blocks are
  never synchronised during a kernel), or they are in the same block and the
  accesses happen in the same barrier epoch.

This is the dynamic counterpart of Descend's static access-safety check: the
handwritten buggy CUDA kernel of Listing 1 races *dynamically* here, while
the Descend type checker rejects the equivalent program *statically*.

Accesses arrive one at a time (:meth:`RaceDetector.record`, the per-thread
reference interpreter) or as whole numpy batches
(:meth:`RaceDetector.record_batch`, the warp-vectorized engine).  Batches are
analysed with vectorized grouping in :meth:`RaceDetector.check`; only the
few locations that actually race are materialised into
:class:`RecordedAccess` objects for reporting.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import DefaultDict, List, Optional, Tuple

import numpy as np

from repro.gpusim.grouping import group_representatives, row_group_ids


@dataclass(frozen=True)
class RecordedAccess:
    """A single dynamic access to one element of one buffer."""

    buffer_id: int
    offset: int
    block: int
    thread: int
    epoch: int
    is_write: bool
    buffer_label: str = ""


@dataclass(frozen=True)
class RaceReport:
    """Two dynamic accesses that form a data race."""

    first: RecordedAccess
    second: RecordedAccess

    def describe(self) -> str:
        buf = self.first.buffer_label or f"buffer {self.first.buffer_id}"
        return (
            f"data race on {buf}[{self.first.offset}]: "
            f"block {self.first.block} thread {self.first.thread} "
            f"({'write' if self.first.is_write else 'read'}, epoch {self.first.epoch}) vs "
            f"block {self.second.block} thread {self.second.thread} "
            f"({'write' if self.second.is_write else 'read'}, epoch {self.second.epoch})"
        )


@dataclass(frozen=True)
class _AccessBatch:
    """One vectorized operation: every array has one entry per active lane.

    ``offsets`` are the detector's grouping keys; ``report_offsets`` (when
    given) are the user-facing element offsets shown in race reports.  The
    vectorized engine rebases per-block shared memory to block-disjoint key
    offsets while reporting the true within-block offset.
    """

    buffer_id: int
    offsets: np.ndarray
    blocks: np.ndarray
    threads: np.ndarray
    epoch: int
    is_write: bool
    buffer_label: str = ""
    report_offsets: Optional[np.ndarray] = None


class RaceDetector:
    """Collects accesses of one kernel launch and reports data races."""

    def __init__(self, max_reports: int = 16) -> None:
        self._by_location: DefaultDict[Tuple[int, int], List[RecordedAccess]] = defaultdict(list)
        self._batches: List[_AccessBatch] = []
        self.max_reports = max_reports

    def record(self, access: RecordedAccess) -> None:
        self._by_location[(access.buffer_id, access.offset)].append(access)

    def record_batch(
        self,
        buffer_id: int,
        offsets: np.ndarray,
        blocks: np.ndarray,
        threads: np.ndarray,
        epoch: int,
        is_write: bool,
        buffer_label: str = "",
        report_offsets: Optional[np.ndarray] = None,
    ) -> None:
        """Record one vectorized operation (all lanes share epoch/direction)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return
        self._batches.append(
            _AccessBatch(
                buffer_id=buffer_id,
                offsets=offsets,
                blocks=np.asarray(blocks, dtype=np.int64),
                threads=np.asarray(threads, dtype=np.int64),
                epoch=epoch,
                is_write=is_write,
                buffer_label=buffer_label,
                report_offsets=(
                    None if report_offsets is None else np.asarray(report_offsets, dtype=np.int64)
                ),
            )
        )

    @staticmethod
    def _conflict(a: RecordedAccess, b: RecordedAccess) -> bool:
        if not (a.is_write or b.is_write):
            return False
        if a.block == b.block and a.thread == b.thread:
            return False
        if a.block != b.block:
            return True
        return a.epoch == b.epoch

    @classmethod
    def _find_report(cls, accesses: List[RecordedAccess]) -> Optional[RaceReport]:
        """First conflicting (write, other) pair at one location, if any."""
        if len(accesses) < 2:
            return None
        writes = [a for a in accesses if a.is_write]
        # Compare writes against everything; this is O(w * n) per location,
        # which is fine for the element counts the interpreter handles.
        for write in writes:
            for other in accesses:
                if other is write:
                    continue
                if cls._conflict(write, other):
                    return RaceReport(write, other)
        return None

    def check(self) -> List[RaceReport]:
        """Return up to ``max_reports`` detected races."""
        reports: List[RaceReport] = []
        for accesses in self._by_location.values():
            if len(reports) >= self.max_reports:
                break
            report = self._find_report(accesses)
            if report is not None:
                reports.append(report)
        if self._batches and len(reports) < self.max_reports:
            reports.extend(self._check_batches(self.max_reports - len(reports)))
        return reports

    # -- batched analysis -------------------------------------------------------
    def _batch_columns(self):
        sizes = [len(batch.offsets) for batch in self._batches]
        bid = np.concatenate(
            [np.full(n, batch.buffer_id, dtype=np.int64) for batch, n in zip(self._batches, sizes)]
        )
        off = np.concatenate([batch.offsets for batch in self._batches])
        roff = np.concatenate(
            [
                batch.offsets if batch.report_offsets is None else batch.report_offsets
                for batch in self._batches
            ]
        )
        blk = np.concatenate([batch.blocks for batch in self._batches])
        thr = np.concatenate([batch.threads for batch in self._batches])
        epo = np.concatenate(
            [np.full(n, batch.epoch, dtype=np.int64) for batch, n in zip(self._batches, sizes)]
        )
        wrt = np.concatenate(
            [np.full(n, batch.is_write, dtype=bool) for batch, n in zip(self._batches, sizes)]
        )
        return bid, off, roff, blk, thr, epo, wrt

    def _check_batches(self, limit: int) -> List[RaceReport]:
        """Vectorized race detection over all batches.

        A location ``(buffer, offset)`` races iff

        * accesses from >= 2 distinct blocks include a write (cross-block
          accesses are never ordered), or
        * within one ``(block, epoch)`` group, >= 2 distinct threads access it
          and at least one writes (nothing orders threads between barriers).
        """
        bid, off, roff, blk, thr, epo, wrt = self._batch_columns()

        loc_ids, n_locs = row_group_ids(bid, off)
        has_write = np.zeros(n_locs, dtype=bool)
        has_write[loc_ids[wrt]] = True

        # Cross-block: locations touched by >= 2 blocks with at least one write.
        loc_block_ids, n_loc_blocks = row_group_ids(loc_ids, blk)
        loc_of_pair = group_representatives(loc_block_ids, n_loc_blocks, loc_ids)
        blocks_per_loc = np.bincount(loc_of_pair, minlength=n_locs)
        racy_locs = (blocks_per_loc >= 2) & has_write

        # Same block, same epoch: >= 2 distinct threads with at least one write.
        group_ids, n_groups = row_group_ids(loc_ids, blk, epo)
        member_ids, n_members = row_group_ids(group_ids, thr)
        group_of_member = group_representatives(member_ids, n_members, group_ids)
        threads_per_group = np.bincount(group_of_member, minlength=n_groups)
        group_has_write = np.zeros(n_groups, dtype=bool)
        group_has_write[group_ids[wrt]] = True
        racy_groups = (threads_per_group >= 2) & group_has_write
        loc_of_group = group_representatives(group_ids, n_groups, loc_ids)
        racy_locs[loc_of_group[racy_groups]] = True

        if not racy_locs.any():
            return []

        labels = {batch.buffer_id: batch.buffer_label for batch in self._batches}

        def materialize(i: int) -> RecordedAccess:
            return RecordedAccess(
                buffer_id=int(bid[i]),
                offset=int(roff[i]),
                block=int(blk[i]),
                thread=int(thr[i]),
                epoch=int(epo[i]),
                is_write=bool(wrt[i]),
                buffer_label=labels.get(int(bid[i]), ""),
            )

        reports: List[RaceReport] = []
        for loc in np.nonzero(racy_locs)[0]:
            pair = self._pair_for_location(np.nonzero(loc_ids == loc)[0], blk, thr, epo, wrt)
            if pair is not None:
                reports.append(RaceReport(materialize(pair[0]), materialize(pair[1])))
            if len(reports) >= limit:
                break
        return reports

    @staticmethod
    def _pair_for_location(lanes, blk, thr, epo, wrt):
        """One conflicting (write, other) lane pair at a known-racy location.

        Mirrors the two rules of :meth:`_check_batches` exactly, so a pair is
        found whenever one of them flagged the location — no sampling.
        """
        write_lanes = lanes[wrt[lanes]]
        if write_lanes.size == 0:
            return None
        # Cross-block: any write conflicts with any access in another block.
        first_write = write_lanes[0]
        other_block = lanes[blk[lanes] != blk[first_write]]
        if other_block.size:
            return int(first_write), int(other_block[0])
        # Same block: a write and a different thread in the same epoch.
        for write in write_lanes:
            conflicting = lanes[(epo[lanes] == epo[write]) & (thr[lanes] != thr[write])]
            if conflicting.size:
                return int(write), int(conflicting[0])
        return None

    def access_count(self) -> int:
        scalar = sum(len(v) for v in self._by_location.values())
        batched = sum(len(batch.offsets) for batch in self._batches)
        return scalar + batched
