"""Dynamic data-race detection for the GPU simulator.

Every memory access performed by a kernel is recorded with the thread that
performed it and the barrier *epoch* it happened in.  Two accesses to the
same element race when

* they come from different threads,
* at least one of them is a write, and
* nothing orders them: either the threads are in different blocks (blocks are
  never synchronised during a kernel), or they are in the same block and the
  accesses happen in the same barrier epoch.

This is the dynamic counterpart of Descend's static access-safety check: the
handwritten buggy CUDA kernel of Listing 1 races *dynamically* here, while
the Descend type checker rejects the equivalent program *statically*.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import DefaultDict, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class RecordedAccess:
    """A single dynamic access to one element of one buffer."""

    buffer_id: int
    offset: int
    block: int
    thread: int
    epoch: int
    is_write: bool
    buffer_label: str = ""


@dataclass(frozen=True)
class RaceReport:
    """Two dynamic accesses that form a data race."""

    first: RecordedAccess
    second: RecordedAccess

    def describe(self) -> str:
        buf = self.first.buffer_label or f"buffer {self.first.buffer_id}"
        return (
            f"data race on {buf}[{self.first.offset}]: "
            f"block {self.first.block} thread {self.first.thread} "
            f"({'write' if self.first.is_write else 'read'}, epoch {self.first.epoch}) vs "
            f"block {self.second.block} thread {self.second.thread} "
            f"({'write' if self.second.is_write else 'read'}, epoch {self.second.epoch})"
        )


class RaceDetector:
    """Collects accesses of one kernel launch and reports data races."""

    def __init__(self, max_reports: int = 16) -> None:
        self._by_location: DefaultDict[Tuple[int, int], List[RecordedAccess]] = defaultdict(list)
        self.max_reports = max_reports

    def record(self, access: RecordedAccess) -> None:
        self._by_location[(access.buffer_id, access.offset)].append(access)

    @staticmethod
    def _conflict(a: RecordedAccess, b: RecordedAccess) -> bool:
        if not (a.is_write or b.is_write):
            return False
        if a.block == b.block and a.thread == b.thread:
            return False
        if a.block != b.block:
            return True
        return a.epoch == b.epoch

    def check(self) -> List[RaceReport]:
        """Return up to ``max_reports`` detected races."""
        reports: List[RaceReport] = []
        for accesses in self._by_location.values():
            if len(reports) >= self.max_reports:
                break
            if len(accesses) < 2:
                continue
            writes = [a for a in accesses if a.is_write]
            if not writes:
                continue
            # Compare writes against everything; this is O(w * n) per location,
            # which is fine for the element counts the interpreter handles.
            for write in writes:
                for other in accesses:
                    if other is write:
                        continue
                    if self._conflict(write, other):
                        reports.append(RaceReport(write, other))
                        break
                else:
                    continue
                break
        return reports

    def access_count(self) -> int:
        return sum(len(v) for v in self._by_location.values())
