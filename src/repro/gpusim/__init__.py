"""A GPU simulator: the execution substrate for the Descend reproduction.

The paper evaluates Descend by compiling it to CUDA and running on a Tesla
P100.  Offline, this package provides the closest synthetic equivalent: a
simulator with

* host / global / shared / private memory spaces (:mod:`repro.gpusim.buffer`),
* a grid / block / thread execution model with block-wide barriers
  (:mod:`repro.gpusim.launch`),
* a dynamic data-race detector (:mod:`repro.gpusim.races`),
* an analytic cost model with warp-level coalescing of global-memory
  transactions and shared-memory bank conflicts (:mod:`repro.gpusim.cost`),
* a device front-end with ``malloc`` / ``memcpy`` / ``launch``
  (:mod:`repro.gpusim.device`),
* two interchangeable execution engines (:mod:`repro.gpusim.engine`): the
  per-thread ``"reference"`` interpreter and the lockstep ``"vectorized"``
  engine, which produces identical cycle counts an order of magnitude
  faster.

Kernels are Python *generator functions* ``kernel(ctx, *args)``; ``yield``
acts as ``__syncthreads()``.  Both the handwritten CUDA-lite baselines and
the Descend interpreter execute on this substrate, so the relative runtimes
reported in the benchmark harness compare like with like.
"""

from repro.gpusim.buffer import DeviceBuffer, HostBuffer
from repro.gpusim.cost import CostModel, CostParameters, KernelCost
from repro.gpusim.device import GpuDevice, LaunchResult
from repro.gpusim.engine import EXECUTION_MODES, VecCtx, get_engine, vectorized_impl
from repro.gpusim.launch import ThreadCtx
from repro.gpusim.races import RaceDetector, RaceReport

__all__ = [
    "DeviceBuffer",
    "HostBuffer",
    "CostModel",
    "CostParameters",
    "KernelCost",
    "GpuDevice",
    "LaunchResult",
    "ThreadCtx",
    "RaceDetector",
    "RaceReport",
    "EXECUTION_MODES",
    "VecCtx",
    "get_engine",
    "vectorized_impl",
]
