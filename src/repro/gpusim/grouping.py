"""Vectorized group-by helpers shared by the batched cost model and race detector.

``np.unique(rows, axis=0)`` sorts structured rows, which is an order of
magnitude slower than 1-D integer sorts.  :func:`row_group_ids` instead folds
the columns together one at a time: each column is dense-ranked with a 1-D
``np.unique`` and combined into the running key as ``key * n_ranks + rank``.
After every fold the key is re-densified, so the combined value stays below
``n_rows ** 2`` and can never overflow int64.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def row_group_ids(*columns: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense group id per row for the given tuple of columns.

    Rows with equal values in every column receive the same id; ids are
    contiguous in ``[0, n_groups)``.  Equivalent to grouping by
    ``np.unique(np.stack(columns, axis=1), axis=0)`` but built from fast 1-D
    uniques.
    """
    ids: np.ndarray | None = None
    n_groups = 1
    for column in columns:
        _, ranks = np.unique(np.asarray(column), return_inverse=True)
        ranks = ranks.astype(np.int64, copy=False)
        n_ranks = int(ranks.max()) + 1 if ranks.size else 0
        if ids is None:
            ids = ranks
            n_groups = n_ranks
        else:
            _, ids = np.unique(ids * n_ranks + ranks, return_inverse=True)
            ids = ids.astype(np.int64, copy=False)
            n_groups = int(ids.max()) + 1 if ids.size else 0
    assert ids is not None, "row_group_ids needs at least one column"
    return ids, n_groups


def group_representatives(group_ids: np.ndarray, n_groups: int, values: np.ndarray) -> np.ndarray:
    """One (arbitrary, consistent) value per group: ``out[g] = values[i]`` for some row i in g."""
    out = np.zeros(n_groups, dtype=np.asarray(values).dtype)
    out[group_ids] = values
    return out
