"""Source files and spans.

Every AST node produced by the parser carries a :class:`Span` pointing back
into a :class:`SourceFile`.  Spans are used by the diagnostics machinery to
render the caret-underlined error messages shown in the paper (Section 2).
Programs built programmatically via :mod:`repro.descend.builder` use
:data:`NO_SPAN`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class Span:
    """A half-open byte range ``[start, end)`` within a source file."""

    start: int = 0
    end: int = 0
    file_name: str = "<builder>"

    def merge(self, other: Optional["Span"]) -> "Span":
        """Return the smallest span covering both ``self`` and ``other``."""
        if other is None or other is NO_SPAN or other.file_name != self.file_name:
            return self
        if self is NO_SPAN:
            return other
        return Span(min(self.start, other.start), max(self.end, other.end), self.file_name)

    @property
    def length(self) -> int:
        return max(0, self.end - self.start)

    def is_synthetic(self) -> bool:
        """True for spans that do not point into real source text."""
        return self.file_name == "<builder>" and self.start == 0 and self.end == 0


#: Span used for programmatically constructed AST nodes.
NO_SPAN = Span()


class SourceFile:
    """A named piece of Descend source text with line/column lookup."""

    def __init__(self, text: str, name: str = "<descend>"):
        self.text = text
        self.name = name
        self._line_starts = self._compute_line_starts(text)

    @staticmethod
    def _compute_line_starts(text: str) -> List[int]:
        starts = [0]
        starts.extend(index + 1 for index, char in enumerate(text) if char == "\n")
        return starts

    def span(self, start: int, end: int) -> Span:
        """Create a span owned by this file."""
        return Span(start, end, self.name)

    def line_col(self, offset: int) -> Tuple[int, int]:
        """Return the 1-based ``(line, column)`` of a byte offset."""
        offset = max(0, min(offset, len(self.text)))
        low, high = 0, len(self._line_starts) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._line_starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        line = low
        column = offset - self._line_starts[line]
        return line + 1, column + 1

    def line_text(self, line_number: int) -> str:
        """Return the text of a 1-based line number without the newline."""
        index = line_number - 1
        if index < 0 or index >= len(self._line_starts):
            return ""
        start = self._line_starts[index]
        if index + 1 < len(self._line_starts):
            end = self._line_starts[index + 1] - 1
        else:
            end = len(self.text)
        return self.text[start:end]

    def snippet(self, span: Span) -> str:
        """Return the raw source text covered by a span."""
        return self.text[span.start:span.end]

    @property
    def line_count(self) -> int:
        return len(self._line_starts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile(name={self.name!r}, {len(self.text)} bytes)"
