"""Symbolic natural numbers (the ``nat`` kind of Descend).

Array sizes, view parameters, grid and block dimensions are all natural
numbers that may be constants, variables bound by polymorphic functions, or
simple arithmetic over those (Figure 2 / Figure 6 of the paper:
``η ::= 0 | ... | 9 | n | η + η | η ∗ η | ...``).

The type checker needs to decide equality of such expressions (for example
"does the launch configuration provide exactly ``n`` threads?") and evaluate
them once all variables are instantiated (code generation, interpreter).

Normalisation turns a nat expression into a canonical *sum of products* form
(a polynomial over the nat variables) whenever only ``+``, ``-`` and ``*``
are involved.  Division and modulo are kept symbolic but simplified when the
operands are known constants or syntactically equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple, Union

from repro.errors import DescendError


class NatError(DescendError):
    """Raised for invalid nat arithmetic (negative results, division by zero...)."""


NatLike = Union["Nat", int, str]


class Nat:
    """Base class of symbolic natural number expressions."""

    __slots__ = ()

    # -- construction helpers -------------------------------------------------
    def __add__(self, other: NatLike) -> "Nat":
        return NatBinOp("+", self, as_nat(other))

    def __radd__(self, other: NatLike) -> "Nat":
        return NatBinOp("+", as_nat(other), self)

    def __sub__(self, other: NatLike) -> "Nat":
        return NatBinOp("-", self, as_nat(other))

    def __rsub__(self, other: NatLike) -> "Nat":
        return NatBinOp("-", as_nat(other), self)

    def __mul__(self, other: NatLike) -> "Nat":
        return NatBinOp("*", self, as_nat(other))

    def __rmul__(self, other: NatLike) -> "Nat":
        return NatBinOp("*", as_nat(other), self)

    def __floordiv__(self, other: NatLike) -> "Nat":
        return NatBinOp("/", self, as_nat(other))

    def __truediv__(self, other: NatLike) -> "Nat":
        return NatBinOp("/", self, as_nat(other))

    def __mod__(self, other: NatLike) -> "Nat":
        return NatBinOp("%", self, as_nat(other))

    def __pow__(self, other: NatLike) -> "Nat":
        return NatBinOp("^", self, as_nat(other))

    # -- queries ---------------------------------------------------------------
    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        """Evaluate to a concrete integer; raises :class:`NatError` on unknowns."""
        raise NotImplementedError

    def free_vars(self) -> FrozenSet[str]:
        raise NotImplementedError

    def substitute(self, mapping: Mapping[str, "Nat"]) -> "Nat":
        """Replace nat variables according to ``mapping``."""
        raise NotImplementedError

    def is_constant(self) -> bool:
        return not self.free_vars()

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class NatConst(Nat):
    """A constant natural number."""

    value: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise NatError(f"natural numbers cannot be negative: {self.value}")

    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        return self.value

    def free_vars(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Nat]) -> Nat:
        return self

    def __str__(self) -> str:
        return str(self.value)

    # dataclass(frozen=True) provides __hash__/__eq__


@dataclass(frozen=True)
class NatVar(Nat):
    """A nat variable bound by a polymorphic function (e.g. ``n: nat``)."""

    name: str

    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        if env is not None and self.name in env:
            return int(env[self.name])
        raise NatError(f"cannot evaluate nat variable `{self.name}` without a binding")

    def free_vars(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def substitute(self, mapping: Mapping[str, Nat]) -> Nat:
        return mapping.get(self.name, self)

    def __str__(self) -> str:
        return self.name


_VALID_OPS = ("+", "-", "*", "/", "%", "^")


@dataclass(frozen=True)
class NatBinOp(Nat):
    """A binary arithmetic expression over nats."""

    op: str
    lhs: Nat
    rhs: Nat

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise NatError(f"unsupported nat operator: {self.op!r}")

    def evaluate(self, env: Optional[Mapping[str, int]] = None) -> int:
        left = self.lhs.evaluate(env)
        right = self.rhs.evaluate(env)
        if self.op == "+":
            return left + right
        if self.op == "-":
            result = left - right
            if result < 0:
                raise NatError(f"nat subtraction underflow: {left} - {right}")
            return result
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                raise NatError("division by zero in nat expression")
            return left // right
        if self.op == "%":
            if right == 0:
                raise NatError("modulo by zero in nat expression")
            return left % right
        if self.op == "^":
            return left ** right
        raise NatError(f"unsupported nat operator: {self.op!r}")  # pragma: no cover

    def free_vars(self) -> FrozenSet[str]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def substitute(self, mapping: Mapping[str, Nat]) -> Nat:
        return NatBinOp(self.op, self.lhs.substitute(mapping), self.rhs.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


def as_nat(value: NatLike) -> Nat:
    """Coerce an int, str (variable name), or Nat into a :class:`Nat`."""
    if isinstance(value, Nat):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise NatError("booleans are not natural numbers")
    if isinstance(value, int):
        return NatConst(value)
    if isinstance(value, str):
        if value.isdigit():
            return NatConst(int(value))
        return NatVar(value)
    raise NatError(f"cannot interpret {value!r} as a natural number")


# ---------------------------------------------------------------------------
# Normalisation: canonical sum-of-products polynomial form
# ---------------------------------------------------------------------------

# A monomial maps variable-ish keys (strings) to powers; the polynomial maps
# monomials (as sorted tuples of (key, power)) to rational coefficients.
Monomial = Tuple[Tuple[str, int], ...]
Polynomial = Dict[Monomial, Fraction]

_CONST_MONOMIAL: Monomial = ()


def _poly_const(value: Union[int, Fraction]) -> Polynomial:
    if value == 0:
        return {}
    return {_CONST_MONOMIAL: Fraction(value)}


def _poly_var(key: str) -> Polynomial:
    return {((key, 1),): Fraction(1)}


def _poly_add(a: Polynomial, b: Polynomial, sign: int = 1) -> Polynomial:
    result: Polynomial = dict(a)
    for monomial, coeff in b.items():
        updated = result.get(monomial, Fraction(0)) + sign * coeff
        if updated == 0:
            result.pop(monomial, None)
        else:
            result[monomial] = updated
    return result


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: Dict[str, int] = {}
    for key, power in a:
        powers[key] = powers.get(key, 0) + power
    for key, power in b:
        powers[key] = powers.get(key, 0) + power
    return tuple(sorted(powers.items()))


def _poly_mul(a: Polynomial, b: Polynomial) -> Polynomial:
    result: Polynomial = {}
    for mono_a, coeff_a in a.items():
        for mono_b, coeff_b in b.items():
            mono = _mono_mul(mono_a, mono_b)
            updated = result.get(mono, Fraction(0)) + coeff_a * coeff_b
            if updated == 0:
                result.pop(mono, None)
            else:
                result[mono] = updated
    return result


@lru_cache(maxsize=16384)
def _polynomial_of(nat: Nat) -> Polynomial:
    """Memoized polynomial form of a nat expression.

    Nats are immutable value objects, so structurally equal expressions share
    one cached polynomial.  Callers must treat the returned dict as frozen
    (every consumer in this module copies before mutating).
    """
    return _to_polynomial(nat)


def _to_polynomial(nat: Nat) -> Polynomial:
    """Convert a nat expression into polynomial form.

    Division and modulo sub-expressions that cannot be folded are treated as
    opaque atoms: they become fresh polynomial "variables" keyed by their
    canonical string, which keeps normalisation sound (two syntactically
    identical opaque terms still compare equal).
    """
    if isinstance(nat, NatConst):
        return _poly_const(nat.value)
    if isinstance(nat, NatVar):
        return _poly_var(nat.name)
    if isinstance(nat, NatBinOp):
        if nat.op == "+":
            return _poly_add(_polynomial_of(nat.lhs), _polynomial_of(nat.rhs))
        if nat.op == "-":
            return _poly_add(_polynomial_of(nat.lhs), _polynomial_of(nat.rhs), sign=-1)
        if nat.op == "*":
            return _poly_mul(_polynomial_of(nat.lhs), _polynomial_of(nat.rhs))
        if nat.op == "^":
            return _power_polynomial(nat)
        if nat.op in ("/", "%"):
            simplified = _simplify_divmod(nat)
            if isinstance(simplified, NatBinOp) and simplified.op in ("/", "%"):
                key = f"⟨{simplified}⟩"
                return _poly_var(key)
            return _polynomial_of(simplified)
    raise NatError(f"cannot normalise nat expression {nat!r}")  # pragma: no cover


def _power_polynomial(nat: NatBinOp) -> Polynomial:
    """Normalise power expressions.

    ``b ^ c`` with constant ``c`` is expanded into repeated multiplication.
    ``b ^ (e + c)`` with a constant part ``c`` in the exponent is rewritten to
    ``b^e * b^c`` so that e.g. ``2^(k+1)`` and ``2 * 2^k`` normalise equally.
    Anything else becomes an opaque atom keyed by its canonical string.
    """
    base = normalize(nat.lhs)
    exponent = normalize(nat.rhs)
    if isinstance(exponent, NatConst):
        result = _poly_const(1)
        base_poly = _polynomial_of(base)
        for _ in range(exponent.value):
            result = _poly_mul(result, base_poly)
        return result
    # Split a constant offset out of the exponent: b^(e) where e = rest + c.
    exponent_poly = _to_safe_polynomial(exponent)
    if exponent_poly is not None and _CONST_MONOMIAL in exponent_poly:
        const_part = exponent_poly[_CONST_MONOMIAL]
        if const_part.denominator == 1 and const_part.numerator > 0:
            rest = dict(exponent_poly)
            del rest[_CONST_MONOMIAL]
            rest_nat = _from_polynomial(rest)
            if rest_nat is not None:
                reduced = NatBinOp("^", base, rest_nat)
                result = _polynomial_of(reduced)
                base_poly = _polynomial_of(base)
                for _ in range(int(const_part)):
                    result = _poly_mul(result, base_poly)
                return result
    key = f"⟨({base} ^ {exponent})⟩"
    return _poly_var(key)


def _simplify_divmod(nat: NatBinOp) -> Nat:
    """Best-effort simplification of division/modulo."""
    lhs = normalize(nat.lhs)
    rhs = normalize(nat.rhs)
    if isinstance(rhs, NatConst) and rhs.value == 1:
        return lhs if nat.op == "/" else NatConst(0)
    if isinstance(lhs, NatConst) and isinstance(rhs, NatConst):
        return NatConst(NatBinOp(nat.op, lhs, rhs).evaluate({}))
    if nat_equal(lhs, rhs):
        return NatConst(1) if nat.op == "/" else NatConst(0)
    # (a * k) / k  ->  a   when k is a common constant factor
    if nat.op == "/" and isinstance(rhs, NatConst) and rhs.value > 0:
        poly = _to_safe_polynomial(lhs)
        if poly is not None and all(coeff.denominator == 1 and coeff.numerator % rhs.value == 0 for coeff in poly.values()):
            scaled = {mono: coeff / rhs.value for mono, coeff in poly.items()}
            rebuilt = _from_polynomial(scaled)
            if rebuilt is not None:
                return rebuilt
    return NatBinOp(nat.op, lhs, rhs)


def _to_safe_polynomial(nat: Nat) -> Optional[Polynomial]:
    try:
        return _polynomial_of(nat)
    except NatError:  # pragma: no cover - defensive
        return None


def _from_polynomial(poly: Polynomial) -> Optional[Nat]:
    """Rebuild a Nat from a polynomial; returns ``None`` for fractional coefficients."""
    if not poly:
        return NatConst(0)
    terms = []
    for monomial, coeff in sorted(poly.items()):
        if coeff.denominator != 1:
            return None
        factor: Optional[Nat] = None
        for key, power in monomial:
            base = _atom_from_key(key)
            for _ in range(power):
                factor = base if factor is None else NatBinOp("*", factor, base)
        coefficient = int(coeff)
        if factor is None:
            term: Nat = NatConst(abs(coefficient))
        elif abs(coefficient) == 1:
            term = factor
        else:
            term = NatBinOp("*", NatConst(abs(coefficient)), factor)
        terms.append((coefficient < 0, term))
    positives = [t for negative, t in terms if not negative]
    negatives = [t for negative, t in terms if negative]
    if not positives:
        return None
    result = positives[0]
    for term in positives[1:]:
        result = NatBinOp("+", result, term)
    for term in negatives:
        result = NatBinOp("-", result, term)
    return result


_ATOM_CACHE: Dict[str, Nat] = {}


def _atom_from_key(key: str) -> Nat:
    """Map a polynomial variable key back to a Nat atom."""
    if key in _ATOM_CACHE:
        return _ATOM_CACHE[key]
    return NatVar(key) if not key.startswith("⟨") else NatVar(key)


@lru_cache(maxsize=16384)
def _normalize_cached(nat: Nat) -> Nat:
    poly = _polynomial_of(nat)
    rebuilt = _from_polynomial(poly)
    if rebuilt is None:
        return nat
    return rebuilt


def normalize(nat: NatLike) -> Nat:
    """Return a canonical form of ``nat``.

    Two expressions that denote the same polynomial normalise to structurally
    equal Nats, which is how the type checker compares sizes.  Results are
    memoized: nats are immutable value objects, so the type checker's
    repeated normalisation of the same view/size expressions hits the cache.
    """
    nat = as_nat(nat)
    if isinstance(nat, (NatConst, NatVar)):
        return nat
    return _normalize_cached(nat)


def nat_equal(a: NatLike, b: NatLike) -> bool:
    """Decide (best-effort, sound for polynomials) whether two nats are equal."""
    a = as_nat(a)
    b = as_nat(b)
    if a == b:
        return True
    try:
        poly_a = _polynomial_of(a)
        poly_b = _polynomial_of(b)
    except NatError:
        return False
    return poly_a == poly_b


def nat_known_distinct(a: NatLike, b: NatLike) -> bool:
    """True when the two nats are *provably* different (used for disjointness)."""
    a = as_nat(a)
    b = as_nat(b)
    if a.is_constant() and b.is_constant():
        return a.evaluate({}) != b.evaluate({})
    difference = _poly_add(_to_safe_polynomial(a) or {}, _to_safe_polynomial(b) or {}, sign=-1)
    # A non-zero constant difference proves distinctness even with variables.
    if set(difference.keys()) == {_CONST_MONOMIAL} and difference[_CONST_MONOMIAL] != 0:
        return True
    return False


def nat_divisible(a: NatLike, b: NatLike) -> Optional[bool]:
    """Check ``a % b == 0``; returns ``None`` when undecidable symbolically."""
    a = as_nat(a)
    b = as_nat(b)
    if a.is_constant() and b.is_constant():
        divisor = b.evaluate({})
        if divisor == 0:
            return None
        return a.evaluate({}) % divisor == 0
    if nat_equal(a, b):
        return True
    if isinstance(b, NatConst) and b.value > 0:
        poly = _to_safe_polynomial(a)
        if poly is not None and all(
            coeff.denominator == 1 and coeff.numerator % b.value == 0 for coeff in poly.values()
        ):
            return True
    return None


def nat_le(a: NatLike, b: NatLike) -> Optional[bool]:
    """Check ``a <= b``; returns ``None`` when undecidable symbolically."""
    a = as_nat(a)
    b = as_nat(b)
    if a.is_constant() and b.is_constant():
        return a.evaluate({}) <= b.evaluate({})
    if nat_equal(a, b):
        return True
    return None


@lru_cache(maxsize=32768)
def _sorted_free_vars(nat: Nat) -> Tuple[str, ...]:
    return tuple(sorted(nat.free_vars()))


@lru_cache(maxsize=65536)
def _evaluate_cached(nat: Nat, values: Tuple[int, ...]) -> int:
    return nat.evaluate(dict(zip(_sorted_free_vars(nat), values)))


def evaluate_nat(nat: NatLike, env: Optional[Mapping[str, int]] = None) -> int:
    """Evaluate a nat expression with the given variable bindings.

    Results are memoized per ``(expression, relevant bindings)``: the cache
    key only includes the *values* of the expression's free variables (in
    sorted-name order), so the interpreter's per-statement evaluation of
    loop-invariant sizes (and the reference engine's per-*thread* evaluation)
    collapses to one dict lookup.
    """
    nat = as_nat(nat)
    if isinstance(nat, NatConst):
        return nat.value
    if env:
        if isinstance(nat, NatVar):
            return nat.evaluate(env)
        try:
            values = tuple(int(env[name]) for name in _sorted_free_vars(nat))
        except KeyError:
            return nat.evaluate(env)  # unbound variable: raise the usual NatError
        return _evaluate_cached(nat, values)
    return _evaluate_cached(nat, ())


def clear_nat_caches() -> None:
    """Drop the nat memoization caches (used by benchmarks to measure cold runs)."""
    _polynomial_of.cache_clear()
    _normalize_cached.cache_clear()
    _sorted_free_vars.cache_clear()
    _evaluate_cached.cache_clear()


def free_nat_vars(nats: Iterable[NatLike]) -> Set[str]:
    """Union of free variables over a collection of nat expressions."""
    names: Set[str] = set()
    for nat in nats:
        names |= set(as_nat(nat).free_vars())
    return names
