"""The per-thread interpreter for GPU Descend functions.

A Descend GPU function is executed by the whole grid; under the holistic
model every statement is executed by the execution resource that is current
at that point (the grid, a collection of blocks, a single thread...).  On the
simulator — exactly like in the CUDA code the real compiler generates — the
function body is executed by *every thread*, with ``sched`` binding the
thread's own coordinates and ``split`` selecting which branch the thread
participates in.

Barriers (``sync``) become ``yield`` for the simulator's block executor, so
the interpreter's statement execution is generator-based.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim, DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.ast.places import PDeref, PIdx, PProj, PSelect, PVar, PView, PlaceExpr
from repro.descend.ast.types import ArrayType, ArrayViewType, DataType, RefType, ScalarType
from repro.descend.interp.values import MemValue, Value, numpy_dtype, static_shape
from repro.descend.nat import Nat, evaluate_nat
from repro.descend.views.indexing import LogicalArray, LogicalPair, bind_view
from repro.errors import DescendRuntimeError
from repro.gpusim.buffer import DeviceBuffer
from repro.gpusim.device import GpuDevice, LaunchResult
from repro.gpusim.launch import ThreadCtx

_ARITH_OPS = ("+", "-", "*", "/", "%")


@dataclass
class ScalarSlot:
    """A fully indexed element of a buffer (the result of evaluating a place)."""

    buffer: DeviceBuffer
    offset: int


class _LocalScalar:
    """Marker for a plain scalar local variable used as an assignment target."""

    def __init__(self, name: str):
        self.name = name


class ThreadState:
    """Interpreter state for one simulated GPU thread."""

    def __init__(
        self,
        ctx: ThreadCtx,
        fun_def: T.FunDef,
        nat_env: Dict[str, int],
        args: Dict[str, Value],
    ) -> None:
        self.ctx = ctx
        self.fun_def = fun_def
        self.nat_env = dict(nat_env)
        self.locals: Dict[str, Value] = dict(args)
        self.exec_coords: Dict[str, Tuple[int, ...]] = {}

        level = fun_def.exec_spec.level
        if not isinstance(level, GpuGridLevel):
            raise DescendRuntimeError(
                f"`{fun_def.name}` is not a GPU grid function and cannot be launched"
            )
        self._block_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.blocks.entries
        }
        self._thread_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.threads.entries
        }
        self._pending_blocks = set(self._block_window)
        self._pending_threads = set(self._thread_window)

    # -- coordinates ----------------------------------------------------------------
    def _raw_index(self, dim: DimName, over_blocks: bool) -> int:
        source = self.ctx.blockIdx if over_blocks else self.ctx.threadIdx
        return {DimName.X: source.x, DimName.Y: source.y, DimName.Z: source.z}[dim]

    def _nat_value(self, nat: Nat) -> int:
        return int(evaluate_nat(nat, self.nat_env))

    # -- place evaluation --------------------------------------------------------------
    def eval_place(self, place: PlaceExpr):
        """Evaluate a place to a ScalarSlot, a MemValue, a scalar, or a local slot."""
        parts = place.parts()
        root = parts[0]
        assert isinstance(root, PVar)
        if root.name not in self.locals:
            raise DescendRuntimeError(f"unbound variable `{root.name}` at runtime")
        value = self.locals[root.name]

        if not isinstance(value, MemValue):
            if len(parts) == 1:
                return _LocalScalar(root.name)
            raise DescendRuntimeError(
                f"`{root.name}` is a scalar and cannot be indexed or viewed"
            )

        current: Union[LogicalArray, LogicalPair] = value.logical
        buffer = value.buffer
        for part in parts[1:]:
            if isinstance(part, PDeref):
                continue
            if isinstance(part, PView):
                if isinstance(current, LogicalPair):
                    raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
                bound = bind_view(part.ref, resolver=self._nat_value)
                current = current.apply_view(bound)
                continue
            if isinstance(part, PProj):
                if isinstance(current, LogicalPair):
                    current = current.project(part.index)
                    continue
                raise DescendRuntimeError("tuple projections on runtime tuples are not supported")
            if isinstance(current, LogicalPair):
                raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
            if isinstance(part, PSelect):
                coords = self.exec_coords.get(part.exec_var)
                if coords is None:
                    raise DescendRuntimeError(
                        f"`{part.exec_var}` is not a scheduled execution resource"
                    )
                current = current.select(coords)
                continue
            if isinstance(part, PIdx):
                index_value = (
                    self._nat_value(part.index)
                    if isinstance(part.index, Nat)
                    else int(self.eval_expr(part.index))
                )
                current = current.index(index_value)
                continue
            raise DescendRuntimeError(f"unsupported place expression step {part}")

        if isinstance(current, LogicalPair):
            raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
        if current.is_scalar():
            return ScalarSlot(buffer=buffer, offset=int(current.flat_offset(())))
        return MemValue(buffer=buffer, logical=current, uniq=value.uniq)

    # -- expressions ----------------------------------------------------------------------
    def eval_expr(self, term: T.Term) -> Value:
        if isinstance(term, T.Lit):
            return term.value
        if isinstance(term, T.NatTerm):
            return self._nat_value(term.nat)
        if isinstance(term, T.PlaceTerm):
            target = self.eval_place(term.place)
            if isinstance(target, ScalarSlot):
                return self.ctx.load(target.buffer, target.offset)
            if isinstance(target, _LocalScalar):
                return self.locals[target.name]
            return target
        if isinstance(term, T.Borrow):
            target = self.eval_place(term.place)
            if isinstance(target, ScalarSlot):
                raise DescendRuntimeError("cannot borrow a single element at runtime")
            if isinstance(target, _LocalScalar):
                raise DescendRuntimeError("cannot borrow a scalar local at runtime")
            return target
        if isinstance(term, T.BinaryOp):
            return self._eval_binary(term)
        if isinstance(term, T.UnaryOp):
            operand = self.eval_expr(term.operand)
            if term.op == "-":
                self.ctx.arith(1)
                return -operand
            if term.op == "!":
                return not operand
            raise DescendRuntimeError(f"unsupported unary operator {term.op}")
        if isinstance(term, T.Alloc):
            return self._eval_alloc(term)
        if isinstance(term, T.FnApp):
            raise DescendRuntimeError(
                f"function calls on the GPU are inlined before execution; "
                f"cannot interpret call to `{term.name}`"
            )
        raise DescendRuntimeError(f"cannot evaluate term {term}")

    def _eval_binary(self, term: T.BinaryOp) -> Value:
        lhs = self.eval_expr(term.lhs)
        rhs = self.eval_expr(term.rhs)
        op = term.op
        if op in _ARITH_OPS:
            self.ctx.arith(1)
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                if isinstance(lhs, (int, np.integer)) and isinstance(rhs, (int, np.integer)):
                    return lhs // rhs
                return lhs / rhs
            if op == "%":
                return lhs % rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        if op == "&&":
            return bool(lhs) and bool(rhs)
        if op == "||":
            return bool(lhs) or bool(rhs)
        raise DescendRuntimeError(f"unsupported binary operator {op}")

    def _eval_alloc(self, term: T.Alloc) -> MemValue:
        shape = static_shape(term.ty, self.nat_env) or (1,)
        dtype = numpy_dtype(term.ty)
        mem_name = str(term.mem)
        if mem_name == "gpu.shared":
            buffer = self.ctx.shared(f"shared_{id(term)}", shape, dtype=dtype)
        elif mem_name == "gpu.local":
            buffer = self.ctx.local(shape, dtype=dtype)
        else:
            raise DescendRuntimeError(f"cannot allocate `{term.mem}` memory on the GPU")
        return MemValue.whole(buffer)

    # -- statements -------------------------------------------------------------------------
    def exec_stmt(self, term: T.Term):
        """Execute a statement; yields at barriers."""
        if isinstance(term, T.Block):
            # Only bindings introduced by this block go out of scope at its end;
            # mutations of outer variables must survive.
            shadowed: Dict[str, Value] = {}
            introduced: List[str] = []
            try:
                for stmt in term.stmts:
                    if isinstance(stmt, T.LetTerm):
                        if stmt.name in self.locals and stmt.name not in shadowed:
                            shadowed[stmt.name] = self.locals[stmt.name]
                        introduced.append(stmt.name)
                    yield from self.exec_stmt(stmt)
            finally:
                for name in introduced:
                    self.locals.pop(name, None)
                self.locals.update(shadowed)
            return
        if isinstance(term, T.LetTerm):
            self.locals[term.name] = self.eval_expr(term.init)
            return
        if isinstance(term, T.Assign):
            value = self.eval_expr(term.value)
            target = self.eval_place(term.place)
            if isinstance(target, _LocalScalar):
                self.locals[target.name] = value
            elif isinstance(target, ScalarSlot):
                self.ctx.store(target.buffer, target.offset, value)
            else:
                raise DescendRuntimeError(
                    f"cannot assign a whole array at once: `{term.place}`"
                )
            return
        if isinstance(term, T.IfTerm):
            if self.eval_expr(term.cond):
                yield from self.exec_stmt(term.then)
            elif term.otherwise is not None:
                yield from self.exec_stmt(term.otherwise)
            return
        if isinstance(term, T.ForNat):
            lo = self._nat_value(term.lo)
            hi = self._nat_value(term.hi)
            previous = self.nat_env.get(term.var)
            for value in range(lo, hi):
                self.nat_env[term.var] = value
                yield from self.exec_stmt(term.body)
            if previous is None:
                self.nat_env.pop(term.var, None)
            else:
                self.nat_env[term.var] = previous
            return
        if isinstance(term, T.ForEach):
            collection = self.eval_expr(term.collection)
            if not isinstance(collection, MemValue):
                raise DescendRuntimeError("`for ... in` expects an array value")
            size = collection.shape[0]
            for index in range(size):
                element = collection.logical.index(index)
                if element.is_scalar():
                    value: Value = self.ctx.load(collection.buffer, int(element.flat_offset(())))
                else:
                    value = MemValue(buffer=collection.buffer, logical=element)
                self.locals[term.var] = value
                yield from self.exec_stmt(term.body)
            return
        if isinstance(term, T.Sched):
            yield from self._exec_sched(term)
            return
        if isinstance(term, T.SplitExec):
            yield from self._exec_split(term)
            return
        if isinstance(term, T.Sync):
            yield
            return
        # expression statements (function application on the host etc.)
        self.eval_expr(term)
        return

    def _exec_sched(self, term: T.Sched):
        over_blocks = bool(self._pending_blocks)
        window = self._block_window if over_blocks else self._thread_window
        pending = self._pending_blocks if over_blocks else self._pending_threads

        coords = []
        for dim in term.dims:
            if dim not in pending:
                raise DescendRuntimeError(
                    f"dimension {dim} is not pending for `{term.exec_name}`"
                )
            lo, _hi = window[dim]
            coords.append(self._raw_index(dim, over_blocks) - lo)
        removed = [dim for dim in term.dims]
        for dim in removed:
            pending.discard(dim)
        previous_coords = self.exec_coords.get(term.binder)
        self.exec_coords[term.binder] = tuple(coords)
        try:
            yield from self.exec_stmt(term.body)
        finally:
            if previous_coords is None:
                self.exec_coords.pop(term.binder, None)
            else:
                self.exec_coords[term.binder] = previous_coords
            for dim in removed:
                pending.add(dim)

    def _exec_split(self, term: T.SplitExec):
        over_blocks = term.dim in self._pending_blocks
        window = self._block_window if over_blocks else self._thread_window
        if term.dim not in window:
            raise DescendRuntimeError(f"cannot split missing dimension {term.dim}")
        lo, hi = window[term.dim]
        pos = self._nat_value(term.pos)
        relative = self._raw_index(term.dim, over_blocks) - lo
        if relative < pos:
            window[term.dim] = [lo, lo + pos]
            chosen = term.first_body
        else:
            window[term.dim] = [lo + pos, hi]
            chosen = term.second_body
        try:
            yield from self.exec_stmt(chosen)
        finally:
            window[term.dim] = [lo, hi]


class DescendKernel:
    """Launches one GPU Descend function on the simulator.

    The launch configuration is derived from the function's execution
    resource annotation, so host code cannot accidentally launch with the
    wrong grid (the shared-assumption problem of Section 2.3).

    Under ``execution_mode="vectorized"`` (selected per launch or inherited
    from the device) the function body is lowered once into a
    :class:`~repro.descend.plan.ir.DevicePlan` — the serializable plan IR of
    :mod:`repro.descend.plan` — and executed as batched numpy operations;
    functions the plan compiler cannot lower fall back to this per-thread
    reference interpreter automatically (:attr:`fallback_reason` records
    why).

    Device plans are cached in a :class:`~repro.descend.driver.CompileSession`
    keyed by content hash (and additionally memoized on the kernel handle),
    so repeated launches — even from freshly constructed handles for the
    same program — reuse one plan instead of re-lowering per launch.
    """

    def __init__(
        self,
        program: T.Program,
        fun_name: str,
        session=None,
        compiled=None,
    ) -> None:
        self.program = program
        self.fun_def = program.fun(fun_name)
        level = self.fun_def.exec_spec.level
        if not isinstance(level, GpuGridLevel):
            raise DescendRuntimeError(f"`{fun_name}` is not a GPU grid function")
        self.level = level
        #: session whose plan cache this kernel uses (``None`` = the active one)
        self.session = session
        self._compiled = compiled
        self._plan_entry: Optional[Tuple[Optional[object], Optional[str]]] = None
        self._plan_source_entry: Optional[Tuple[Optional[object], Optional[str]]] = None
        #: why the last vectorized/jit launch fell back to a slower engine
        #: (``None`` when it did not).
        self.fallback_reason: Optional[str] = None

    def _session_and_key(self):
        from repro.descend.driver import active_session

        session = self.session if self.session is not None else active_session()
        if self._compiled is not None:
            return session, self._compiled.cache_key(), self._compiled.unit
        return session, None, self.fun_def.name

    def _resolve_plan(self) -> Tuple[Optional[object], Optional[str]]:
        """The cached ``(plan, fallback_reason)`` pair for this function."""
        if self._plan_entry is None:
            session, key, unit = self._session_and_key()
            self._plan_entry = session.device_plan(
                self.program, self.fun_def.name, key=key, unit=unit
            )
        return self._plan_entry

    def _resolve_plan_source(self) -> Tuple[Optional[object], Optional[str]]:
        """The cached ``(plan_source, fallback_reason)`` pair for this function."""
        if self._plan_source_entry is None:
            session, key, unit = self._session_and_key()
            self._plan_source_entry = session.plan_source(
                self.program, self.fun_def.name, key=key, unit=unit
            )
        return self._plan_source_entry

    # -- launch configuration ------------------------------------------------------------
    def grid_dim(self, nat_env: Optional[Dict[str, int]] = None) -> Tuple[int, int, int]:
        return self._dim3(self.level.blocks, nat_env or {})

    def block_dim(self, nat_env: Optional[Dict[str, int]] = None) -> Tuple[int, int, int]:
        return self._dim3(self.level.threads, nat_env or {})

    @staticmethod
    def _dim3(dim: Dim, nat_env: Dict[str, int]) -> Tuple[int, int, int]:
        sizes = dim.concrete_sizes(nat_env)
        return (
            int(sizes.get(DimName.X, 1)),
            int(sizes.get(DimName.Y, 1)),
            int(sizes.get(DimName.Z, 1)),
        )

    # -- launching ----------------------------------------------------------------------------
    def launch(
        self,
        device: GpuDevice,
        args: Dict[str, Union[DeviceBuffer, MemValue, int, float]],
        nat_args: Optional[Dict[str, int]] = None,
        detect_races: Optional[bool] = None,
        execution_mode: Optional[str] = None,
    ) -> LaunchResult:
        nat_env = dict(nat_args or {})
        arg_values: Dict[str, Value] = {}
        for param in self.fun_def.params:
            if param.name not in args:
                raise DescendRuntimeError(f"missing argument `{param.name}`")
            provided = args[param.name]
            if isinstance(provided, DeviceBuffer):
                arg_values[param.name] = MemValue.whole(provided)
            else:
                arg_values[param.name] = provided
        fun_def = self.fun_def

        def kernel(ctx: ThreadCtx):
            state = ThreadState(ctx, fun_def, nat_env, arg_values)
            yield from state.exec_stmt(fun_def.body)

        mode = execution_mode if execution_mode is not None else device.execution_mode
        self.fallback_reason = None
        if mode == "jit":
            from repro.gpusim.engine import jit_impl

            plan, reason = self._resolve_plan()
            if plan is None:
                # No plan at all: nothing for the vectorized engine either.
                self.fallback_reason = reason
                mode = "reference"
            else:
                plan_src, codegen_reason = self._resolve_plan_source()
                if plan_src is None:
                    # The plan lowered but codegen refused it: the plan
                    # interpreter still runs it on the vectorized engine.
                    self.fallback_reason = codegen_reason
                    mode = "vectorized"
                else:
                    jit_impl(kernel)(plan_src.entry(nat_env, arg_values))
        if mode == "vectorized":
            from repro.gpusim.engine import vectorized_impl

            plan, reason = self._resolve_plan()
            if plan is None:
                self.fallback_reason = reason
                mode = "reference"
            else:
                vectorized_impl(kernel)(plan.entry(nat_env, arg_values))

        return device.launch(
            kernel,
            grid_dim=self.grid_dim(nat_env),
            block_dim=self.block_dim(nat_env),
            args=(),
            kernel_name=fun_def.name,
            detect_races=detect_races,
            execution_mode=mode,
        )
