"""The device-plan compiler: batched execution of Descend GPU functions.

The reference path (:mod:`repro.descend.interp.device`) interprets the
function body once *per simulated thread*, which makes Descend programs the
slowest workloads in the repository.  This module removes the per-thread
loop entirely: a type-checked GPU function is *compiled once* into a
``DevicePlan`` — a tree of closures over batched numpy operations — and the
plan is executed once per launch against the grid-wide
:class:`~repro.gpusim.engine.vectorized.VecCtx` of the vectorized engine.

The lowering reuses the polymorphic views engine: the coordinate arithmetic
of :class:`~repro.descend.views.indexing.LogicalArray` is generic over any
value domain with ``+``/``*``/``//``, so feeding it *per-thread numpy index
arrays* (``threadIdx.x`` as an ``int64`` array with one entry per thread)
yields whole-launch offset arrays in one pass.  Every memory access becomes
one ``VecCtx.load``/``store`` (which feeds ``CostModel.record_access_batch``
and ``RaceDetector.record_batch``), divergence (``split``, per-thread ``if``)
becomes boolean ``where=`` masks, and ``sync`` becomes one grid-wide barrier
per block instead of a generator ``yield`` per thread.

Parity with the reference interpreter is exact by construction:

* each thread performs the same accesses in the same per-thread order, so
  the ``(block, warp, slot)`` coalescing groups and the barrier epochs seen
  by the race detector are identical;
* masked-out lanes do not advance their slot counters, do not count
  arithmetic, and record no accesses — exactly like threads that skip a
  branch in the reference engine.

Constructs whose batched semantics would diverge from the reference engine
(currently: ``sync`` nested under ``split`` or ``if``, whose reference
behaviour is barrier divergence detection) raise :class:`PlanUnsupported`
at compile time; :class:`~repro.descend.interp.device.DescendKernel` then
falls back to the reference interpreter for that launch.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.descend.ast import terms as T
from repro.descend.ast.dims import DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.ast.places import PDeref, PIdx, PProj, PSelect, PVar, PView, PlaceExpr
from repro.descend.interp.device import _ARITH_OPS, _LocalScalar
from repro.descend.interp.values import MemValue, Value, numpy_dtype, static_shape
from repro.descend.nat import Nat, evaluate_nat
from repro.descend.views.indexing import BoundView, LogicalArray, LogicalPair
from repro.descend.views.registry import resolve_view
from repro.errors import DescendError, DescendRuntimeError
from repro.gpusim.engine.vectorized import VecCtx


class PlanUnsupported(DescendError):
    """A construct the device-plan compiler cannot lower; callers fall back."""


@dataclass
class VecSlot:
    """A batch of fully indexed elements: one offset per thread of the grid."""

    buffer: object
    offsets: object  # per-thread int64 array or a uniform python int


class PlanState:
    """Mutable launch state threaded through a plan's compiled closures.

    Everything here is *uniform* over the grid (nat bindings, view windows,
    scheduling bookkeeping) or *batched* (locals holding per-thread arrays,
    the active-lane mask, the execution coordinates).  The per-thread state
    of the reference interpreter maps onto it one field at a time.
    """

    def __init__(
        self,
        ctx: VecCtx,
        level: GpuGridLevel,
        nat_env: Dict[str, int],
        args: Dict[str, Value],
    ) -> None:
        self.ctx = ctx
        self.nat_env = dict(nat_env)
        self.locals: Dict[str, Value] = dict(args)
        self.exec_coords: Dict[str, Tuple[object, ...]] = {}
        self.mask: Optional[np.ndarray] = None

        self.block_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.blocks.entries
        }
        self.thread_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.threads.entries
        }
        self.pending_blocks = set(self.block_window)
        self.pending_threads = set(self.thread_window)

    # -- helpers ---------------------------------------------------------------
    def nat_value(self, nat: Nat) -> int:
        return int(evaluate_nat(nat, self.nat_env))

    def raw_index(self, dim: DimName, over_blocks: bool) -> np.ndarray:
        source = self.ctx.blockIdx if over_blocks else self.ctx.threadIdx
        return {DimName.X: source.x, DimName.Y: source.y, DimName.Z: source.z}[dim]

    def active_lanes(self) -> bool:
        return self.mask is None or bool(self.mask.any())

    def load(self, slot: VecSlot):
        return self.ctx.load(slot.buffer, slot.offsets, where=self.mask)

    def store(self, slot: VecSlot, value) -> None:
        self.ctx.store(slot.buffer, slot.offsets, value, where=self.mask)

    def arith(self, count: int = 1) -> None:
        self.ctx.arith(count, where=self.mask)


#: A compiled statement: mutates the state (and the simulated memory).
StmtOp = Callable[[PlanState], None]
#: A compiled expression: returns a scalar, a per-thread array, or a MemValue.
ExprOp = Callable[[PlanState], object]
#: A compiled place: returns a VecSlot, a _LocalScalar, or a MemValue.
PlaceOp = Callable[[PlanState], Union[VecSlot, _LocalScalar, MemValue]]


@dataclass
class DevicePlan:
    """A GPU Descend function lowered to batched numpy operations."""

    fun_name: str
    level: GpuGridLevel
    body: StmtOp

    def execute(self, ctx: VecCtx, nat_env: Dict[str, int], args: Dict[str, Value]) -> None:
        state = PlanState(ctx, self.level, nat_env, args)
        self.body(state)

    def entry(self, nat_env: Dict[str, int], args: Dict[str, Value]) -> Callable[[VecCtx], None]:
        """A vectorized kernel closure over one launch's arguments."""

        def vec_kernel(ctx: VecCtx) -> None:
            self.execute(ctx, nat_env, args)

        vec_kernel.__name__ = f"{self.fun_name}_plan"
        return vec_kernel


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


def _as_int_index(value):
    """Mirror the reference interpreter's ``int(...)`` on expression indices."""
    if isinstance(value, np.ndarray):
        return value.astype(np.int64, copy=False)
    return int(value)


def _compile_place(place: PlaceExpr) -> PlaceOp:
    parts = place.parts()
    root = parts[0]
    assert isinstance(root, PVar)
    root_name = root.name

    # Lower the chain of place-expression steps once; the registry lookups
    # and view resolution happen here, not per launch.
    steps: List[Tuple[str, object]] = []
    for part in parts[1:]:
        if isinstance(part, PDeref):
            continue
        if isinstance(part, PView):
            steps.append(("view", resolve_view(part.ref)))
        elif isinstance(part, PProj):
            steps.append(("proj", part.index))
        elif isinstance(part, PSelect):
            steps.append(("select", part.exec_var))
        elif isinstance(part, PIdx):
            if isinstance(part.index, Nat):
                steps.append(("nat_idx", part.index))
            else:
                steps.append(("expr_idx", _compile_expr(part.index)))
        else:
            raise PlanUnsupported(f"unsupported place expression step {part}")

    def run(state: PlanState):
        if root_name not in state.locals:
            raise DescendRuntimeError(f"unbound variable `{root_name}` at runtime")
        value = state.locals[root_name]
        if not isinstance(value, MemValue):
            if not steps:
                return _LocalScalar(root_name)
            raise DescendRuntimeError(
                f"`{root_name}` is a scalar and cannot be indexed or viewed"
            )

        current: Union[LogicalArray, LogicalPair] = value.logical
        buffer = value.buffer
        for kind, payload in steps:
            if kind == "view":
                if isinstance(current, LogicalPair):
                    raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
                current = current.apply_view(BoundView(payload, state.nat_value))
                continue
            if kind == "proj":
                if isinstance(current, LogicalPair):
                    current = current.project(payload)
                    continue
                raise DescendRuntimeError("tuple projections on runtime tuples are not supported")
            if isinstance(current, LogicalPair):
                raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
            if kind == "select":
                coords = state.exec_coords.get(payload)
                if coords is None:
                    raise DescendRuntimeError(
                        f"`{payload}` is not a scheduled execution resource"
                    )
                current = current.select(coords)
                continue
            if kind == "nat_idx":
                current = current.index(state.nat_value(payload))
                continue
            # expr_idx
            current = current.index(_as_int_index(payload(state)))

        if isinstance(current, LogicalPair):
            raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
        if current.is_scalar():
            return VecSlot(buffer=buffer, offsets=current.flat_offset(()))
        return MemValue(buffer=buffer, logical=current, uniq=value.uniq)

    return run


def _is_integer(value) -> bool:
    if isinstance(value, np.ndarray):
        return value.dtype.kind in "iu"
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _logical_not(value):
    if isinstance(value, np.ndarray):
        return np.logical_not(value)
    return not value


_COMPARISONS: Dict[str, Callable] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _compile_binary(term: T.BinaryOp) -> ExprOp:
    lhs_op = _compile_expr(term.lhs)
    rhs_op = _compile_expr(term.rhs)
    op = term.op

    if op in _ARITH_OPS:

        def run_arith(state: PlanState):
            lhs = lhs_op(state)
            rhs = rhs_op(state)
            state.arith(1)
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                if _is_integer(lhs) and _is_integer(rhs):
                    return lhs // rhs
                return lhs / rhs
            return lhs % rhs

        return run_arith

    if op in _COMPARISONS:
        compare = _COMPARISONS[op]
        return lambda state: compare(lhs_op(state), rhs_op(state))
    if op == "&&":
        # Both engines evaluate both operands eagerly (no short-circuit).
        def run_and(state: PlanState):
            lhs = lhs_op(state)
            rhs = rhs_op(state)
            if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                return np.logical_and(lhs, rhs)
            return bool(lhs) and bool(rhs)

        return run_and
    if op == "||":

        def run_or(state: PlanState):
            lhs = lhs_op(state)
            rhs = rhs_op(state)
            if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
                return np.logical_or(lhs, rhs)
            return bool(lhs) or bool(rhs)

        return run_or
    raise PlanUnsupported(f"unsupported binary operator {op}")


def _compile_alloc(term: T.Alloc) -> ExprOp:
    dtype = numpy_dtype(term.ty)
    mem_name = str(term.mem)
    ty = term.ty
    # Shared allocations are keyed by term identity so that re-evaluating the
    # same `alloc` (e.g. inside a loop) reuses the one per-block buffer —
    # exactly the reference interpreter's pooling behaviour.
    shared_key = f"shared_{id(term)}"
    if mem_name not in ("gpu.shared", "gpu.local"):
        raise PlanUnsupported(f"cannot allocate `{term.mem}` memory on the GPU")

    def run(state: PlanState):
        shape = static_shape(ty, state.nat_env) or (1,)
        if mem_name == "gpu.shared":
            buffer = state.ctx.shared(shared_key, shape, dtype=dtype)
        else:
            buffer = state.ctx.local(shape, dtype=dtype)
        return MemValue(buffer=buffer, logical=LogicalArray.root(tuple(buffer.shape)))

    return run


def _compile_expr(term: T.Term) -> ExprOp:
    if isinstance(term, T.Lit):
        value = term.value
        return lambda state: value
    if isinstance(term, T.NatTerm):
        nat = term.nat
        return lambda state: state.nat_value(nat)
    if isinstance(term, T.PlaceTerm):
        place_op = _compile_place(term.place)

        def run_read(state: PlanState):
            target = place_op(state)
            if isinstance(target, VecSlot):
                return state.load(target)
            if isinstance(target, _LocalScalar):
                return state.locals[target.name]
            return target

        return run_read
    if isinstance(term, T.Borrow):
        place_op = _compile_place(term.place)

        def run_borrow(state: PlanState):
            target = place_op(state)
            if isinstance(target, VecSlot):
                raise DescendRuntimeError("cannot borrow a single element at runtime")
            if isinstance(target, _LocalScalar):
                raise DescendRuntimeError("cannot borrow a scalar local at runtime")
            return target

        return run_borrow
    if isinstance(term, T.BinaryOp):
        return _compile_binary(term)
    if isinstance(term, T.UnaryOp):
        operand_op = _compile_expr(term.operand)
        if term.op == "-":

            def run_neg(state: PlanState):
                operand = operand_op(state)
                state.arith(1)
                return -operand

            return run_neg
        if term.op == "!":
            return lambda state: _logical_not(operand_op(state))
        raise PlanUnsupported(f"unsupported unary operator {term.op}")
    if isinstance(term, T.Alloc):
        return _compile_alloc(term)
    if isinstance(term, T.FnApp):
        raise PlanUnsupported(
            f"function calls on the GPU are inlined before execution; "
            f"cannot lower call to `{term.name}`"
        )
    raise PlanUnsupported(f"cannot lower term {term}")


# ---------------------------------------------------------------------------
# Statement compilation
# ---------------------------------------------------------------------------


def _merge_masked(mask: Optional[np.ndarray], new, old):
    """Merge an assignment under a mask (inactive lanes keep their value)."""
    if mask is None:
        return new
    return np.where(mask, new, old)


def _compile_block(term: T.Block, divergent: bool) -> StmtOp:
    compiled: List[Tuple[Optional[str], StmtOp]] = [
        (stmt.name if isinstance(stmt, T.LetTerm) else None, _compile_stmt(stmt, divergent))
        for stmt in term.stmts
    ]

    def run(state: PlanState):
        # Only bindings introduced by this block go out of scope at its end;
        # mutations of outer variables must survive (mirrors the reference).
        shadowed: Dict[str, Value] = {}
        introduced: List[str] = []
        try:
            for let_name, op in compiled:
                if let_name is not None:
                    if let_name in state.locals and let_name not in shadowed:
                        shadowed[let_name] = state.locals[let_name]
                    introduced.append(let_name)
                op(state)
        finally:
            for name in introduced:
                state.locals.pop(name, None)
            state.locals.update(shadowed)

    return run


def _compile_assign(term: T.Assign) -> StmtOp:
    value_op = _compile_expr(term.value)
    place_op = _compile_place(term.place)
    place_str = str(term.place)

    def run(state: PlanState):
        value = value_op(state)
        target = place_op(state)
        if isinstance(target, _LocalScalar):
            old = state.locals[target.name]
            state.locals[target.name] = _merge_masked(state.mask, value, old)
        elif isinstance(target, VecSlot):
            state.store(target, value)
        else:
            raise DescendRuntimeError(f"cannot assign a whole array at once: `{place_str}`")

    return run


def _compile_if(term: T.IfTerm, divergent: bool) -> StmtOp:
    if T.contains_sync(term):
        raise PlanUnsupported(
            "`sync` under a per-thread `if` needs the reference engine's "
            "barrier-divergence detection"
        )
    cond_op = _compile_expr(term.cond)
    then_op = _compile_stmt(term.then, divergent=True)
    else_op = _compile_stmt(term.otherwise, divergent=True) if term.otherwise is not None else None

    def run(state: PlanState):
        cond = cond_op(state)
        if not isinstance(cond, np.ndarray):
            if cond:
                then_op(state)
            elif else_op is not None:
                else_op(state)
            return
        old_mask = state.mask
        then_mask = cond if old_mask is None else (old_mask & cond)
        if then_mask.any():
            state.mask = then_mask
            try:
                then_op(state)
            finally:
                state.mask = old_mask
        if else_op is not None:
            else_mask = ~cond if old_mask is None else (old_mask & ~cond)
            if else_mask.any():
                state.mask = else_mask
                try:
                    else_op(state)
                finally:
                    state.mask = old_mask

    return run


def _compile_for_nat(term: T.ForNat, divergent: bool) -> StmtOp:
    body_op = _compile_stmt(term.body, divergent)
    var, lo_nat, hi_nat = term.var, term.lo, term.hi

    def run(state: PlanState):
        lo = state.nat_value(lo_nat)
        hi = state.nat_value(hi_nat)
        previous = state.nat_env.get(var)
        for value in range(lo, hi):
            state.nat_env[var] = value
            body_op(state)
        if previous is None:
            state.nat_env.pop(var, None)
        else:
            state.nat_env[var] = previous

    return run


def _compile_for_each(term: T.ForEach, divergent: bool) -> StmtOp:
    collection_op = _compile_expr(term.collection)
    body_op = _compile_stmt(term.body, divergent)
    var = term.var

    def run(state: PlanState):
        collection = collection_op(state)
        if not isinstance(collection, MemValue):
            raise DescendRuntimeError("`for ... in` expects an array value")
        size = int(collection.shape[0])
        for index in range(size):
            element = collection.logical.index(index)
            if element.is_scalar():
                value: Value = state.load(
                    VecSlot(buffer=collection.buffer, offsets=element.flat_offset(()))
                )
            else:
                value = MemValue(buffer=collection.buffer, logical=element)
            state.locals[var] = value
            body_op(state)

    return run


def _compile_sched(term: T.Sched, divergent: bool) -> StmtOp:
    body_op = _compile_stmt(term.body, divergent)
    dims = tuple(term.dims)
    binder, exec_name = term.binder, term.exec_name

    def run(state: PlanState):
        over_blocks = bool(state.pending_blocks)
        window = state.block_window if over_blocks else state.thread_window
        pending = state.pending_blocks if over_blocks else state.pending_threads

        coords = []
        for dim in dims:
            if dim not in pending:
                raise DescendRuntimeError(f"dimension {dim} is not pending for `{exec_name}`")
            lo, _hi = window[dim]
            raw = state.raw_index(dim, over_blocks)
            coords.append(raw - lo if lo else raw)
        for dim in dims:
            pending.discard(dim)
        previous_coords = state.exec_coords.get(binder)
        state.exec_coords[binder] = tuple(coords)
        try:
            body_op(state)
        finally:
            if previous_coords is None:
                state.exec_coords.pop(binder, None)
            else:
                state.exec_coords[binder] = previous_coords
            for dim in dims:
                pending.add(dim)

    return run


def _compile_split(term: T.SplitExec) -> StmtOp:
    if T.contains_sync(term):
        raise PlanUnsupported(
            "`sync` under `split` needs the reference engine's "
            "barrier-divergence detection"
        )
    first_op = _compile_stmt(term.first_body, divergent=True)
    second_op = _compile_stmt(term.second_body, divergent=True)
    dim, pos_nat = term.dim, term.pos

    def run(state: PlanState):
        over_blocks = dim in state.pending_blocks
        window = state.block_window if over_blocks else state.thread_window
        if dim not in window:
            raise DescendRuntimeError(f"cannot split missing dimension {dim}")
        lo, hi = window[dim]
        pos = state.nat_value(pos_nat)
        relative = state.raw_index(dim, over_blocks) - lo
        first_cond = relative < pos
        old_mask = state.mask

        first_mask = first_cond if old_mask is None else (old_mask & first_cond)
        if first_mask.any():
            window[dim] = [lo, lo + pos]
            state.mask = first_mask
            try:
                first_op(state)
            finally:
                window[dim] = [lo, hi]
                state.mask = old_mask

        second_mask = ~first_cond if old_mask is None else (old_mask & ~first_cond)
        if second_mask.any():
            window[dim] = [lo + pos, hi]
            state.mask = second_mask
            try:
                second_op(state)
            finally:
                window[dim] = [lo, hi]
                state.mask = old_mask

    return run


def _run_sync(state: PlanState) -> None:
    # Compilation guarantees `sync` is never nested under divergence, so the
    # whole grid is active here: one barrier per block, one epoch grid-wide —
    # the same accounting as the per-block reference executor.
    assert state.mask is None, "sync under an active mask escaped compilation checks"
    state.ctx.sync()


def _compile_stmt(term: T.Term, divergent: bool = False) -> StmtOp:
    if isinstance(term, T.Block):
        return _compile_block(term, divergent)
    if isinstance(term, T.LetTerm):
        init_op = _compile_expr(term.init)
        name = term.name

        def run_let(state: PlanState):
            state.locals[name] = init_op(state)

        return run_let
    if isinstance(term, T.Assign):
        return _compile_assign(term)
    if isinstance(term, T.IfTerm):
        return _compile_if(term, divergent)
    if isinstance(term, T.ForNat):
        return _compile_for_nat(term, divergent)
    if isinstance(term, T.ForEach):
        return _compile_for_each(term, divergent)
    if isinstance(term, T.Sched):
        return _compile_sched(term, divergent)
    if isinstance(term, T.SplitExec):
        return _compile_split(term)
    if isinstance(term, T.Sync):
        if divergent:
            raise PlanUnsupported(
                "`sync` under divergent control flow needs the reference engine"
            )
        return _run_sync
    # expression statements: evaluate for effects, discard the value
    expr_op = _compile_expr(term)

    def run_expr(state: PlanState):
        expr_op(state)

    return run_expr


# ---------------------------------------------------------------------------
# Entry points and the per-function plan cache
# ---------------------------------------------------------------------------


def compile_device_plan(fun_def: T.FunDef) -> DevicePlan:
    """Lower one GPU Descend function into a :class:`DevicePlan`.

    Raises :class:`PlanUnsupported` when the function uses a construct whose
    batched execution could diverge from the reference semantics.
    """
    level = fun_def.exec_spec.level
    if not isinstance(level, GpuGridLevel):
        raise PlanUnsupported(f"`{fun_def.name}` is not a GPU grid function")
    body = _compile_stmt(fun_def.body)
    return DevicePlan(fun_name=fun_def.name, level=level, body=body)


#: id(fun_def) -> (fun_def, plan-or-failure).  The FunDef is retained so the
#: id stays valid; bounded so benchmark sweeps that rebuild programs per
#: launch cannot grow it without limit.
_PLAN_CACHE: "OrderedDict[int, Tuple[T.FunDef, Union[DevicePlan, PlanUnsupported]]]" = OrderedDict()
_PLAN_CACHE_SIZE = 256


def device_plan(fun_def: T.FunDef) -> DevicePlan:
    """Compile (or fetch the cached) :class:`DevicePlan` for a function."""
    key = id(fun_def)
    cached = _PLAN_CACHE.get(key)
    if cached is not None and cached[0] is fun_def:
        _PLAN_CACHE.move_to_end(key)
        if isinstance(cached[1], PlanUnsupported):
            raise cached[1]
        return cached[1]
    try:
        plan: Union[DevicePlan, PlanUnsupported] = compile_device_plan(fun_def)
    except PlanUnsupported as exc:
        plan = exc
    _PLAN_CACHE[key] = (fun_def, plan)
    if len(_PLAN_CACHE) > _PLAN_CACHE_SIZE:
        _PLAN_CACHE.popitem(last=False)
    if isinstance(plan, PlanUnsupported):
        raise plan
    return plan
