"""Executing Descend programs on the GPU simulator.

* :mod:`repro.descend.interp.values` — runtime values (scalars and
  buffer-backed memory regions seen through views),
* :mod:`repro.descend.interp.device` — the per-thread interpreter for GPU
  functions, packaged as a simulator kernel (barriers become ``yield``),
* :mod:`repro.descend.interp.host` — the host-side interpreter (heap
  allocation, host↔device copies, kernel launches) and the convenience API
  for launching individual GPU functions from Python.

The device-plan compiler that lowers GPU functions to batched numpy
operations for the vectorized engine lives in :mod:`repro.descend.plan`
(lower → optimize → execute over a serializable plan IR); its public names
are re-exported here for convenience — ``execution_mode="vectorized"``
selects it per launch, with automatic fallback to the reference
interpreter for unsupported constructs.
"""

from repro.descend.interp.device import DescendKernel
from repro.descend.interp.host import ExecutionResult, HostInterpreter
from repro.descend.plan import DevicePlan, PlanUnsupported, compile_device_plan

__all__ = [
    "DescendKernel",
    "HostInterpreter",
    "ExecutionResult",
    "DevicePlan",
    "PlanUnsupported",
    "compile_device_plan",
]
