"""Executing Descend programs on the GPU simulator.

* :mod:`repro.descend.interp.values` — runtime values (scalars and
  buffer-backed memory regions seen through views),
* :mod:`repro.descend.interp.device` — the per-thread interpreter for GPU
  functions, packaged as a simulator kernel (barriers become ``yield``),
* :mod:`repro.descend.interp.host` — the host-side interpreter (heap
  allocation, host↔device copies, kernel launches) and the convenience API
  for launching individual GPU functions from Python.
"""

from repro.descend.interp.device import DescendKernel
from repro.descend.interp.host import ExecutionResult, HostInterpreter

__all__ = ["DescendKernel", "HostInterpreter", "ExecutionResult"]
