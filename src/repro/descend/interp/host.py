"""The host-side interpreter: Descend's heterogeneous (CPU) execution model.

CPU Descend functions manage memory (heap allocations, host↔device copies)
and launch GPU functions.  :class:`HostInterpreter` executes them against a
:class:`~repro.gpusim.device.GpuDevice`, recording every kernel launch so the
benchmark harness can read simulated kernel times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.descend.ast import terms as T
from repro.descend.ast.dims import DimName
from repro.descend.ast.places import PDeref, PIdx, PVar, PlaceExpr
from repro.descend.ast.types import ArrayType, ArrayViewType, DataType
from repro.descend.interp.device import DescendKernel
from repro.descend.interp.values import MemValue, Value, numpy_dtype, static_shape
from repro.descend.nat import Nat, evaluate_nat
from repro.errors import DescendRuntimeError
from repro.gpusim.buffer import DeviceBuffer, HostBuffer
from repro.gpusim.device import GpuDevice, LaunchResult


@dataclass
class ExecutionResult:
    """The outcome of running a host Descend function."""

    launches: List[LaunchResult] = field(default_factory=list)
    locals: Dict[str, Value] = field(default_factory=dict)

    @property
    def total_kernel_cycles(self) -> float:
        return sum(launch.cycles for launch in self.launches)

    def array(self, name: str) -> np.ndarray:
        """Read back a host- or device-buffer variable as a numpy array."""
        value = self.locals.get(name)
        if isinstance(value, MemValue):
            return value.buffer.as_array()
        raise DescendRuntimeError(f"`{name}` is not an array value")

    def scalar(self, name: str):
        value = self.locals.get(name)
        if isinstance(value, MemValue):
            raise DescendRuntimeError(f"`{name}` is an array, not a scalar")
        return value


class HostInterpreter:
    """Interprets CPU Descend functions and their GPU launches.

    ``execution_mode`` selects the engine used for the GPU launches this host
    program performs (``"reference"`` or ``"vectorized"``); ``None`` inherits
    the device's default mode.  Vectorized launches of functions the device-
    plan compiler cannot lower fall back to the reference interpreter.
    """

    def __init__(
        self,
        program: T.Program,
        device: Optional[GpuDevice] = None,
        execution_mode: Optional[str] = None,
        compiled=None,
    ) -> None:
        self.program = program
        self.device = device if device is not None else GpuDevice()
        self.execution_mode = execution_mode
        self._compiled = compiled
        # One kernel handle per GPU function: repeated launches (e.g. inside
        # a `for`-nat loop) reuse the handle's cached device plan instead of
        # re-lowering per launch.
        self._kernels: Dict[str, DescendKernel] = {}

    def _kernel(self, name: str) -> DescendKernel:
        kernel = self._kernels.get(name)
        if kernel is None:
            if self._compiled is not None:
                kernel = self._compiled.kernel(name)
            else:
                kernel = DescendKernel(self.program, name)
            self._kernels[name] = kernel
        return kernel

    # -- public API ------------------------------------------------------------------
    def run(
        self,
        fun_name: str,
        args: Optional[Dict[str, Union[np.ndarray, int, float]]] = None,
        nat_args: Optional[Dict[str, int]] = None,
    ) -> ExecutionResult:
        fun_def = self.program.fun(fun_name)
        if fun_def.exec_spec.is_gpu():
            raise DescendRuntimeError(
                f"`{fun_name}` is a GPU function; use DescendKernel to launch it"
            )
        result = ExecutionResult()
        env: Dict[str, Value] = {}
        nat_env: Dict[str, int] = dict(nat_args or {})
        for param in fun_def.params:
            provided = (args or {}).get(param.name)
            if provided is None:
                raise DescendRuntimeError(f"missing argument `{param.name}`")
            if isinstance(provided, np.ndarray):
                env[param.name] = MemValue.whole(HostBuffer.from_array(provided, label=param.name))
            else:
                env[param.name] = provided
        self._exec_block(fun_def.body, env, nat_env, result)
        result.locals = env
        return result

    # -- statements ---------------------------------------------------------------------
    def _exec_block(self, block: T.Block, env, nat_env, result) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env, nat_env, result)

    def _exec_stmt(self, term: T.Term, env, nat_env, result) -> None:
        if isinstance(term, T.Block):
            self._exec_block(term, env, nat_env, result)
            return
        if isinstance(term, T.LetTerm):
            env[term.name] = self._eval(term.init, env, nat_env, result, label=term.name)
            return
        if isinstance(term, T.Assign):
            value = self._eval(term.value, env, nat_env, result)
            self._assign_place(term.place, value, env, nat_env)
            return
        if isinstance(term, T.IfTerm):
            if self._eval(term.cond, env, nat_env, result):
                self._exec_block(term.then, env, nat_env, result)
            elif term.otherwise is not None:
                self._exec_block(term.otherwise, env, nat_env, result)
            return
        if isinstance(term, T.ForNat):
            lo = int(evaluate_nat(term.lo, nat_env))
            hi = int(evaluate_nat(term.hi, nat_env))
            for value in range(lo, hi):
                nat_env[term.var] = value
                self._exec_block(term.body, env, nat_env, result)
            nat_env.pop(term.var, None)
            return
        if isinstance(term, (T.FnApp, T.KernelLaunch)):
            self._eval(term, env, nat_env, result)
            return
        raise DescendRuntimeError(f"unsupported host statement {term}")

    # -- expressions ---------------------------------------------------------------------
    def _eval(self, term: T.Term, env, nat_env, result, label: str = "") -> Value:
        if isinstance(term, T.Lit):
            return term.value
        if isinstance(term, T.NatTerm):
            return int(evaluate_nat(term.nat, nat_env))
        if isinstance(term, T.PlaceTerm):
            return self._read_place(term.place, env, nat_env)
        if isinstance(term, T.Borrow):
            value = self._resolve_root(term.place, env)
            return value
        if isinstance(term, T.BinaryOp):
            lhs = self._eval(term.lhs, env, nat_env, result)
            rhs = self._eval(term.rhs, env, nat_env, result)
            return _apply_host_binop(term.op, lhs, rhs)
        if isinstance(term, T.UnaryOp):
            operand = self._eval(term.operand, env, nat_env, result)
            return -operand if term.op == "-" else (not operand)
        if isinstance(term, T.ArrayInit):
            size = int(evaluate_nat(term.size, nat_env))
            fill = self._eval(term.value, env, nat_env, result)
            dtype = np.float64 if isinstance(fill, float) else np.int64
            return np.full(size, fill, dtype=dtype)
        if isinstance(term, T.FnApp):
            return self._eval_fn_app(term, env, nat_env, result, label)
        if isinstance(term, T.KernelLaunch):
            return self._eval_launch(term, env, nat_env, result)
        raise DescendRuntimeError(f"unsupported host expression {term}")

    def _eval_fn_app(self, term: T.FnApp, env, nat_env, result, label: str = "") -> Value:
        name = term.name
        if name == "CpuHeap::new":
            init = self._eval(term.args[0], env, nat_env, result)
            array = np.asarray(init)
            return MemValue.whole(HostBuffer.from_array(array, label=label or "cpu_heap"))
        if name == "GpuGlobal::alloc":
            ty = term.ty_args[0]
            shape = static_shape(ty, nat_env) or (1,)
            buffer = self.device.malloc(shape, dtype=numpy_dtype(ty), label=label or "gpu_alloc")
            return MemValue.whole(buffer)
        if name == "GpuGlobal::alloc_copy":
            source = self._eval(term.args[0], env, nat_env, result)
            if not isinstance(source, MemValue) or not isinstance(source.buffer, HostBuffer):
                raise DescendRuntimeError("`GpuGlobal::alloc_copy` expects a reference to CPU memory")
            buffer = self.device.to_device(source.buffer.as_array(), label=label or "gpu_copy")
            return MemValue.whole(buffer)
        if name == "copy_mem_to_host":
            dst = self._eval(term.args[0], env, nat_env, result)
            src = self._eval(term.args[1], env, nat_env, result)
            if not (isinstance(dst, MemValue) and isinstance(dst.buffer, HostBuffer)):
                raise DescendRuntimeError("`copy_mem_to_host` destination must be CPU memory")
            if not (isinstance(src, MemValue) and isinstance(src.buffer, DeviceBuffer)):
                raise DescendRuntimeError("`copy_mem_to_host` source must be GPU global memory")
            src.buffer.copy_to_host(dst.buffer)
            return None
        if name == "copy_mem_to_gpu":
            dst = self._eval(term.args[0], env, nat_env, result)
            src = self._eval(term.args[1], env, nat_env, result)
            if not (isinstance(dst, MemValue) and isinstance(dst.buffer, DeviceBuffer)):
                raise DescendRuntimeError("`copy_mem_to_gpu` destination must be GPU global memory")
            if not (isinstance(src, MemValue) and isinstance(src.buffer, HostBuffer)):
                raise DescendRuntimeError("`copy_mem_to_gpu` source must be CPU memory")
            dst.buffer.copy_from_host(src.buffer)
            return None
        if name == "exclusive_scan_host":
            # Prelude helper used by the scan benchmark's host pipeline.
            target = self._eval(term.args[0], env, nat_env, result)
            if not isinstance(target, MemValue):
                raise DescendRuntimeError("`exclusive_scan_host` expects an array")
            data = target.buffer.as_array().reshape(-1)
            scanned = np.zeros_like(data)
            if data.size > 1:
                scanned[1:] = np.cumsum(data)[:-1]
            target.buffer.data[:] = scanned
            return None
        # user-defined CPU function call
        callee = self.program.fun(name)
        call_env: Dict[str, Value] = {}
        for param, arg in zip(callee.params, term.args):
            call_env[param.name] = self._eval(arg, env, nat_env, result)
        callee_nats = {
            generic.name: int(evaluate_nat(nat, nat_env))
            for generic, nat in zip(callee.generics, term.nat_args)
        }
        self._exec_block(callee.body, call_env, callee_nats, result)
        return None

    def _eval_launch(self, term: T.KernelLaunch, env, nat_env, result) -> Value:
        kernel = self._kernel(term.name)
        callee = self.program.fun(term.name)
        nat_names = [g.name for g in callee.generics]
        launch_nats = {
            name: int(evaluate_nat(nat, nat_env)) for name, nat in zip(nat_names, term.nat_args)
        }
        args: Dict[str, Value] = {}
        for param, arg in zip(callee.params, term.args):
            value = self._eval(arg, env, nat_env, result)
            args[param.name] = value
        launch = kernel.launch(
            self.device, args=args, nat_args=launch_nats, execution_mode=self.execution_mode
        )
        result.launches.append(launch)
        return None

    # -- places (host side) ------------------------------------------------------------------
    def _resolve_root(self, place: PlaceExpr, env) -> Value:
        root = place.root()
        if root.name not in env:
            raise DescendRuntimeError(f"unbound host variable `{root.name}`")
        return env[root.name]

    def _read_place(self, place: PlaceExpr, env, nat_env) -> Value:
        value = self._resolve_root(place, env)
        offset = self._place_offset(place, value, nat_env)
        if offset is None:
            return value
        assert isinstance(value, MemValue)
        return value.buffer.data[offset]

    def _assign_place(self, place: PlaceExpr, new_value, env, nat_env) -> None:
        value = self._resolve_root(place, env)
        offset = self._place_offset(place, value, nat_env)
        if offset is None:
            env[place.root().name] = new_value
            return
        assert isinstance(value, MemValue)
        value.buffer.data[offset] = new_value

    @staticmethod
    def _place_offset(place: PlaceExpr, value: Value, nat_env) -> Optional[int]:
        """Flat offset for simple host places (``x``, ``*x``, ``x[i]``); None = whole value."""
        parts = [p for p in place.parts() if not isinstance(p, (PVar, PDeref))]
        if not parts:
            return None
        if not isinstance(value, MemValue):
            raise DescendRuntimeError(f"cannot index into scalar `{place.root().name}`")
        offset = 0
        logical = value.logical
        for part in parts:
            if isinstance(part, PIdx):
                index = (
                    int(evaluate_nat(part.index, nat_env))
                    if isinstance(part.index, Nat)
                    else int(part.index)
                )
                logical = logical.index(index)
            else:
                raise DescendRuntimeError(
                    "only simple indexing is supported in host place expressions"
                )
        if not logical.is_scalar():
            raise DescendRuntimeError("host assignments must target single elements")
        return int(logical.flat_offset(()))


def _apply_host_binop(op: str, lhs, rhs):
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if isinstance(lhs, (int, np.integer)) and isinstance(rhs, (int, np.integer)):
            return lhs // rhs
        return lhs / rhs
    if op == "%":
        return lhs % rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    if op == "==":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "&&":
        return bool(lhs) and bool(rhs)
    if op == "||":
        return bool(lhs) or bool(rhs)
    raise DescendRuntimeError(f"unsupported host operator {op}")
