"""Runtime values of the Descend interpreter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.descend.ast.types import ArrayType, ArrayViewType, AtType, DataType, RefType, ScalarType
from repro.descend.nat import evaluate_nat
from repro.descend.views.indexing import LogicalArray
from repro.errors import DescendRuntimeError
from repro.gpusim.buffer import DeviceBuffer, HostBuffer


_SCALAR_DTYPES = {
    "f64": np.float64,
    "f32": np.float32,
    "i32": np.int32,
    "i64": np.int64,
    "u32": np.uint32,
    "bool": np.bool_,
}


def numpy_dtype(ty: DataType) -> np.dtype:
    """The numpy dtype backing a scalar Descend type."""
    scalar = ty
    while isinstance(scalar, (ArrayType, ArrayViewType)):
        scalar = scalar.elem
    if isinstance(scalar, ScalarType) and scalar.name in _SCALAR_DTYPES:
        return np.dtype(_SCALAR_DTYPES[scalar.name])
    raise DescendRuntimeError(f"type `{ty}` has no runtime representation")


def static_shape(ty: DataType, nat_env) -> Tuple[int, ...]:
    """The concrete shape of an array type under the given nat bindings."""
    shape = []
    current = ty
    while isinstance(current, (ArrayType, ArrayViewType)):
        shape.append(int(evaluate_nat(current.size, nat_env)))
        current = current.elem
    return tuple(shape)


@dataclass
class MemValue:
    """A region of memory: a buffer seen through a (possibly partial) view.

    References, boxed values and whole arrays all evaluate to a ``MemValue``;
    dereferencing is a no-op at runtime (the static type system is what keeps
    the distinction meaningful).
    """

    buffer: Union[DeviceBuffer, HostBuffer]
    logical: LogicalArray
    uniq: bool = True

    @staticmethod
    def whole(buffer: Union[DeviceBuffer, HostBuffer], uniq: bool = True) -> "MemValue":
        return MemValue(buffer=buffer, logical=LogicalArray.root(tuple(buffer.shape)), uniq=uniq)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.logical.shape)

    def with_logical(self, logical: LogicalArray) -> "MemValue":
        return MemValue(buffer=self.buffer, logical=logical, uniq=self.uniq)


Value = Union[int, float, bool, np.generic, MemValue]
