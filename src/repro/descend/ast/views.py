"""View references as they appear in place expressions.

A :class:`ViewRef` is the syntactic occurrence of a view applied to a place
expression, e.g. ``.group::<32>`` or ``.map(transpose)``.  The semantics of
views (shape transformation and index remapping) live in
:mod:`repro.descend.views`; this module only defines the AST node so that the
AST layer has no dependency on the semantics layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

from repro.descend.nat import Nat, NatLike, as_nat


@dataclass(frozen=True)
class ViewRef:
    """A reference to a named view with nat and view arguments.

    ``p.group::<32>`` becomes ``ViewRef("group", (NatConst(32),), ())`` and
    ``p.map(transpose)`` becomes
    ``ViewRef("map", (), (ViewRef("transpose"),))``.
    """

    name: str
    nat_args: Tuple[Nat, ...] = ()
    view_args: Tuple["ViewRef", ...] = ()

    @staticmethod
    def of(name: str, *nat_args: NatLike, view_args: Tuple["ViewRef", ...] = ()) -> "ViewRef":
        return ViewRef(name, tuple(as_nat(arg) for arg in nat_args), view_args)

    def substitute_nats(self, mapping: Mapping[str, Nat]) -> "ViewRef":
        return ViewRef(
            self.name,
            tuple(arg.substitute(mapping) for arg in self.nat_args),
            tuple(view.substitute_nats(mapping) for view in self.view_args),
        )

    def __str__(self) -> str:
        text = self.name
        if self.nat_args:
            text += "::<" + ", ".join(str(arg) for arg in self.nat_args) + ">"
        if self.view_args:
            text += "(" + ", ".join(str(arg) for arg in self.view_args) + ")"
        return text
