"""Data types, kinds and function types (Figure 6).

Data types ``δ`` include scalars, tuples, arrays indexed by a symbolic size,
array *views* (arrays whose elements are no longer guaranteed to be
consecutive in memory), references annotated with uniqueness and a memory
space, boxed ``@``-types, and type variables.  Function types carry generic
parameters (over data types, nats and memories) and the execution level the
function must be run at.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.descend.ast.exec_level import ExecSpec
from repro.descend.ast.memory import Memory, MemVar
from repro.descend.nat import Nat, NatLike, as_nat, nat_equal
from repro.errors import DescendError


class Kind(enum.Enum):
    """Kinds of type-level variables (Figure 6, κ)."""

    DATA_TYPE = "dty"
    NAT = "nat"
    MEMORY = "mem"

    def __str__(self) -> str:
        return self.value


class DataType:
    """Base class of Descend data types."""

    __slots__ = ()

    def is_copyable(self) -> bool:
        """Copy semantics (scalars and shared references) vs move semantics."""
        return False

    def substitute(
        self,
        nat_subst: Optional[Mapping[str, Nat]] = None,
        mem_subst: Optional[Mapping[str, Memory]] = None,
        ty_subst: Optional[Mapping[str, "DataType"]] = None,
    ) -> "DataType":
        return self

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class ScalarType(DataType):
    """Built-in scalar types: ``i32``, ``u32``, ``i64``, ``f32``, ``f64``, ``bool``, ``()``."""

    name: str

    def is_copyable(self) -> bool:
        return True

    def is_numeric(self) -> bool:
        return self.name in ("i32", "u32", "i64", "f32", "f64")

    def is_float(self) -> bool:
        return self.name in ("f32", "f64")

    def is_integer(self) -> bool:
        return self.name in ("i32", "u32", "i64")

    def __str__(self) -> str:
        return self.name


I32 = ScalarType("i32")
I64 = ScalarType("i64")
U32 = ScalarType("u32")
F32 = ScalarType("f32")
F64 = ScalarType("f64")
BOOL = ScalarType("bool")
UNIT = ScalarType("()")

_SCALARS = {t.name: t for t in (I32, I64, U32, F32, F64, BOOL, UNIT)}
_SCALARS["unit"] = UNIT


def scalar_from_name(name: str) -> ScalarType:
    if name not in _SCALARS:
        raise DescendError(f"unknown scalar type {name!r}")
    return _SCALARS[name]


def is_scalar_name(name: str) -> bool:
    return name in _SCALARS


@dataclass(frozen=True)
class TupleType(DataType):
    """A tuple of data types; projections ``.fst``/``.snd`` apply to pairs."""

    elems: Tuple[DataType, ...]

    def is_copyable(self) -> bool:
        return all(elem.is_copyable() for elem in self.elems)

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        return TupleType(tuple(e.substitute(nat_subst, mem_subst, ty_subst) for e in self.elems))

    def __str__(self) -> str:
        return "(" + ", ".join(str(e) for e in self.elems) + ")"


@dataclass(frozen=True)
class ArrayType(DataType):
    """``[δ; η]`` — an array of ``size`` elements, consecutive in memory."""

    elem: DataType
    size: Nat

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        size = self.size.substitute(nat_subst) if nat_subst else self.size
        return ArrayType(self.elem.substitute(nat_subst, mem_subst, ty_subst), size)

    def shape(self) -> Tuple[Nat, ...]:
        """The nested array shape, outermost dimension first."""
        inner: Tuple[Nat, ...] = ()
        if isinstance(self.elem, (ArrayType, ArrayViewType)):
            inner = self.elem.shape()
        return (self.size,) + inner

    def element_scalar(self) -> DataType:
        """The innermost non-array element type."""
        if isinstance(self.elem, (ArrayType, ArrayViewType)):
            return self.elem.element_scalar()
        return self.elem

    def __str__(self) -> str:
        return f"[{self.elem}; {self.size}]"


@dataclass(frozen=True)
class ArrayViewType(DataType):
    """``[[δ; η]]`` — an array view; elements need not be consecutive in memory."""

    elem: DataType
    size: Nat

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        size = self.size.substitute(nat_subst) if nat_subst else self.size
        return ArrayViewType(self.elem.substitute(nat_subst, mem_subst, ty_subst), size)

    def shape(self) -> Tuple[Nat, ...]:
        inner: Tuple[Nat, ...] = ()
        if isinstance(self.elem, (ArrayType, ArrayViewType)):
            inner = self.elem.shape()
        return (self.size,) + inner

    def element_scalar(self) -> DataType:
        if isinstance(self.elem, (ArrayType, ArrayViewType)):
            return self.elem.element_scalar()
        return self.elem

    def __str__(self) -> str:
        return f"[[{self.elem}; {self.size}]]"


@dataclass(frozen=True)
class RefType(DataType):
    """``&[uniq] μ δ`` — a (possibly unique) reference into memory space μ."""

    uniq: bool
    mem: Memory
    referent: DataType

    def is_copyable(self) -> bool:
        # Shared references are Copy (like Rust); unique references are moved.
        return not self.uniq

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        mem = self.mem
        if mem_subst and isinstance(mem, MemVar) and mem.name in mem_subst:
            mem = mem_subst[mem.name]
        return RefType(self.uniq, mem, self.referent.substitute(nat_subst, mem_subst, ty_subst))

    def __str__(self) -> str:
        qualifier = "uniq " if self.uniq else ""
        return f"&{qualifier}{self.mem} {self.referent}"


@dataclass(frozen=True)
class AtType(DataType):
    """``δ @ μ`` — a boxed value allocated in memory space μ (smart pointer)."""

    inner: DataType
    mem: Memory

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        mem = self.mem
        if mem_subst and isinstance(mem, MemVar) and mem.name in mem_subst:
            mem = mem_subst[mem.name]
        return AtType(self.inner.substitute(nat_subst, mem_subst, ty_subst), mem)

    def __str__(self) -> str:
        return f"{self.inner} @ {self.mem}"


@dataclass(frozen=True)
class TyVar(DataType):
    """A data-type variable bound by a polymorphic function."""

    name: str

    def substitute(self, nat_subst=None, mem_subst=None, ty_subst=None) -> DataType:
        if ty_subst and self.name in ty_subst:
            return ty_subst[self.name]
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class GenericParam:
    """A type-level parameter of a polymorphic function: ``n: nat``, ``m: mem``, ``d: dty``."""

    name: str
    kind: Kind

    def __str__(self) -> str:
        return f"{self.name}: {self.kind}"


@dataclass(frozen=True)
class WhereClause:
    """A constraint over nats, e.g. ``n % k == 0`` or ``n >= k``."""

    lhs: Nat
    op: str  # "==", ">=", "<=", "%=="  (lhs % rhs == 0)
    rhs: Nat

    def __str__(self) -> str:
        if self.op == "%==":
            return f"{self.lhs} % {self.rhs} == 0"
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True)
class FnType:
    """The type of a (possibly polymorphic) Descend function."""

    generics: Tuple[GenericParam, ...]
    params: Tuple[DataType, ...]
    exec_spec: ExecSpec
    ret: DataType
    where: Tuple[WhereClause, ...] = ()

    def __str__(self) -> str:
        generics = ""
        if self.generics:
            generics = "<" + ", ".join(str(g) for g in self.generics) + ">"
        params = ", ".join(str(p) for p in self.params)
        return f"fn{generics}({params}) -[{self.exec_spec}]-> {self.ret}"


# ---------------------------------------------------------------------------
# Structural type equality (modulo nat normalisation)
# ---------------------------------------------------------------------------


def types_equal(a: DataType, b: DataType) -> bool:
    """Structural equality of data types with symbolic size comparison."""
    if isinstance(a, ScalarType) and isinstance(b, ScalarType):
        return a.name == b.name
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        return len(a.elems) == len(b.elems) and all(
            types_equal(x, y) for x, y in zip(a.elems, b.elems)
        )
    if isinstance(a, ArrayType) and isinstance(b, ArrayType):
        return nat_equal(a.size, b.size) and types_equal(a.elem, b.elem)
    if isinstance(a, ArrayViewType) and isinstance(b, ArrayViewType):
        return nat_equal(a.size, b.size) and types_equal(a.elem, b.elem)
    # An array may be used where a view of the same shape is expected
    # (the identity view); the converse is not allowed.
    if isinstance(a, ArrayViewType) and isinstance(b, ArrayType):
        return nat_equal(a.size, b.size) and types_equal(a.elem, b.elem)
    if isinstance(a, RefType) and isinstance(b, RefType):
        return (
            a.uniq == b.uniq
            and str(a.mem) == str(b.mem)
            and types_equal(a.referent, b.referent)
        )
    if isinstance(a, AtType) and isinstance(b, AtType):
        return str(a.mem) == str(b.mem) and types_equal(a.inner, b.inner)
    if isinstance(a, TyVar) and isinstance(b, TyVar):
        return a.name == b.name
    return False


def assignable(expected: DataType, found: DataType) -> bool:
    """Whether a value of type ``found`` can be used where ``expected`` is required.

    This is structural equality plus two conversions used pervasively in the
    paper's examples: an array is usable as an array view of the same shape,
    and a unique reference is usable where a shared reference is expected.
    """
    if types_equal(expected, found):
        return True
    if isinstance(expected, ArrayViewType) and isinstance(found, ArrayType):
        return nat_equal(expected.size, found.size) and assignable(expected.elem, found.elem)
    if isinstance(expected, RefType) and isinstance(found, RefType):
        if expected.uniq and not found.uniq:
            return False
        if str(expected.mem) != str(found.mem) and not (
            expected.mem.is_variable() or found.mem.is_variable()
        ):
            return False
        return assignable(expected.referent, found.referent)
    if isinstance(expected, ScalarType) and isinstance(found, ScalarType):
        # Integer literals may flow into any numeric scalar.
        return expected.is_numeric() and found.is_numeric() and expected.is_float() == found.is_float()
    return False


# ---------------------------------------------------------------------------
# Convenience constructors used by the builder API and the prelude
# ---------------------------------------------------------------------------


def array(elem: DataType, size: NatLike) -> ArrayType:
    return ArrayType(elem, as_nat(size))


def array2d(elem: DataType, rows: NatLike, cols: NatLike) -> ArrayType:
    return ArrayType(ArrayType(elem, as_nat(cols)), as_nat(rows))


def view_of(elem: DataType, size: NatLike) -> ArrayViewType:
    return ArrayViewType(elem, as_nat(size))


def shared_ref(mem: Memory, referent: DataType) -> RefType:
    return RefType(False, mem, referent)


def uniq_ref(mem: Memory, referent: DataType) -> RefType:
    return RefType(True, mem, referent)


def boxed(inner: DataType, mem: Memory) -> AtType:
    return AtType(inner, mem)
