"""Execution levels (the ε of Figure 6) and function execution specifications.

Every Descend function is annotated with *how* it is executed:
``-[grid: gpu.grid<X<64>, X<1024>>]->`` declares that the function body is
executed by a GPU grid of that shape, ``-[t: cpu.thread]->`` declares a host
function.  The execution level is compared at call sites (and kernel
launches) against the caller's current execution resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.descend.ast.dims import Dim
from repro.descend.nat import Nat


class ExecLevel:
    """Base class of execution levels."""

    __slots__ = ()

    def describe(self) -> str:
        raise NotImplementedError

    def is_gpu(self) -> bool:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class CpuThreadLevel(ExecLevel):
    """Executed by a single CPU thread."""

    def describe(self) -> str:
        return "cpu.thread"

    def is_gpu(self) -> bool:
        return False


@dataclass(frozen=True)
class GpuGridLevel(ExecLevel):
    """Executed by a GPU grid with the given block and thread shapes."""

    blocks: Dim
    threads: Dim

    def describe(self) -> str:
        return f"gpu.grid<{self.blocks}, {self.threads}>"

    def is_gpu(self) -> bool:
        return True

    def substitute_nats(self, mapping: Mapping[str, Nat]) -> "GpuGridLevel":
        return GpuGridLevel(self.blocks.substitute_nats(mapping), self.threads.substitute_nats(mapping))


@dataclass(frozen=True)
class GpuBlockLevel(ExecLevel):
    """Executed by a single GPU block with the given thread shape."""

    threads: Dim

    def describe(self) -> str:
        return f"gpu.block<{self.threads}>"

    def is_gpu(self) -> bool:
        return True


@dataclass(frozen=True)
class GpuThreadLevel(ExecLevel):
    """Executed by a single GPU thread."""

    def describe(self) -> str:
        return "gpu.thread"

    def is_gpu(self) -> bool:
        return True


@dataclass(frozen=True)
class ExecSpec:
    """The named execution resource in a function signature.

    ``fn foo(...) -[grid: gpu.grid<X<64>, X<1024>>]-> ()`` carries the name
    ``grid`` (bound inside the body) and the level ``gpu.grid<...>``.
    """

    name: str
    level: ExecLevel

    def describe(self) -> str:
        return f"{self.name}: {self.level.describe()}"

    def is_gpu(self) -> bool:
        return self.level.is_gpu()

    def grid_level(self) -> Optional[GpuGridLevel]:
        if isinstance(self.level, GpuGridLevel):
            return self.level
        return None

    def __str__(self) -> str:
        return self.describe()
