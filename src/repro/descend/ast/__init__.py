"""Abstract syntax of Descend.

The sub-modules mirror the figures of the paper:

* :mod:`repro.descend.ast.dims` — dimension specifications (``XYZ<2,2,1>`` ...)
* :mod:`repro.descend.ast.memory` — memory spaces (Figure 6, μ)
* :mod:`repro.descend.ast.exec_level` — execution levels (Figure 6, ε)
* :mod:`repro.descend.ast.exec_resources` — execution resources (Figure 2, e)
* :mod:`repro.descend.ast.types` — data and function types (Figure 6, δ)
* :mod:`repro.descend.ast.views` — view references used in place expressions
* :mod:`repro.descend.ast.places` — place expressions (Figure 3, p)
* :mod:`repro.descend.ast.terms` — terms (Figure 5, t)
* :mod:`repro.descend.ast.printer` — pretty printer back to surface syntax
"""

from repro.descend.ast.dims import Dim, DimName, dim_x, dim_xy, dim_xyz, dim_y, dim_z
from repro.descend.ast.exec_level import (
    CpuThreadLevel,
    ExecLevel,
    ExecSpec,
    GpuBlockLevel,
    GpuGridLevel,
    GpuThreadLevel,
)
from repro.descend.ast.exec_resources import (
    CpuThreadRes,
    ExecResource,
    ForallRes,
    GpuGridRes,
    SplitRes,
)
from repro.descend.ast.memory import CPU_MEM, GPU_GLOBAL, GPU_LOCAL, GPU_SHARED, Memory, MemVar
from repro.descend.ast.places import (
    PlaceExpr,
    PDeref,
    PIdx,
    PProj,
    PSelect,
    PVar,
    PView,
)
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    BOOL,
    DataType,
    F32,
    F64,
    FnType,
    GenericParam,
    I32,
    I64,
    Kind,
    RefType,
    ScalarType,
    TupleType,
    TyVar,
    U32,
    UNIT,
)
from repro.descend.ast.views import ViewRef
from repro.descend.ast import terms

__all__ = [
    "Dim",
    "DimName",
    "dim_x",
    "dim_y",
    "dim_z",
    "dim_xy",
    "dim_xyz",
    "Memory",
    "MemVar",
    "CPU_MEM",
    "GPU_GLOBAL",
    "GPU_SHARED",
    "GPU_LOCAL",
    "ExecLevel",
    "ExecSpec",
    "CpuThreadLevel",
    "GpuGridLevel",
    "GpuBlockLevel",
    "GpuThreadLevel",
    "ExecResource",
    "CpuThreadRes",
    "GpuGridRes",
    "ForallRes",
    "SplitRes",
    "DataType",
    "ScalarType",
    "TupleType",
    "ArrayType",
    "ArrayViewType",
    "RefType",
    "AtType",
    "TyVar",
    "FnType",
    "GenericParam",
    "Kind",
    "I32",
    "I64",
    "U32",
    "F32",
    "F64",
    "BOOL",
    "UNIT",
    "PlaceExpr",
    "PVar",
    "PProj",
    "PDeref",
    "PIdx",
    "PSelect",
    "PView",
    "ViewRef",
    "terms",
]
