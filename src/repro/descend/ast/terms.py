"""Terms of Descend (Figure 5) plus function definitions and whole programs.

Statements and expressions share the :class:`Term` base class (as in the
paper, where everything is a term of some type — most statements have type
``unit``).  The node set covers the paper's grammar:

* place expressions (as terms), let bindings, assignments, borrows, blocks
* function application with explicit type-level arguments
* ``for``-each and ``for``-nat loops, ``if`` conditionals
* ``sched``, ``split`` and ``sync`` — the execution-hierarchy primitives
* memory allocation (``alloc::<mem, T>()``, host heap/device allocations)
* kernel launches ``f::<<<Dim, Dim>>>(args)``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.descend.ast.dims import Dim, DimName
from repro.descend.ast.exec_level import ExecSpec
from repro.descend.ast.memory import Memory
from repro.descend.ast.places import PlaceExpr
from repro.descend.ast.types import DataType, FnType, GenericParam, WhereClause
from repro.descend.nat import Nat
from repro.descend.source import NO_SPAN, Span


class Term:
    """Base class of Descend terms."""

    __slots__ = ()

    span: Span = NO_SPAN


@dataclass(frozen=True)
class Lit(Term):
    """A literal value: integer, float, boolean, or unit."""

    value: Any
    ty: DataType
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class PlaceTerm(Term):
    """A place expression used as a value (a read)."""

    place: PlaceExpr
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return str(self.place)


@dataclass(frozen=True)
class BinaryOp(Term):
    """Arithmetic / comparison / logical binary operation."""

    op: str
    lhs: Term
    rhs: Term
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp(Term):
    """Unary negation / logical not."""

    op: str
    operand: Term
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class NatTerm(Term):
    """A nat expression used as a runtime value (e.g. a loop variable)."""

    nat: Nat
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return str(self.nat)


@dataclass(frozen=True)
class Borrow(Term):
    """``&p`` / ``&uniq p`` — create a (unique) reference to a place."""

    uniq: bool
    place: PlaceExpr
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"&{'uniq ' if self.uniq else ''}{self.place}"


@dataclass(frozen=True)
class LetTerm(Term):
    """``let x: δ = t`` — introduce and initialise a new variable."""

    name: str
    ty: Optional[DataType]
    init: Term
    span: Span = NO_SPAN

    def __str__(self) -> str:
        annotation = f": {self.ty}" if self.ty is not None else ""
        return f"let {self.name}{annotation} = {self.init}"


@dataclass(frozen=True)
class Assign(Term):
    """``p = t`` — store a value into the memory referred to by ``p``."""

    place: PlaceExpr
    value: Term
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"{self.place} = {self.value}"


@dataclass(frozen=True)
class Block(Term):
    """``{ t; t; ... }`` — a new scope containing a sequence of terms."""

    stmts: Tuple[Term, ...]
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return "{ " + "; ".join(str(s) for s in self.stmts) + " }"


@dataclass(frozen=True)
class IfTerm(Term):
    """``if cond { then } else { otherwise }`` (else optional)."""

    cond: Term
    then: Block
    otherwise: Optional[Block]
    span: Span = NO_SPAN

    def __str__(self) -> str:
        text = f"if {self.cond} {self.then}"
        if self.otherwise is not None:
            text += f" else {self.otherwise}"
        return text


@dataclass(frozen=True)
class ForNat(Term):
    """``for i in [lo..hi] { body }`` — loop over a static range of nats."""

    var: str
    lo: Nat
    hi: Nat
    body: Block
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"for {self.var} in [{self.lo}..{self.hi}] {self.body}"


@dataclass(frozen=True)
class ForEach(Term):
    """``for x in t { body }`` — loop over the elements of a collection."""

    var: str
    collection: Term
    body: Block
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"for {self.var} in {self.collection} {self.body}"


@dataclass(frozen=True)
class Sched(Term):
    """``sched(dims) x in e { body }`` — schedule over nested execution resources."""

    dims: Tuple[DimName, ...]
    binder: str
    exec_name: str
    body: Block
    span: Span = NO_SPAN

    def __str__(self) -> str:
        dims = ",".join(str(d) for d in self.dims)
        return f"sched({dims}) {self.binder} in {self.exec_name} {self.body}"


@dataclass(frozen=True)
class SplitExec(Term):
    """``split(dim) e at pos { x1 => {..}, x2 => {..} }`` — split an execution resource."""

    dim: DimName
    exec_name: str
    pos: Nat
    first_binder: str
    first_body: Block
    second_binder: str
    second_body: Block
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return (
            f"split({self.dim}) {self.exec_name} at {self.pos} "
            f"{{ {self.first_binder} => {self.first_body}, "
            f"{self.second_binder} => {self.second_body} }}"
        )


@dataclass(frozen=True)
class Sync(Term):
    """``sync`` — block-wide barrier synchronisation."""

    span: Span = NO_SPAN

    def __str__(self) -> str:
        return "sync"


@dataclass(frozen=True)
class Alloc(Term):
    """``alloc::<mem, T>()`` — allocate (uninitialised) memory in an address space.

    With ``mem = gpu.shared`` this is the per-block shared-memory allocation of
    Listing 2; ``gpu.local`` allocates per-thread private memory.
    """

    mem: Memory
    ty: DataType
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"alloc::<{self.mem}, {self.ty}>()"


@dataclass(frozen=True)
class ArrayInit(Term):
    """``[value; size]`` — an array filled with copies of ``value``."""

    value: Term
    size: Nat
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"[{self.value}; {self.size}]"


@dataclass(frozen=True)
class FnApp(Term):
    """``f::<η, μ, δ>(t, ...)`` — apply a (possibly polymorphic) function.

    Built-in host operations (``CpuHeap::new``, ``GpuGlobal::alloc_copy``,
    ``copy_mem_to_host``) are ordinary function applications resolved against
    the prelude.
    """

    name: str
    nat_args: Tuple[Nat, ...] = ()
    mem_args: Tuple[Memory, ...] = ()
    ty_args: Tuple[DataType, ...] = ()
    args: Tuple[Term, ...] = ()
    span: Span = NO_SPAN

    def __str__(self) -> str:
        generics = ""
        pieces = [str(n) for n in self.nat_args] + [str(m) for m in self.mem_args] + [
            str(t) for t in self.ty_args
        ]
        if pieces:
            generics = "::<" + ", ".join(pieces) + ">"
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}{generics}({args})"


@dataclass(frozen=True)
class KernelLaunch(Term):
    """``f::<<<BlockDim, ThreadDim>>>(args)`` — launch a GPU function from the host."""

    name: str
    grid_dim: Dim
    block_dim: Dim
    nat_args: Tuple[Nat, ...] = ()
    args: Tuple[Term, ...] = ()
    span: Span = NO_SPAN

    def __str__(self) -> str:
        generics = ""
        if self.nat_args:
            generics = "::<" + ", ".join(str(n) for n in self.nat_args) + ">"
        args = ", ".join(str(a) for a in self.args)
        return f"{self.name}{generics}<<<{self.grid_dim}, {self.block_dim}>>>({args})"


# ---------------------------------------------------------------------------
# Function definitions and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunParam:
    """A value parameter of a function definition."""

    name: str
    ty: DataType
    span: Span = NO_SPAN

    def __str__(self) -> str:
        return f"{self.name}: {self.ty}"


@dataclass(frozen=True)
class FunDef:
    """A Descend function definition."""

    name: str
    generics: Tuple[GenericParam, ...]
    params: Tuple[FunParam, ...]
    exec_spec: ExecSpec
    ret: DataType
    body: Block
    where: Tuple[WhereClause, ...] = ()
    span: Span = NO_SPAN

    def fn_type(self) -> FnType:
        return FnType(
            generics=self.generics,
            params=tuple(p.ty for p in self.params),
            exec_spec=self.exec_spec,
            ret=self.ret,
            where=self.where,
        )

    def __str__(self) -> str:
        generics = ""
        if self.generics:
            generics = "<" + ", ".join(str(g) for g in self.generics) + ">"
        params = ", ".join(str(p) for p in self.params)
        return f"fn {self.name}{generics}({params}) -[{self.exec_spec}]-> {self.ret}"


@dataclass(frozen=True)
class ViewDef:
    """A named view definition (``view group_by_row<...> = ...``).

    The reproduction ships the composite views used in the paper as built-ins
    (see :mod:`repro.descend.views.registry`); user-defined view definitions
    are parsed and registered as compositions of existing views.
    """

    name: str
    nat_params: Tuple[str, ...]
    body: Tuple[Any, ...]  # sequence of ViewRef applied left-to-right
    span: Span = NO_SPAN


@dataclass(frozen=True)
class Program:
    """A whole Descend compilation unit."""

    fun_defs: Tuple[FunDef, ...]
    view_defs: Tuple[ViewDef, ...] = ()
    span: Span = NO_SPAN

    def fun(self, name: str) -> FunDef:
        for fun_def in self.fun_defs:
            if fun_def.name == name:
                return fun_def
        raise KeyError(f"no function named {name!r}")

    def gpu_functions(self) -> Tuple[FunDef, ...]:
        return tuple(f for f in self.fun_defs if f.exec_spec.is_gpu())

    def cpu_functions(self) -> Tuple[FunDef, ...]:
        return tuple(f for f in self.fun_defs if not f.exec_spec.is_gpu())


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def child_terms(term: Term) -> List[Term]:
    """Direct sub-terms of a term (used by generic traversals)."""
    if isinstance(term, (Lit, PlaceTerm, NatTerm, Sync, Alloc, Borrow)):
        return []
    if isinstance(term, BinaryOp):
        return [term.lhs, term.rhs]
    if isinstance(term, UnaryOp):
        return [term.operand]
    if isinstance(term, LetTerm):
        return [term.init]
    if isinstance(term, Assign):
        return [term.value]
    if isinstance(term, Block):
        return list(term.stmts)
    if isinstance(term, IfTerm):
        children: List[Term] = [term.cond, term.then]
        if term.otherwise is not None:
            children.append(term.otherwise)
        return children
    if isinstance(term, ForNat):
        return [term.body]
    if isinstance(term, ForEach):
        return [term.collection, term.body]
    if isinstance(term, Sched):
        return [term.body]
    if isinstance(term, SplitExec):
        return [term.first_body, term.second_body]
    if isinstance(term, ArrayInit):
        return [term.value]
    if isinstance(term, FnApp):
        return list(term.args)
    if isinstance(term, KernelLaunch):
        return list(term.args)
    return []


def walk_terms(term: Term):
    """Yield ``term`` and every nested sub-term, depth first."""
    yield term
    for child in child_terms(term):
        yield from walk_terms(child)


def contains_sync(term: Term) -> bool:
    """Whether a barrier synchronisation occurs anywhere inside ``term``."""
    return any(isinstance(t, Sync) for t in walk_terms(term))
