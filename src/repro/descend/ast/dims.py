"""Dimension specifications for grids and blocks.

The paper's grammar (Figure 2) allows one-, two- and three-dimensional
shapes such as ``XYZ<2,2,1>``, ``XY<32,8>`` or ``X<256>``.  A :class:`Dim`
records which named dimensions are present and their (symbolic) sizes; the
missing-dimension forms let the type checker reject scheduling over a
dimension the grid does not have.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.descend.nat import Nat, NatLike, as_nat, evaluate_nat, nat_equal
from repro.errors import DescendError


class DimName(enum.Enum):
    """The three spatial dimension names of the CUDA/Descend hierarchy."""

    X = "X"
    Y = "Y"
    Z = "Z"

    def __str__(self) -> str:
        return self.value


def parse_dim_name(name: str) -> DimName:
    try:
        return DimName(name.upper())
    except ValueError as exc:
        raise DescendError(f"unknown dimension name: {name!r}") from exc


@dataclass(frozen=True)
class Dim:
    """An ordered collection of named dimension sizes, e.g. ``XY<32,8>``.

    The declaration order is preserved (it is the order in which the surface
    syntax lists the sizes); lookups are by :class:`DimName`.
    """

    entries: Tuple[Tuple[DimName, Nat], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.entries]
        if len(names) != len(set(names)):
            raise DescendError(f"duplicate dimension names in {self.spec_name()}")
        if not names:
            raise DescendError("a dimension specification needs at least one dimension")

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def of(**sizes: NatLike) -> "Dim":
        """Construct from keyword arguments, e.g. ``Dim.of(x=32, y=8)``."""
        entries = tuple((parse_dim_name(key), as_nat(value)) for key, value in sizes.items())
        return Dim(entries)

    @staticmethod
    def from_pairs(pairs: Iterable[Tuple[DimName, NatLike]]) -> "Dim":
        return Dim(tuple((name, as_nat(size)) for name, size in pairs))

    # -- queries ---------------------------------------------------------------
    @property
    def names(self) -> Tuple[DimName, ...]:
        return tuple(name for name, _ in self.entries)

    @property
    def sizes(self) -> Tuple[Nat, ...]:
        return tuple(size for _, size in self.entries)

    def has(self, name: DimName) -> bool:
        return any(entry_name == name for entry_name, _ in self.entries)

    def size(self, name: DimName) -> Nat:
        for entry_name, size in self.entries:
            if entry_name == name:
                return size
        raise DescendError(f"dimension {name} not present in {self.spec_name()}")

    def total(self) -> Nat:
        total: Optional[Nat] = None
        for _, size in self.entries:
            total = size if total is None else total * size
        assert total is not None
        return total

    def rank(self) -> int:
        return len(self.entries)

    def spec_name(self) -> str:
        """The surface-syntax name, e.g. ``XY<32, 8>``."""
        names = "".join(str(name) for name, _ in self.entries)
        sizes = ", ".join(str(size) for _, size in self.entries)
        return f"{names}<{sizes}>"

    def concrete_sizes(self, env: Optional[Mapping[str, int]] = None) -> Dict[DimName, int]:
        """Evaluate every size with the given nat bindings."""
        return {name: evaluate_nat(size, env) for name, size in self.entries}

    def substitute_nats(self, mapping: Mapping[str, Nat]) -> "Dim":
        return Dim(tuple((name, size.substitute(mapping)) for name, size in self.entries))

    def equals(self, other: "Dim") -> bool:
        """Structural equality modulo nat normalisation and dimension order."""
        if set(self.names) != set(other.names):
            return False
        return all(nat_equal(self.size(name), other.size(name)) for name in self.names)

    def __str__(self) -> str:
        return self.spec_name()


def dim_x(size: NatLike) -> Dim:
    return Dim.of(x=size)


def dim_y(size: NatLike) -> Dim:
    return Dim.of(y=size)


def dim_z(size: NatLike) -> Dim:
    return Dim.of(z=size)


def dim_xy(x: NatLike, y: NatLike) -> Dim:
    return Dim.from_pairs([(DimName.X, x), (DimName.Y, y)])


def dim_xz(x: NatLike, z: NatLike) -> Dim:
    return Dim.from_pairs([(DimName.X, x), (DimName.Z, z)])


def dim_yz(y: NatLike, z: NatLike) -> Dim:
    return Dim.from_pairs([(DimName.Y, y), (DimName.Z, z)])


def dim_xyz(x: NatLike, y: NatLike, z: NatLike) -> Dim:
    return Dim.from_pairs([(DimName.X, x), (DimName.Y, y), (DimName.Z, z)])


def dim_from_spec(spec: str, sizes: Sequence[NatLike]) -> Dim:
    """Build a Dim from a surface-syntax prefix such as ``"XY"`` plus sizes."""
    names = [parse_dim_name(char) for char in spec]
    if len(names) != len(sizes):
        raise DescendError(
            f"dimension spec {spec!r} expects {len(names)} sizes, got {len(sizes)}"
        )
    return Dim.from_pairs(list(zip(names, [as_nat(s) for s in sizes])))
