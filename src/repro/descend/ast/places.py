"""Place expressions (Figure 3).

A place expression names a region of memory: a variable, a tuple projection,
a dereference, an index into an array, a *select* (``p[[thread]]``, Descend's
safe parallel access), or the application of a view (``p.group::<32>``).

The type checker compares place expressions syntactically (after view
normalisation) to decide whether two accesses may refer to overlapping
memory; the interpreter and the code generator evaluate them into raw
indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Optional, Tuple, Union

from repro.descend.nat import Nat, NatLike, as_nat
from repro.descend.ast.views import ViewRef
from repro.descend.source import NO_SPAN, Span


class PlaceExpr:
    """Base class of place expressions."""

    __slots__ = ()

    span: Span = NO_SPAN

    # -- structure -------------------------------------------------------------
    def root(self) -> "PVar":
        """The variable at the bottom of the place expression."""
        raise NotImplementedError

    def parts(self) -> List["PlaceExpr"]:
        """The chain of place expressions from the root to ``self``."""
        raise NotImplementedError

    def select_vars(self) -> Tuple[str, ...]:
        """Names of the execution variables used in selects, outside-in."""
        return tuple(part.exec_var for part in self.parts() if isinstance(part, PSelect))

    def contains_deref(self) -> bool:
        return any(isinstance(part, PDeref) for part in self.parts())

    def key(self) -> str:
        """A canonical string used for syntactic comparison."""
        return str(self)

    # -- convenience constructors (builder style) --------------------------------
    def proj(self, index: int) -> "PProj":
        return PProj(self, index)

    @property
    def fst(self) -> "PProj":
        return PProj(self, 0)

    @property
    def snd(self) -> "PProj":
        return PProj(self, 1)

    def deref(self) -> "PDeref":
        return PDeref(self)

    def idx(self, index: Union[NatLike, Any]) -> "PIdx":
        return PIdx(self, _coerce_index(index))

    def select(self, exec_var: str) -> "PSelect":
        return PSelect(self, exec_var)

    def view(self, name: str, *nat_args: NatLike, view_args: Tuple[ViewRef, ...] = ()) -> "PView":
        return PView(self, ViewRef.of(name, *nat_args, view_args=view_args))

    def apply_view(self, ref: ViewRef) -> "PView":
        return PView(self, ref)

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


def _coerce_index(index: Union[NatLike, Any]):
    """Indices are nats when possible (constants, loop variables), terms otherwise."""
    if isinstance(index, (int, str)) or isinstance(index, Nat):
        return as_nat(index)
    return index


@dataclass(frozen=True)
class PVar(PlaceExpr):
    """A variable naming a region of memory."""

    name: str
    span: Span = NO_SPAN

    def root(self) -> "PVar":
        return self

    def parts(self) -> List[PlaceExpr]:
        return [self]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PProj(PlaceExpr):
    """``p.fst`` / ``p.snd`` — projection out of a pair."""

    base: PlaceExpr
    index: int
    span: Span = NO_SPAN

    def root(self) -> PVar:
        return self.base.root()

    def parts(self) -> List[PlaceExpr]:
        return self.base.parts() + [self]

    def __str__(self) -> str:
        return f"{self.base}.{'fst' if self.index == 0 else 'snd'}"


@dataclass(frozen=True)
class PDeref(PlaceExpr):
    """``*p`` — the memory a reference points to."""

    base: PlaceExpr
    span: Span = NO_SPAN

    def root(self) -> PVar:
        return self.base.root()

    def parts(self) -> List[PlaceExpr]:
        return self.base.parts() + [self]

    def __str__(self) -> str:
        return f"(*{self.base})"


@dataclass(frozen=True)
class PIdx(PlaceExpr):
    """``p[i]`` — a single element of an array.

    The index is a :class:`Nat` whenever it is statically known (a constant or
    a ``for``-nat loop variable); otherwise it is an arbitrary term.
    """

    base: PlaceExpr
    index: Any
    span: Span = NO_SPAN

    def root(self) -> PVar:
        return self.base.root()

    def parts(self) -> List[PlaceExpr]:
        return self.base.parts() + [self]

    def index_is_nat(self) -> bool:
        return isinstance(self.index, Nat)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class PSelect(PlaceExpr):
    """``p[[e]]`` — each sub-execution-resource of ``e`` selects its own element."""

    base: PlaceExpr
    exec_var: str
    span: Span = NO_SPAN

    def root(self) -> PVar:
        return self.base.root()

    def parts(self) -> List[PlaceExpr]:
        return self.base.parts() + [self]

    def __str__(self) -> str:
        return f"{self.base}[[{self.exec_var}]]"


@dataclass(frozen=True)
class PView(PlaceExpr):
    """``p.view::<...>`` — reinterpret the array through a view."""

    base: PlaceExpr
    ref: ViewRef
    span: Span = NO_SPAN

    def root(self) -> PVar:
        return self.base.root()

    def parts(self) -> List[PlaceExpr]:
        return self.base.parts() + [self]

    def __str__(self) -> str:
        return f"{self.base}.{self.ref}"


def place_root_name(place: PlaceExpr) -> str:
    return place.root().name


def strip_derefs(place: PlaceExpr) -> PlaceExpr:
    """Remove dereferences (used when resolving a place to its backing buffer)."""
    if isinstance(place, PVar):
        return place
    if isinstance(place, PDeref):
        return strip_derefs(place.base)
    if isinstance(place, PProj):
        return PProj(strip_derefs(place.base), place.index, place.span)
    if isinstance(place, PIdx):
        return PIdx(strip_derefs(place.base), place.index, place.span)
    if isinstance(place, PSelect):
        return PSelect(strip_derefs(place.base), place.exec_var, place.span)
    if isinstance(place, PView):
        return PView(strip_derefs(place.base), place.ref, place.span)
    raise TypeError(f"unknown place expression {place!r}")
