"""Pretty-printing Descend ASTs back to surface syntax.

The printer produces text the frontend parser accepts again, which gives a
parse → print → parse round-trip used by the property-based tests, and lets
examples show programs that were assembled with the builder API in the
paper's concrete syntax.
"""

from __future__ import annotations

from typing import List

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim
from repro.descend.ast.exec_level import (
    CpuThreadLevel,
    GpuBlockLevel,
    GpuGridLevel,
    GpuThreadLevel,
)
from repro.descend.ast.places import PlaceExpr
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    DataType,
    RefType,
    ScalarType,
    TupleType,
    TyVar,
)


def print_type(ty: DataType) -> str:
    """Render a data type in surface syntax."""
    if isinstance(ty, ScalarType):
        return ty.name
    if isinstance(ty, TupleType):
        return "(" + ", ".join(print_type(e) for e in ty.elems) + ")"
    if isinstance(ty, ArrayType):
        return f"[{print_type(ty.elem)}; {ty.size}]"
    if isinstance(ty, ArrayViewType):
        return f"[[{print_type(ty.elem)}; {ty.size}]]"
    if isinstance(ty, RefType):
        qualifier = "uniq " if ty.uniq else ""
        return f"&{qualifier}{ty.mem} {print_type(ty.referent)}"
    if isinstance(ty, AtType):
        return f"{print_type(ty.inner)} @ {ty.mem}"
    if isinstance(ty, TyVar):
        return ty.name
    raise TypeError(f"cannot print type {ty!r}")


def print_dim(dim: Dim) -> str:
    return dim.spec_name()


def print_exec_level(level) -> str:
    if isinstance(level, CpuThreadLevel):
        return "cpu.thread"
    if isinstance(level, GpuThreadLevel):
        return "gpu.thread"
    if isinstance(level, GpuGridLevel):
        return f"gpu.grid<{print_dim(level.blocks)}, {print_dim(level.threads)}>"
    if isinstance(level, GpuBlockLevel):
        return f"gpu.block<{print_dim(level.threads)}>"
    raise TypeError(f"cannot print execution level {level!r}")


def print_place(place: PlaceExpr) -> str:
    return str(place)


def print_term(term: T.Term, indent: int = 0) -> str:
    """Render a term (statement or expression) in surface syntax."""
    pad = "    " * indent
    if isinstance(term, T.Block):
        return print_block(term, indent)
    if isinstance(term, T.LetTerm):
        annotation = f": {print_type(term.ty)}" if term.ty is not None else ""
        return f"{pad}let {term.name}{annotation} = {print_expr(term.init)}"
    if isinstance(term, T.Assign):
        return f"{pad}{print_place(term.place)} = {print_expr(term.value)}"
    if isinstance(term, T.Sync):
        return f"{pad}sync"
    if isinstance(term, T.ForNat):
        header = f"{pad}for {term.var} in [{term.lo}..{term.hi}] "
        return header + print_block(term.body, indent).lstrip()
    if isinstance(term, T.ForEach):
        header = f"{pad}for {term.var} in {print_expr(term.collection)} "
        return header + print_block(term.body, indent).lstrip()
    if isinstance(term, T.IfTerm):
        text = f"{pad}if {print_expr(term.cond)} " + print_block(term.then, indent).lstrip()
        if term.otherwise is not None:
            text += " else " + print_block(term.otherwise, indent).lstrip()
        return text
    if isinstance(term, T.Sched):
        dims = ",".join(str(d) for d in term.dims)
        header = f"{pad}sched({dims}) {term.binder} in {term.exec_name} "
        return header + print_block(term.body, indent).lstrip()
    if isinstance(term, T.SplitExec):
        first = print_block(term.first_body, indent + 1).lstrip()
        second = print_block(term.second_body, indent + 1).lstrip()
        inner_pad = "    " * (indent + 1)
        return (
            f"{pad}split({term.dim}) {term.exec_name} at {term.pos} {{\n"
            f"{inner_pad}{term.first_binder} => {first},\n"
            f"{inner_pad}{term.second_binder} => {second}\n"
            f"{pad}}}"
        )
    return f"{pad}{print_expr(term)}"


def print_expr(term: T.Term) -> str:
    """Render an expression in surface syntax."""
    if isinstance(term, T.Lit):
        if isinstance(term.ty, ScalarType) and term.ty.name == "f64":
            text = repr(float(term.value))
            return text if "." in text or "e" in text else text + ".0"
        if isinstance(term.ty, ScalarType) and term.ty.name == "bool":
            return "true" if term.value else "false"
        return str(term.value)
    if isinstance(term, T.NatTerm):
        return str(term.nat)
    if isinstance(term, T.PlaceTerm):
        return print_place(term.place)
    if isinstance(term, T.Borrow):
        return f"&{'uniq ' if term.uniq else ''}{print_place(term.place)}"
    if isinstance(term, T.BinaryOp):
        return f"({print_expr(term.lhs)} {term.op} {print_expr(term.rhs)})"
    if isinstance(term, T.UnaryOp):
        return f"({term.op}{print_expr(term.operand)})"
    if isinstance(term, T.Alloc):
        return f"alloc::<{term.mem}, {print_type(term.ty)}>()"
    if isinstance(term, T.ArrayInit):
        return f"[{print_expr(term.value)}; {term.size}]"
    if isinstance(term, T.FnApp):
        generics = ""
        pieces = [str(n) for n in term.nat_args]
        pieces += [str(m) for m in term.mem_args]
        pieces += [print_type(t) for t in term.ty_args]
        if pieces:
            generics = "::<" + ", ".join(pieces) + ">"
        return f"{term.name}{generics}(" + ", ".join(print_expr(a) for a in term.args) + ")"
    if isinstance(term, T.KernelLaunch):
        generics = ""
        if term.nat_args:
            generics = "::<" + ", ".join(str(n) for n in term.nat_args) + ">"
        return (
            f"{term.name}{generics}::<<<{print_dim(term.grid_dim)}, {print_dim(term.block_dim)}>>>("
            + ", ".join(print_expr(a) for a in term.args)
            + ")"
        )
    raise TypeError(f"cannot print expression {term!r}")


def print_block(block: T.Block, indent: int = 0) -> str:
    pad = "    " * indent
    inner = [print_term(stmt, indent + 1) + ";" for stmt in block.stmts]
    if not inner:
        return f"{pad}{{ }}"
    body = "\n".join(inner)
    return f"{pad}{{\n{body}\n{pad}}}"


def print_fun_def(fun_def: T.FunDef) -> str:
    generics = ""
    if fun_def.generics:
        generics = "<" + ", ".join(f"{g.name}: {g.kind}" for g in fun_def.generics) + ">"
    params = ", ".join(f"{p.name}: {print_type(p.ty)}" for p in fun_def.params)
    header = (
        f"fn {fun_def.name}{generics}({params}) "
        f"-[{fun_def.exec_spec.name}: {print_exec_level(fun_def.exec_spec.level)}]-> "
        f"{print_type(fun_def.ret)} "
    )
    return header + print_block(fun_def.body, 0)


def print_program(program: T.Program) -> str:
    """Render a whole program in surface syntax."""
    return "\n\n".join(print_fun_def(f) for f in program.fun_defs) + "\n"
