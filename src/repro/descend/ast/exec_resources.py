"""Execution resources (the ``e`` of Figure 2).

An execution resource identifies *who* executes a piece of code: the single
CPU thread, the whole GPU grid, all blocks with equal coordinates in some
dimensions (``grid.forall(X)``), one half of a split (``blocks.split(1, Y).fst``)
and so on, down to a single GPU thread.

The type checker uses execution resources for three things (Section 3.1):

1. checking what code runs on the CPU vs the GPU,
2. checking which instructions are executed by which part of the hierarchy
   (e.g. a barrier must be executed by *all* threads of a block),
3. keeping track of dimensions and sizes for code generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.descend.ast.dims import Dim, DimName
from repro.descend.nat import Nat, NatLike, as_nat
from repro.errors import DescendError

# Execution resources are immutable value objects, but the scheduling-state
# queries below walk the derivation chain recursively and the type checker
# asks them for every statement and place it visits.  The module-level
# lru_caches turn the repeated walks into single hash lookups (structurally
# equal resources share one cache entry).


@lru_cache(maxsize=16384)
def _pending_dims(res: "ExecResource") -> Tuple[Tuple[DimName, ...], Tuple[DimName, ...]]:
    grid = res.base_grid()
    if grid is None:
        return ((), ())
    done_blocks = set(res.scheduled_block_dims())
    done_threads = set(res.scheduled_thread_dims())
    return (
        tuple(name for name in grid.blocks.names if name not in done_blocks),
        tuple(name for name in grid.threads.names if name not in done_threads),
    )


@lru_cache(maxsize=16384)
def _forall_scheduled(res: "ForallRes") -> Tuple[Tuple[DimName, ...], Tuple[DimName, ...]]:
    inherited_blocks = res.base.scheduled_block_dims()
    inherited_threads = res.base.scheduled_thread_dims()
    if res.over_blocks():
        return (inherited_blocks + res.dims, inherited_threads)
    return (inherited_blocks, inherited_threads + res.dims)


@lru_cache(maxsize=16384)
def _chain(res: "ExecResource") -> Tuple["ExecResource", ...]:
    base = getattr(res, "base", None)
    if base is None:
        return (res,)
    return _chain(base) + (res,)


def clear_exec_caches() -> None:
    """Drop the execution-resource memoization caches (cold benchmarking)."""
    _pending_dims.cache_clear()
    _forall_scheduled.cache_clear()
    _chain.cache_clear()


class ExecResource:
    """Base class of execution resources."""

    __slots__ = ()

    # -- hierarchy navigation --------------------------------------------------
    def base_grid(self) -> Optional["GpuGridRes"]:
        """The grid this resource was derived from (None for CPU threads)."""
        raise NotImplementedError

    def chain(self) -> List["ExecResource"]:
        """The derivation chain from the root resource to ``self`` (inclusive)."""
        return list(_chain(self))

    def is_gpu(self) -> bool:
        return self.base_grid() is not None

    # -- scheduling state --------------------------------------------------------
    def scheduled_block_dims(self) -> Tuple[DimName, ...]:
        """Block dimensions already distributed with ``forall``."""
        raise NotImplementedError

    def scheduled_thread_dims(self) -> Tuple[DimName, ...]:
        """Thread dimensions already distributed with ``forall``."""
        raise NotImplementedError

    def pending_block_dims(self) -> Tuple[DimName, ...]:
        return _pending_dims(self)[0]

    def pending_thread_dims(self) -> Tuple[DimName, ...]:
        return _pending_dims(self)[1]

    def blocks_fully_scheduled(self) -> bool:
        return self.is_gpu() and not self.pending_block_dims()

    def threads_fully_scheduled(self) -> bool:
        return self.is_gpu() and not self.pending_thread_dims()

    def is_single_thread(self) -> bool:
        """True when the resource denotes one GPU thread (or the CPU thread)."""
        if not self.is_gpu():
            return True
        return self.blocks_fully_scheduled() and self.threads_fully_scheduled()

    def is_block_level(self) -> bool:
        """True when the resource denotes one block (threads not yet scheduled)."""
        return (
            self.is_gpu()
            and self.blocks_fully_scheduled()
            and not self.scheduled_thread_dims()
            and not self.threads_fully_scheduled()
        )

    def sched_depth(self) -> int:
        """Number of ``sched`` (forall) steps applied so far."""
        return sum(1 for res in self.chain() if isinstance(res, ForallRes))

    def has_thread_split(self) -> bool:
        """True if a ``split`` was applied after the blocks were fully scheduled.

        Such a split partitions the threads of a block, which makes a block-wide
        barrier illegal (the paper's "barrier not allowed here" error).
        """
        for res in self.chain():
            if isinstance(res, SplitRes) and res.base.blocks_fully_scheduled():
                return True
        return False

    def split_of_blocks(self) -> bool:
        """True if a ``split`` was applied while block dims were still pending."""
        for res in self.chain():
            if isinstance(res, SplitRes) and not res.base.blocks_fully_scheduled():
                return True
        return False

    # -- extents -----------------------------------------------------------------
    def forall_extents(self, dims: Tuple[DimName, ...]) -> Tuple[Nat, ...]:
        """Sizes of the sub-resource axes a ``sched`` over ``dims`` would create."""
        grid = self.base_grid()
        if grid is None:
            raise DescendError("cannot schedule over a CPU thread")
        extents = []
        pending_blocks = set(self.pending_block_dims())
        for dim in dims:
            if pending_blocks:
                if dim not in pending_blocks:
                    raise DescendError(
                        f"dimension {dim} is not an unscheduled block dimension"
                    )
                extents.append(self._extent_of(dim, over_blocks=True))
            else:
                if dim not in set(self.pending_thread_dims()):
                    raise DescendError(
                        f"dimension {dim} is not an unscheduled thread dimension"
                    )
                extents.append(self._extent_of(dim, over_blocks=False))
        return tuple(extents)

    def _extent_of(self, dim: DimName, over_blocks: bool) -> Nat:
        """The extent of ``dim`` accounting for splits applied along the chain."""
        grid = self.base_grid()
        assert grid is not None
        base = grid.blocks.size(dim) if over_blocks else grid.threads.size(dim)
        for res in self.chain():
            if isinstance(res, SplitRes) and res.dim == dim:
                applies_to_blocks = not res.base.blocks_fully_scheduled()
                if applies_to_blocks == over_blocks:
                    base = res.pos if res.which == "fst" else base - res.pos
        return base

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class CpuThreadRes(ExecResource):
    """The single CPU host thread."""

    name: str = "cpu.thread"

    def base_grid(self) -> Optional["GpuGridRes"]:
        return None

    def scheduled_block_dims(self) -> Tuple[DimName, ...]:
        return ()

    def scheduled_thread_dims(self) -> Tuple[DimName, ...]:
        return ()

    def describe(self) -> str:
        return "cpu.thread"


@dataclass(frozen=True)
class GpuGridRes(ExecResource):
    """The full GPU grid described by block and thread shapes."""

    blocks: Dim
    threads: Dim

    def base_grid(self) -> Optional["GpuGridRes"]:
        return self

    def scheduled_block_dims(self) -> Tuple[DimName, ...]:
        return ()

    def scheduled_thread_dims(self) -> Tuple[DimName, ...]:
        return ()

    def describe(self) -> str:
        return f"gpu.grid<{self.blocks}, {self.threads}>"


@dataclass(frozen=True)
class ForallRes(ExecResource):
    """``e.forall(d₁)...forall(dₖ)`` — one ``sched`` step over ``dims``.

    The paper writes one ``forall`` per dimension; a single surface-level
    ``sched(Y, X)`` corresponds to two chained foralls.  We keep the whole
    sched step in one node (with an ordered tuple of dimensions) because the
    narrowing check reasons per sched step.
    """

    base: ExecResource
    dims: Tuple[DimName, ...]

    def base_grid(self) -> Optional[GpuGridRes]:
        return self.base.base_grid()

    def over_blocks(self) -> bool:
        """Whether this sched step distributes blocks (vs threads)."""
        return bool(self.base.pending_block_dims())

    def scheduled_block_dims(self) -> Tuple[DimName, ...]:
        return _forall_scheduled(self)[0]

    def scheduled_thread_dims(self) -> Tuple[DimName, ...]:
        return _forall_scheduled(self)[1]

    def extents(self) -> Tuple[Nat, ...]:
        """The number of sub-resources along each scheduled dimension."""
        return self.base.forall_extents(self.dims)

    def describe(self) -> str:
        foralls = "".join(f".forall({dim})" for dim in self.dims)
        return f"{self.base.describe()}{foralls}"


@dataclass(frozen=True)
class SplitRes(ExecResource):
    """``e.split(pos, d).fst`` / ``.snd`` — one half of a split resource."""

    base: ExecResource
    dim: DimName
    pos: Nat
    which: str  # "fst" | "snd"

    def __post_init__(self) -> None:
        if self.which not in ("fst", "snd"):
            raise DescendError(f"invalid split selector {self.which!r}")

    def base_grid(self) -> Optional[GpuGridRes]:
        return self.base.base_grid()

    def scheduled_block_dims(self) -> Tuple[DimName, ...]:
        return self.base.scheduled_block_dims()

    def scheduled_thread_dims(self) -> Tuple[DimName, ...]:
        return self.base.scheduled_thread_dims()

    def describe(self) -> str:
        return f"{self.base.describe()}.split({self.pos}, {self.dim}).{self.which}"


def make_split(base: ExecResource, dim: DimName, pos: NatLike) -> Tuple[SplitRes, SplitRes]:
    """Create the two halves of splitting ``base`` at ``pos`` along ``dim``."""
    pos_nat = as_nat(pos)
    return (
        SplitRes(base, dim, pos_nat, "fst"),
        SplitRes(base, dim, pos_nat, "snd"),
    )


def exec_disjoint(a: ExecResource, b: ExecResource) -> bool:
    """Whether two execution resources denote provably disjoint thread sets.

    The only source of disjointness tracked here is a split: if the two
    resources share a common derivation prefix and then take different halves
    of the *same* split, no thread belongs to both.
    """
    chain_a = a.chain()
    chain_b = b.chain()
    for res_a, res_b in zip(chain_a, chain_b):
        if res_a == res_b:
            continue
        if (
            isinstance(res_a, SplitRes)
            and isinstance(res_b, SplitRes)
            and res_a.base == res_b.base
            and res_a.dim == res_b.dim
            and res_a.pos == res_b.pos
            and res_a.which != res_b.which
        ):
            return True
        return False
    return False
