"""Memory spaces (the μ of Figure 6).

Descend annotates every reference and boxed allocation with the address
space it lives in: CPU memory (stack and heap), GPU global memory, GPU
shared (per-block) memory, or — for locals of a single GPU thread — private
memory.  A :class:`MemVar` supports polymorphism over memory spaces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.descend.ast.exec_level import ExecLevel  # noqa: F401  (re-export convenience)


class Memory:
    """Base class of memory-space annotations.

    Subclasses carry a ``name`` attribute with the surface-syntax spelling
    (``cpu.mem``, ``gpu.global``, ``gpu.shared``, ``gpu.local``).
    """

    __slots__ = ()

    def is_gpu(self) -> bool:
        raise NotImplementedError

    def is_cpu(self) -> bool:
        raise NotImplementedError

    def is_variable(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConcreteMemory(Memory):
    """One of the four concrete address spaces."""

    name: str
    gpu: bool

    def is_gpu(self) -> bool:
        return self.gpu

    def is_cpu(self) -> bool:
        return not self.gpu

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MemVar(Memory):
    """A memory-space variable (``m`` in the paper), for polymorphic functions."""

    name: str

    def is_gpu(self) -> bool:
        return False

    def is_cpu(self) -> bool:
        return False

    def is_variable(self) -> bool:
        return True

    def __str__(self) -> str:
        return self.name


#: CPU stack and heap memory.
CPU_MEM = ConcreteMemory("cpu.mem", gpu=False)
#: GPU global (device) memory, accessible by the whole grid.
GPU_GLOBAL = ConcreteMemory("gpu.global", gpu=True)
#: GPU shared memory, accessible by the threads of one block.
GPU_SHARED = ConcreteMemory("gpu.shared", gpu=True)
#: GPU private (per-thread register/local) memory.
GPU_LOCAL = ConcreteMemory("gpu.local", gpu=True)

_BY_NAME = {
    CPU_MEM.name: CPU_MEM,
    GPU_GLOBAL.name: GPU_GLOBAL,
    GPU_SHARED.name: GPU_SHARED,
    GPU_LOCAL.name: GPU_LOCAL,
}


def memory_from_name(name: str) -> Memory:
    """Look up a concrete memory space by its surface-syntax name."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    return MemVar(name)


def memories_compatible(expected: Memory, found: Memory) -> bool:
    """Whether ``found`` can be used where ``expected`` is required.

    Memory variables are compatible with anything (their constraints are
    collected during generic instantiation).
    """
    if expected.is_variable() or found.is_variable():
        return True
    return expected == found
