"""High-level compiler API: the convenient entry point into Descend.

>>> from repro.descend.compiler import compile_source
>>> compiled = compile_source(source_text)         # parse + type check
>>> print(compiled.to_cuda().full_source())        # CUDA C++ translation
>>> kernel = compiled.kernel("transpose")          # launchable on the simulator
>>> result = kernel.launch(device, {...})

Programs built with :mod:`repro.descend.builder` go through
:func:`compile_program` instead of :func:`compile_source`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.descend.ast import terms as T
from repro.descend.ast.printer import print_program
from repro.descend.codegen import CudaModule, generate_cuda
from repro.descend.frontend import parse_program
from repro.descend.interp import DescendKernel, ExecutionResult, HostInterpreter
from repro.descend.source import SourceFile
from repro.descend.typeck import check_program
from repro.descend.typeck.checker import CheckedProgram
from repro.gpusim import GpuDevice


@dataclass
class CompiledProgram:
    """A parsed and type-checked Descend program with its back-ends attached."""

    program: T.Program
    checked: CheckedProgram
    source: Optional[SourceFile] = None

    # -- code generation ------------------------------------------------------------
    def to_cuda(self, nat_env: Optional[Dict[str, int]] = None) -> CudaModule:
        """Translate the program to CUDA C++ source."""
        return generate_cuda(self.program, nat_env)

    def to_source(self) -> str:
        """Pretty-print the program back to Descend surface syntax."""
        return print_program(self.program)

    # -- execution ---------------------------------------------------------------------
    def kernel(self, name: str) -> DescendKernel:
        """A launchable handle for one GPU function."""
        return DescendKernel(self.program, name)

    def run_host(
        self,
        fun_name: str,
        args: Optional[Dict[str, object]] = None,
        device: Optional[GpuDevice] = None,
        nat_args: Optional[Dict[str, int]] = None,
    ) -> ExecutionResult:
        """Run a CPU (host) function, including the kernels it launches."""
        interpreter = HostInterpreter(self.program, device)
        return interpreter.run(fun_name, args, nat_args)

    # -- introspection ------------------------------------------------------------------
    @property
    def function_names(self):
        return tuple(f.name for f in self.program.fun_defs)

    def gpu_function_names(self):
        return tuple(f.name for f in self.program.gpu_functions())


def compile_source(text: str, name: str = "<descend>") -> CompiledProgram:
    """Parse and type check Descend source text."""
    source = SourceFile(text, name)
    program = parse_program(text, name)
    checked = check_program(program, source)
    return CompiledProgram(program=program, checked=checked, source=source)


def compile_program(program: T.Program) -> CompiledProgram:
    """Type check a program built with the builder API."""
    checked = check_program(program)
    return CompiledProgram(program=program, checked=checked)


def compile_file(path: str) -> CompiledProgram:
    """Parse and type check a ``.descend`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return compile_source(text, name=path)
