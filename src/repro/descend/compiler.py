"""Deprecated compiler entry points (use :mod:`repro.descend.api`).

This module was the original convenient entry point into Descend; the
compile functions now live in :mod:`repro.descend.api`, the one public
surface shared by the CLI, the compile-service daemon and the benchsuite:

>>> from repro.descend.api import compile_source
>>> compiled = compile_source(source_text)         # parse + type check
>>> print(compiled.to_cuda().full_source())        # CUDA C++ translation

:func:`compile_source` / :func:`compile_program` / :func:`compile_file`
remain here as shims that emit a :class:`DeprecationWarning` and delegate
to the facade.  The class/driver re-exports (:class:`CompilerDriver`,
:class:`CompileSession`, :class:`ArtifactStore`, the active-session
helpers) are *not* deprecated — their home modules
(:mod:`repro.descend.driver`, :mod:`repro.descend.store`) are canonical
and this module simply re-exports them.
"""

from __future__ import annotations

import warnings

from repro.descend import api as _api
from repro.descend.ast import terms as T
from repro.descend.driver import (
    CompiledProgram,
    CompilerDriver,
    CompileSession,
    active_session,
    session_scope,
    set_active_session,
)
from repro.descend.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "CompiledProgram",
    "CompilerDriver",
    "CompileSession",
    "active_session",
    "session_scope",
    "set_active_session",
    "compile_source",
    "compile_program",
    "compile_file",
]


def _deprecated(name: str) -> None:
    warnings.warn(
        f"repro.descend.compiler.{name} is deprecated; "
        f"use repro.descend.api.{name} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_source(text: str, name: str = "<descend>") -> CompiledProgram:
    """Deprecated alias of :func:`repro.descend.api.compile_source`."""
    _deprecated("compile_source")
    return _api.compile_source(text, name)


def compile_program(program: T.Program) -> CompiledProgram:
    """Deprecated alias of :func:`repro.descend.api.compile_program`."""
    _deprecated("compile_program")
    return _api.compile_program(program)


def compile_file(path: str) -> CompiledProgram:
    """Deprecated alias of :func:`repro.descend.api.compile_file`."""
    _deprecated("compile_file")
    return _api.compile_file(path)
