"""High-level compiler API: the convenient entry point into Descend.

>>> from repro.descend.compiler import compile_source
>>> compiled = compile_source(source_text)         # parse + type check
>>> print(compiled.to_cuda().full_source())        # CUDA C++ translation
>>> kernel = compiled.kernel("transpose")          # launchable on the simulator
>>> result = kernel.launch(device, {...})

These functions are thin façades over the staged
:class:`~repro.descend.driver.CompilerDriver`: every call goes through the
process-wide :class:`~repro.descend.driver.CompileSession`, so repeated
compiles of the same source text (or of structurally equal builder-API
programs) hit the content-addressed pass cache instead of re-parsing and
re-checking.  Pass an explicit session via :class:`CompilerDriver` for
isolation, or use :func:`~repro.descend.driver.session_scope`.  Attach a
persistent :class:`~repro.descend.store.ArtifactStore`
(``session.attach_store(ArtifactStore(path))``) to make the cache survive
across processes.

Programs built with :mod:`repro.descend.builder` go through
:func:`compile_program` instead of :func:`compile_source`.
"""

from __future__ import annotations

from repro.descend.ast import terms as T
from repro.descend.driver import (
    CompiledProgram,
    CompilerDriver,
    CompileSession,
    active_session,
    session_scope,
    set_active_session,
)
from repro.descend.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "CompiledProgram",
    "CompilerDriver",
    "CompileSession",
    "active_session",
    "session_scope",
    "set_active_session",
    "compile_source",
    "compile_program",
    "compile_file",
]

_DRIVER = CompilerDriver()  # bound to the active session at call time


def compile_source(text: str, name: str = "<descend>") -> CompiledProgram:
    """Parse and type check Descend source text (cached by content hash)."""
    return _DRIVER.compile_source(text, name)


def compile_program(program: T.Program) -> CompiledProgram:
    """Type check a program built with the builder API (cached by AST)."""
    return _DRIVER.compile_program(program)


def compile_file(path: str) -> CompiledProgram:
    """Parse and type check a ``.descend`` file."""
    return _DRIVER.compile_file(path)
