"""Schema fingerprint of the persistent artifact store.

Persisted artifacts are pickles of compiler data structures (ASTs,
:class:`~repro.descend.typeck.checker.CheckedProgram`, CUDA modules,
diagnostics).  They are only valid as long as the compiler that produced
them is byte-identical to the compiler that reads them: a changed typeck
rule must not resurrect stale diagnostics, a changed code generator must
not resurrect stale CUDA.

Rather than asking developers to remember to bump a version constant, the
store's schema fingerprint *is* a hash of the compiler itself: every
``.py`` file of :mod:`repro.descend` (the full pass pipeline — frontend,
typeck, lowerings — and this store package) plus the pickle wire format
and the Python ``major.minor`` version (pickles of the same dataclasses
are not guaranteed stable across interpreter versions).  Any compiler
change therefore invalidates the store wholesale, which is always safe:
the store is a cache, and a cold compile rebuilds it.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
from functools import lru_cache
from pathlib import Path

#: Bumped when the *layout* of the store itself changes (index format,
#: object naming), independently of compiler changes.
STORE_FORMAT = 1


@lru_cache(maxsize=1)
def pipeline_fingerprint() -> str:
    """Hex digest identifying this exact compiler build and wire format."""
    hasher = hashlib.sha256()
    hasher.update(f"store-format:{STORE_FORMAT}\n".encode())
    hasher.update(f"python:{sys.version_info[0]}.{sys.version_info[1]}\n".encode())
    hasher.update(f"pickle:{pickle.HIGHEST_PROTOCOL}\n".encode())
    package_root = Path(__file__).resolve().parent.parent  # repro/descend
    for path in sorted(package_root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        hasher.update(str(path.relative_to(package_root)).encode())
        hasher.update(b"\0")
        hasher.update(path.read_bytes())
        hasher.update(b"\0")
    return hasher.hexdigest()
