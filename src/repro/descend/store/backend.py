"""Pluggable I/O backends of the content-addressed artifact store.

:class:`~repro.descend.store.cas.ArtifactStore` is the *policy* layer —
pickling, LRU eviction, quarantine decisions, counters, never-raise
degradation.  This module is the *mechanism* layer underneath it: where
blobs and the index actually live.  A :class:`StoreBackend` exposes the
five primitive surfaces the policy layer needs:

* blob get/put/delete (content-addressed, so puts are idempotent),
* index read / compare-and-swap (a monotonically increasing ``rev``
  guards every swap, giving lock-free readers and a bounded optimistic
  read-modify-write loop for writers),
* blob listing (index rebuild + gc reconcile),
* maintenance sweeps (stale tmp files, aged-out quarantine),
* a ``stat`` handshake (format + schema fingerprint) so a client can
  refuse a store written by a different compiler build *before* touching
  any data.

Two implementations ship:

:class:`LocalDirBackend`
    The PR 4 on-disk layout, byte-for-byte: ``objects/ab/<digest>``
    blobs, ``tempfile + os.replace`` atomic writes staged under ``tmp/``,
    and an ``fcntl.flock`` on ``<root>/lock``.  It overrides
    :meth:`StoreBackend.index_update` with a flock-held
    read-modify-write, so the multi-process concurrency story (and the
    ``store.index.flock`` fault seam) is exactly the one the concurrent
    writer tests have always exercised.

:class:`HttpBackend`
    A thin HTTP/1.1 client (stdlib ``http.client``, keep-alive) for the
    store endpoint the ``descendc serve`` daemon exposes (see
    :mod:`repro.descend.serve.storehttp`).  Index swaps become
    ``PUT /v1/index`` guarded by ``expect_rev`` — the daemon's
    single-writer executor is the serialization point, so the default
    CAS loop in :meth:`StoreBackend.index_update` is all the client
    needs.  Every request carries bounded retry with reconnect, and the
    ``store.http.get`` / ``store.http.put`` fault seams inject failures
    *inside* that retry loop, so chaos rules with ``nth=1`` heal exactly
    like a real dropped response.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import os
import tempfile
import time
import urllib.parse
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro import faults
from repro.descend.store.fingerprint import STORE_FORMAT

try:  # pragma: no cover - POSIX everywhere we run; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "StoreBackend",
    "LocalDirBackend",
    "HttpBackend",
    "backend_for",
    "is_store_url",
]

#: Wire protocol version of the HTTP store endpoint (path prefix ``/v1``).
HTTP_PROTOCOL_VERSION = 1

#: Largest blob/index body the HTTP endpoint and client will accept.
MAX_HTTP_BODY_BYTES = 64 * 1024 * 1024


def is_store_url(location: object) -> bool:
    """Whether ``location`` names a remote HTTP store rather than a directory."""
    return str(location).startswith(("http://", "https://"))


def backend_for(location: os.PathLike | str, schema: str) -> "StoreBackend":
    """The backend matching ``location``: a directory path or an HTTP URL."""
    if is_store_url(location):
        return HttpBackend(str(location), schema)
    return LocalDirBackend(Path(location), schema)


class StoreBackend:
    """Primitive blob/index I/O under an :class:`ArtifactStore`.

    Error contract (what the policy layer relies on):

    * ``blob_get`` returns ``None`` for a missing digest and raises
      :class:`OSError` for transient I/O trouble — the caller decides
      whether a failure is a miss, an error, or grounds for quarantine.
    * ``index_read`` returns ``(rev, entries_or_None)``; ``None`` means
      the index is unreadable/corrupt and the caller should rebuild from
      :meth:`list_blobs`.  It never invents an empty table for a corrupt
      one.
    * ``index_swap`` returns ``False`` (not an exception) when the rev
      moved underneath the caller; everything else that fails raises
      :class:`OSError`.
    """

    #: Human-readable backend family (``local-dir`` / ``http``), surfaced
    #: in ``cache stats`` output.
    kind = "abstract"

    #: Where this store lives (directory path or URL), for messages/stats.
    location = ""

    #: Bound on the optimistic read-modify-write loop: contention past
    #: this degrades to a failed (not blocked) store operation.
    INDEX_UPDATE_ATTEMPTS = 8

    def ensure_ready(self) -> None:
        raise NotImplementedError

    def blob_get(self, digest: str) -> Optional[bytes]:
        raise NotImplementedError

    def blob_put(self, digest: str, data: bytes) -> None:
        raise NotImplementedError

    def blob_delete(self, digest: str) -> None:
        raise NotImplementedError

    def blob_quarantine(self, digest: str) -> None:
        raise NotImplementedError

    def quarantine_count(self) -> int:
        raise NotImplementedError

    def list_blobs(self) -> Dict[str, int]:
        raise NotImplementedError

    def index_read(self) -> Tuple[int, Optional[Dict[str, object]]]:
        raise NotImplementedError

    def index_swap(self, expect_rev: int, entries: Dict[str, object]) -> bool:
        raise NotImplementedError

    def index_update(
        self, mutate: Callable[[Optional[Dict[str, object]]], Dict[str, object]]
    ) -> Dict[str, object]:
        """Atomically apply ``mutate`` to the entry table.

        The default is an optimistic CAS loop over read + swap — correct
        against any number of concurrent writers as long as swaps are
        rev-guarded.  Backends with a cheaper native mutual exclusion
        (:class:`LocalDirBackend`'s flock) override this.
        """
        for _ in range(self.INDEX_UPDATE_ATTEMPTS):
            rev, raw = self.index_read()
            entries = mutate(raw)
            if self.index_swap(rev, entries):
                return entries
        raise OSError(
            f"index update lost {self.INDEX_UPDATE_ATTEMPTS} swap races at {self.location}"
        )

    def maintain(self, tmp_stale_s: float, quarantine_age_s: float) -> None:
        raise NotImplementedError

    def wipe(self) -> None:
        raise NotImplementedError

    def stat(self) -> Dict[str, object]:
        raise NotImplementedError


class LocalDirBackend(StoreBackend):
    """The original on-disk store layout behind the backend interface.

    Layout under the root::

        <root>/
            schema.json          # {"format": 1, "schema": "<fingerprint>"}
            index.json           # {"rev": N, "entries": {digest: {...}}}
            lock                 # fcntl advisory lock serializing index writes
            objects/ab/abcdef…   # one pickle blob per artifact, named by digest
            tmp/                 # in-flight atomic-write staging
            quarantine/          # corrupt blobs moved aside, aged out by gc

    ``rev`` increments on every index write; :meth:`index_swap` lets a
    lock-free caller (the HTTP endpoint serving remote clients) detect a
    concurrent local writer, while local processes keep using the
    flock-held :meth:`index_update` override.
    """

    kind = "local-dir"

    def __init__(self, root: Path, schema: str) -> None:
        self.root = Path(root)
        self.schema = schema
        self.location = str(root)

    # -- layout ----------------------------------------------------------------
    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def _schema_path(self) -> Path:
        return self.root / "schema.json"

    @property
    def _tmp_dir(self) -> Path:
        # In-flight writes stage here, *outside* objects/, so maintenance's
        # stray-file sweep can never delete a tmp file a concurrent writer
        # is about to os.replace into place (same filesystem, so the rename
        # stays atomic).
        return self.root / "tmp"

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _object_path(self, digest: str) -> Path:
        return self._objects_dir / digest[:2] / digest

    @staticmethod
    def _is_digest(name: str) -> bool:
        return len(name) == 64 and all(c in "0123456789abcdef" for c in name)

    def ensure_ready(self) -> None:
        self._objects_dir.mkdir(parents=True, exist_ok=True)
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        with self._locked():
            if not self._schema_matches():
                self._wipe_objects_locked()
                self._write_json(self._index_path, {"rev": 0, "entries": {}})
                self._write_json(
                    self._schema_path,
                    {"format": STORE_FORMAT, "schema": self.schema},
                )

    def _schema_matches(self) -> bool:
        try:
            with open(self._schema_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            return (
                isinstance(meta, dict)
                and meta.get("format") == STORE_FORMAT
                and meta.get("schema") == self.schema
            )
        except (OSError, ValueError):
            return False

    # -- locking ---------------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self):
        """Hold the store's advisory lock (no-op where flock is unavailable)."""
        if fcntl is None:  # pragma: no cover
            yield
            return
        faults.maybe_raise("store.index.flock")
        lock_path = self.root / "lock"
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- atomic writes ---------------------------------------------------------
    def _write_json(self, path: Path, payload: Dict[str, object]) -> None:
        self._atomic_write(path, json.dumps(payload, indent=1).encode("utf-8"))

    def _atomic_write(self, path: Path, data: bytes, is_blob: bool = False) -> None:
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self._tmp_dir), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            if is_blob:
                faults.maybe_raise("store.blob.rename")
            os.replace(tmp_name, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    # -- blobs -----------------------------------------------------------------
    def blob_get(self, digest: str) -> Optional[bytes]:
        try:
            with open(self._object_path(digest), "rb") as handle:
                rule = faults.maybe_raise("store.blob.read")
                blob = handle.read()
        except FileNotFoundError:
            return None
        if rule is not None and rule.kind == "torn":
            blob = blob[: len(blob) // 2]
        return blob

    def blob_put(self, digest: str, data: bytes) -> None:
        rule = faults.maybe_raise("store.blob.write")
        if rule is not None and rule.kind == "torn":
            # A torn write: the rename lands, but the bytes are cut short —
            # the on-disk image a crash between write and fsync leaves
            # behind.  The next load quarantines it.
            data = data[: len(data) // 2]
        path = self._object_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, data, is_blob=True)

    def blob_delete(self, digest: str) -> None:
        with contextlib.suppress(FileNotFoundError):
            self._object_path(digest).unlink()

    def blob_quarantine(self, digest: str) -> None:
        source = self._object_path(digest)
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, self._quarantine_dir / digest)
        except OSError:
            # Can't move it aside (readonly dir, cross-device, gone already):
            # fall back to deleting so the poison at least can't re-degrade.
            with contextlib.suppress(OSError):
                source.unlink()

    def quarantine_count(self) -> int:
        try:
            return sum(1 for path in self._quarantine_dir.glob("*") if path.is_file())
        except OSError:  # pragma: no cover
            return 0

    def list_blobs(self) -> Dict[str, int]:
        blobs: Dict[str, int] = {}
        for path in self._objects_dir.rglob("*"):
            if path.is_file() and self._is_digest(path.name):
                with contextlib.suppress(OSError):
                    blobs[path.name] = path.stat().st_size
        return blobs

    # -- index -----------------------------------------------------------------
    def _read_index_nolock(self) -> Tuple[int, Optional[Dict[str, object]]]:
        try:
            with open(self._index_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if not isinstance(data, dict):
                return 0, None
            rev = data.get("rev", 0)
            if not isinstance(rev, int) or rev < 0:
                rev = 0
            raw = data.get("entries")
            return rev, (raw if isinstance(raw, dict) else None)
        except (OSError, ValueError):
            return 0, None

    def index_read(self) -> Tuple[int, Optional[Dict[str, object]]]:
        with self._locked():
            return self._read_index_nolock()

    def index_swap(self, expect_rev: int, entries: Dict[str, object]) -> bool:
        with self._locked():
            rev, _ = self._read_index_nolock()
            if rev != expect_rev:
                return False
            self._write_json(self._index_path, {"rev": rev + 1, "entries": entries})
            return True

    def index_update(
        self, mutate: Callable[[Optional[Dict[str, object]]], Dict[str, object]]
    ) -> Dict[str, object]:
        # Flock-held read-modify-write: identical multi-process semantics to
        # the pre-backend store (one lock acquisition per index mutation, no
        # retry loop to exhaust under writer contention).
        with self._locked():
            rev, raw = self._read_index_nolock()
            entries = mutate(raw)
            self._write_json(self._index_path, {"rev": rev + 1, "entries": entries})
            return entries

    # -- maintenance -----------------------------------------------------------
    def maintain(self, tmp_stale_s: float, quarantine_age_s: float) -> None:
        now = time.time()
        for path in self._objects_dir.rglob("*"):
            if path.is_file() and not self._is_digest(path.name):
                with contextlib.suppress(OSError):
                    path.unlink()
        # Staging files are only swept once stale: a live writer's tmp file
        # (pre-os.replace) must survive a concurrent maintenance pass.
        tmp_before = now - tmp_stale_s
        for path in self._tmp_dir.glob("*"):
            with contextlib.suppress(OSError):
                if path.is_file() and path.stat().st_mtime < tmp_before:
                    path.unlink()
        # Quarantined blobs age out on their own schedule: kept long enough
        # to debug a corruption burst, never accumulated forever.
        quarantine_before = now - quarantine_age_s
        if self._quarantine_dir.is_dir():
            for path in self._quarantine_dir.glob("*"):
                with contextlib.suppress(OSError):
                    if path.is_file() and path.stat().st_mtime < quarantine_before:
                        path.unlink()

    def wipe(self) -> None:
        self._wipe_objects_locked()

    def _wipe_objects_locked(self) -> None:
        for path in self._objects_dir.rglob("*"):
            if path.is_file():
                with contextlib.suppress(OSError):
                    path.unlink()

    def stat(self) -> Dict[str, object]:
        rev, _ = self.index_read()
        return {
            "format": STORE_FORMAT,
            "schema": self.schema,
            "rev": rev,
            "quarantine": self.quarantine_count(),
        }


class HttpBackend(StoreBackend):
    """Client of the daemon's HTTP store endpoint.

    One persistent keep-alive connection, reconnected on any transport
    failure; every request retries up to :data:`RETRY_ATTEMPTS` times with
    a small exponential backoff.  The ``store.http.get`` (reads: blob GET,
    index GET, listing, stat) and ``store.http.put`` (writes: blob PUT,
    index swap, delete, maintenance) fault seams fire *inside* the retry
    loop — an injected drop consumes one attempt exactly like a real lost
    response, so single-shot chaos rules heal transparently.

    Attachment is loud: construction performs a ``GET /v1/stat`` handshake
    and raises :class:`OSError` if the server is unreachable or was filled
    by a different compiler build.  Unlike the local backend, a schema
    mismatch never wipes the remote store — the server owns its data; the
    client simply refuses to use it.
    """

    kind = "http"

    #: Transport-level retry bound per request (attempt, reconnect, retry).
    RETRY_ATTEMPTS = 3
    #: Base of the exponential backoff between attempts.
    RETRY_BASE_DELAY_S = 0.02

    def __init__(self, url: str, schema: str, timeout_s: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http", "https") or not parsed.hostname:
            raise OSError(f"not a store URL: {url!r}")
        self.location = url.rstrip("/")
        self.schema = schema
        self._https = parsed.scheme == "https"
        self._host = parsed.hostname
        self._port = parsed.port or (443 if self._https else 80)
        self._prefix = parsed.path.rstrip("/")
        self._timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            factory = (
                http.client.HTTPSConnection if self._https else http.client.HTTPConnection
            )
            self._conn = factory(self._host, self._port, timeout=self._timeout_s)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            with contextlib.suppress(Exception):
                self._conn.close()
            self._conn = None

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        site: Optional[str] = None,
    ) -> Tuple[int, bytes]:
        """One store RPC: ``(status, body)``, with bounded retry.

        Raises :class:`OSError` once every attempt has failed at the
        transport level; HTTP-level error statuses are returned for the
        caller to interpret (404 is a perfectly good answer).
        """
        last_error: Optional[BaseException] = None
        for attempt in range(self.RETRY_ATTEMPTS):
            if attempt:
                time.sleep(self.RETRY_BASE_DELAY_S * (2 ** (attempt - 1)))
            rule = None
            try:
                if site is not None:
                    rule = faults.maybe_raise(site)
                    if rule is not None and rule.kind == "drop":
                        # A dropped response: the request may or may not have
                        # reached the server (idempotent either way); the
                        # connection is dead from the client's point of view.
                        self.close()
                        raise faults.InjectedOSError(f"injected dropped response at {site}")
                conn = self._connection()
                conn.request(method, self._prefix + path, body=body)
                response = conn.getresponse()
                payload = response.read()
            except (OSError, http.client.HTTPException, faults.InjectedError) as exc:
                self.close()
                last_error = exc
                continue
            if rule is not None and rule.kind == "torn":
                payload = payload[: len(payload) // 2]
            return response.status, payload
        raise OSError(
            f"store {method} {path} at {self.location} failed after "
            f"{self.RETRY_ATTEMPTS} attempts: {last_error}"
        )

    def _json(self, payload: bytes) -> Dict[str, object]:
        try:
            data = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise OSError(f"malformed response from store at {self.location}: {exc}")
        if not isinstance(data, dict):
            raise OSError(f"malformed response from store at {self.location}")
        return data

    # -- handshake -------------------------------------------------------------
    def ensure_ready(self) -> None:
        status, payload = self._request("GET", "/v1/stat")
        if status != 200:
            raise OSError(f"store endpoint {self.location} refused stat: HTTP {status}")
        meta = self._json(payload)
        if meta.get("format") != STORE_FORMAT or meta.get("schema") != self.schema:
            # Never wipe a remote store on mismatch — refuse it instead.
            raise OSError(
                f"remote store {self.location} was written by a different "
                "compiler build (schema fingerprint mismatch); refusing to attach"
            )

    # -- blobs -----------------------------------------------------------------
    def blob_get(self, digest: str) -> Optional[bytes]:
        status, payload = self._request(
            "GET", f"/v1/blob/{digest}", site="store.http.get"
        )
        if status == 404:
            return None
        if status != 200:
            raise OSError(f"blob GET {digest[:12]} failed: HTTP {status}")
        return payload

    def blob_put(self, digest: str, data: bytes) -> None:
        status, _ = self._request(
            "PUT", f"/v1/blob/{digest}", body=data, site="store.http.put"
        )
        if status not in (200, 204):
            raise OSError(f"blob PUT {digest[:12]} failed: HTTP {status}")

    def blob_delete(self, digest: str) -> None:
        status, _ = self._request(
            "DELETE", f"/v1/blob/{digest}", site="store.http.put"
        )
        if status not in (200, 204, 404):
            raise OSError(f"blob DELETE {digest[:12]} failed: HTTP {status}")

    def blob_quarantine(self, digest: str) -> None:
        status, _ = self._request(
            "DELETE", f"/v1/blob/{digest}?quarantine=1", site="store.http.put"
        )
        if status not in (200, 204, 404):
            raise OSError(f"blob quarantine {digest[:12]} failed: HTTP {status}")

    def quarantine_count(self) -> int:
        try:
            status, payload = self._request("GET", "/v1/stat", site="store.http.get")
            if status != 200:
                return 0
            return int(self._json(payload).get("quarantine", 0))  # type: ignore[arg-type]
        except (OSError, TypeError, ValueError):
            return 0

    def list_blobs(self) -> Dict[str, int]:
        status, payload = self._request("GET", "/v1/blobs", site="store.http.get")
        if status != 200:
            raise OSError(f"blob listing failed: HTTP {status}")
        listing = self._json(payload)
        blobs: Dict[str, int] = {}
        for digest, size in listing.items():
            try:
                blobs[str(digest)] = int(size)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue
        return blobs

    # -- index -----------------------------------------------------------------
    def index_read(self) -> Tuple[int, Optional[Dict[str, object]]]:
        status, payload = self._request("GET", "/v1/index", site="store.http.get")
        if status != 200:
            raise OSError(f"index GET failed: HTTP {status}")
        data = self._json(payload)
        rev = data.get("rev", 0)
        if not isinstance(rev, int) or rev < 0:
            rev = 0
        raw = data.get("entries")
        return rev, (raw if isinstance(raw, dict) else None)

    def index_swap(self, expect_rev: int, entries: Dict[str, object]) -> bool:
        body = json.dumps(
            {"expect_rev": expect_rev, "entries": entries}, sort_keys=True
        ).encode("utf-8")
        status, _ = self._request("PUT", "/v1/index", body=body, site="store.http.put")
        if status in (200, 204):
            return True
        if status == 409:
            return False
        raise OSError(f"index swap failed: HTTP {status}")

    # -- maintenance -----------------------------------------------------------
    def maintain(self, tmp_stale_s: float, quarantine_age_s: float) -> None:
        body = json.dumps(
            {"tmp_stale_s": tmp_stale_s, "quarantine_age_s": quarantine_age_s},
            sort_keys=True,
        ).encode("utf-8")
        status, _ = self._request("POST", "/v1/maintain", body=body, site="store.http.put")
        if status not in (200, 204):
            raise OSError(f"store maintenance failed: HTTP {status}")

    def wipe(self) -> None:
        status, _ = self._request("POST", "/v1/clear", site="store.http.put")
        if status not in (200, 204):
            raise OSError(f"store clear failed: HTTP {status}")

    def stat(self) -> Dict[str, object]:
        status, payload = self._request("GET", "/v1/stat", site="store.http.get")
        if status != 200:
            raise OSError(f"store stat failed: HTTP {status}")
        return self._json(payload)
