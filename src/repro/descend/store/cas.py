"""The on-disk content-addressed artifact store (CAS).

Layout under the store root::

    <root>/
        schema.json          # {"format": 1, "schema": "<pipeline fingerprint>"}
        index.json           # {"entries": {digest: {"size", "used", "kind"}}}
        lock                 # fcntl advisory lock serializing index mutations
        objects/ab/abcdef…   # one pickle blob per artifact, named by digest

Design points, in the order they matter:

* **Content addressing.**  Objects are immutable and named by the digest the
  compiler derives from the artifact's *inputs* (source hash / AST pickle +
  artifact kind), so concurrent writers of the same compilation write the
  same bytes to the same name — last rename wins, both are correct.

* **Crash/corruption safety.**  Blob and index writes go through
  ``tempfile + os.replace`` (atomic on POSIX).  Reads trust nothing:
  a truncated, corrupted, or unreadable blob is treated as a miss, never
  an error — the caller falls back to a cold compile.  Corrupt blobs are
  *quarantined* (moved to ``quarantine/`` and counted) rather than
  silently re-degrading every later lookup; a corrupted index is rebuilt
  by scanning ``objects/``.  The hot I/O seams (blob read/write/rename,
  index flock) carry named :mod:`repro.faults` injection points, so the
  chaos suite exercises these paths with real injected failures.

* **Concurrency.**  Index read-modify-write cycles hold an ``fcntl.flock``
  on ``<root>/lock``.  Blob reads take no lock (immutable names); a reader
  racing an eviction simply misses.

* **Eviction.**  The index records a last-used stamp per entry; when the
  store exceeds ``max_bytes``, least-recently-used entries are evicted
  until it fits (:meth:`ArtifactStore.gc`, also run after every write).

* **Self-invalidation.**  ``schema.json`` pins the
  :func:`~repro.descend.store.fingerprint.pipeline_fingerprint` of the
  compiler that filled the store.  Opening a store written by a different
  compiler build (or Python version, or store format) wipes it — stale
  artifacts can never leak across compiler changes.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

from repro import faults
from repro.descend.store.fingerprint import STORE_FORMAT, pipeline_fingerprint

try:  # pragma: no cover - POSIX everywhere we run; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None  # type: ignore[assignment]

#: Default size bound of a store: plenty for every Figure 8 artifact while
#: staying far below what a CI cache is willing to persist.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Pinned pickle wire protocol (participates in the schema fingerprint).
PICKLE_PROTOCOL = 4


class ArtifactStore:
    """A persistent, size-bounded, multi-process-safe artifact cache.

    The store maps hex digests to pickled compiler artifacts.  It is a pure
    cache: every operation degrades to a miss (``load`` → ``None``,
    ``store`` → ``False``) instead of raising, so a broken disk, a hostile
    blob, or a racing process can never take compilation down with it.
    """

    def __init__(
        self,
        root: os.PathLike | str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        schema: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max(0, int(max_bytes))
        self.schema = schema if schema is not None else pipeline_fingerprint()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.errors = 0
        self.quarantined = 0
        self._pending_touches: Dict[str, float] = {}
        self._touch_flushed = False
        self._ensure_layout()

    # -- layout ----------------------------------------------------------------
    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def _schema_path(self) -> Path:
        return self.root / "schema.json"

    @property
    def _tmp_dir(self) -> Path:
        # In-flight writes stage here, *outside* objects/, so gc's stray-file
        # sweep can never delete a tmp file a concurrent writer is about to
        # os.replace into place (same filesystem, so the rename stays atomic).
        return self.root / "tmp"

    @property
    def _quarantine_dir(self) -> Path:
        # Corrupt blobs are moved aside here instead of deleted: the lookup
        # path degrades exactly once per poisoned digest (no re-reading the
        # same broken pickle on every miss), and the evidence survives for
        # inspection until gc ages it out.
        return self.root / "quarantine"

    def _object_path(self, digest: str) -> Path:
        return self._objects_dir / digest[:2] / digest

    def _ensure_layout(self) -> None:
        self._objects_dir.mkdir(parents=True, exist_ok=True)
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        with self._locked():
            if not self._schema_matches():
                self._wipe_objects()
                self._write_json(self._index_path, {"entries": {}})
                self._write_json(
                    self._schema_path,
                    {"format": STORE_FORMAT, "schema": self.schema},
                )

    def _schema_matches(self) -> bool:
        try:
            with open(self._schema_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
            return (
                isinstance(meta, dict)
                and meta.get("format") == STORE_FORMAT
                and meta.get("schema") == self.schema
            )
        except (OSError, ValueError):
            return False

    def _wipe_objects(self) -> None:
        for path in self._objects_dir.rglob("*"):
            if path.is_file():
                with contextlib.suppress(OSError):
                    path.unlink()

    # -- locking & index -------------------------------------------------------
    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Hold the store's advisory lock (no-op where flock is unavailable)."""
        if fcntl is None:  # pragma: no cover
            yield
            return
        faults.maybe_raise("store.index.flock")
        lock_path = self.root / "lock"
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        """The index's entry table (pending LRU stamps applied); rebuilt
        from ``objects/`` if unreadable.

        Entries are sanitized field by field — a JSON-valid index with
        wrong-typed fields (hand edits, foreign tools) must degrade like any
        other corruption, not raise ``ValueError`` out of the numeric
        conversions downstream (eviction sorts, size sums)."""
        try:
            with open(self._index_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if not isinstance(data, dict):
                raise ValueError("index must be an object")
            raw = data["entries"]
            if not isinstance(raw, dict):
                raise ValueError("index entries must be an object")
            entries: Dict[str, Dict[str, object]] = {}
            for digest, entry in raw.items():
                if not (isinstance(digest, str) and self._is_digest(digest)):
                    continue
                if not isinstance(entry, dict):
                    continue
                try:
                    entries[digest] = {
                        "size": int(entry.get("size", 0)),
                        "used": float(entry.get("used", 0.0)),
                        "kind": str(entry.get("kind", "artifact")),
                    }
                except (TypeError, ValueError):
                    entries[digest] = {"size": 0, "used": 0.0, "kind": "artifact"}
            if not entries and raw:
                raise ValueError("no usable index entries")
        except (OSError, ValueError, KeyError):
            entries = self._rebuild_entries()
        for digest, stamp in self._pending_touches.items():
            entry = entries.get(digest)
            if entry is not None and stamp > float(entry.get("used", 0.0)):
                entry["used"] = stamp
        return entries

    def _save_index(self, entries: Dict[str, Dict[str, object]]) -> None:
        self._write_json(self._index_path, {"entries": entries})
        self._pending_touches.clear()

    @staticmethod
    def _is_digest(name: str) -> bool:
        return len(name) == 64 and all(c in "0123456789abcdef" for c in name)

    def _rebuild_entries(self) -> Dict[str, Dict[str, object]]:
        """Recover the entry table by scanning the (authoritative) blobs.

        Only digest-named files count: orphaned ``.tmp-*`` files from a
        writer killed mid-:meth:`_atomic_write` must not be adopted as
        entries (their digest would never resolve back to their path).
        """
        entries: Dict[str, Dict[str, object]] = {}
        now = time.time()
        for path in self._objects_dir.rglob("*"):
            if path.is_file() and self._is_digest(path.name):
                with contextlib.suppress(OSError):
                    entries[path.name] = {
                        "size": path.stat().st_size,
                        "used": now,
                        "kind": "artifact",
                    }
        return entries

    def _write_json(self, path: Path, payload: Dict[str, object]) -> None:
        self._atomic_write(path, json.dumps(payload, indent=1).encode("utf-8"))

    def _atomic_write(self, path: Path, data: bytes, is_blob: bool = False) -> None:
        self._tmp_dir.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(self._tmp_dir), prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            if is_blob:
                faults.maybe_raise("store.blob.rename")
            os.replace(tmp_name, path)
        except OSError:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    def _evict_over_budget(
        self, entries: Dict[str, Dict[str, object]], keep: Optional[str] = None
    ) -> None:
        """Drop least-recently-used entries until the store fits its budget."""
        total = sum(int(entry.get("size", 0)) for entry in entries.values())
        if total <= self.max_bytes:
            return
        by_age = sorted(entries, key=lambda d: float(entries[d].get("used", 0.0)))
        for digest in by_age:
            if total <= self.max_bytes:
                break
            if digest == keep:
                continue
            total -= int(entries[digest].get("size", 0))
            del entries[digest]
            with contextlib.suppress(OSError):
                self._object_path(digest).unlink()
            self.evictions += 1

    # -- public API ------------------------------------------------------------
    def load(self, digest: str) -> Optional[object]:
        """The artifact stored under ``digest``, or ``None`` on any failure."""
        path = self._object_path(digest)
        try:
            with open(path, "rb") as handle:
                rule = faults.maybe_raise("store.blob.read")
                blob = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            # The disk (or an injected fault) refused the read: a transient
            # I/O problem, not proof the blob is poisoned — miss without
            # quarantining so a healthy retry can still hit.
            self.errors += 1
            self.misses += 1
            return None
        if rule is not None and rule.kind == "torn":
            blob = blob[: len(blob) // 2]
        try:
            artifact = pickle.loads(blob)
        except Exception:
            # Truncated blob, corrupted pickle, unimportable class, … — the
            # store is a cache, so treat every failure as a miss, and move
            # the poisoned blob aside so every later lookup of this digest
            # is a plain miss (heal-on-next-write) instead of another
            # read-and-fail degradation.
            self.errors += 1
            self.misses += 1
            self._quarantine(digest)
            return None
        self.hits += 1
        self._touch(digest)
        return artifact

    def store(self, digest: str, artifact: object, kind: str = "artifact") -> bool:
        """Persist ``artifact`` under ``digest``; ``False`` on any failure."""
        try:
            blob = pickle.dumps(artifact, protocol=PICKLE_PROTOCOL)
        except Exception:
            return False  # unpicklable artifacts simply stay in-memory-only
        try:
            rule = faults.maybe_raise("store.blob.write")
            if rule is not None and rule.kind == "torn":
                # A torn write: the rename lands, but the bytes are cut
                # short — the on-disk image a crash between write and fsync
                # leaves behind.  The next load quarantines it.
                blob = blob[: len(blob) // 2]
            path = self._object_path(digest)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, blob, is_blob=True)
            with self._locked():
                entries = self._load_index()
                entries[digest] = {"size": len(blob), "used": time.time(), "kind": kind}
                self._evict_over_budget(entries, keep=digest)
                self._save_index(entries)
        except OSError:
            self.errors += 1
            return False
        self.writes += 1
        return True

    #: Batch size after which pending LRU stamps are flushed to the index.
    TOUCH_FLUSH_PENDING = 16
    #: Age after which a staging file counts as left behind by a dead writer.
    TMP_STALE_S = 3600.0

    def _touch(self, digest: str) -> None:
        """Refresh the LRU stamp of a hit.

        Stamps are batched in memory and merged into the index by every
        index write (:meth:`_load_index` applies them, :meth:`_save_index`
        clears them), so a warm process does one index rewrite on its first
        hit — which also heals a corrupted index — and then one per
        :data:`TOUCH_FLUSH_PENDING` loads, instead of one per load.
        """
        self._pending_touches[digest] = time.time()
        if not self._touch_flushed or len(self._pending_touches) >= self.TOUCH_FLUSH_PENDING:
            self._flush_touches()

    def _flush_touches(self) -> None:
        try:
            with self._locked():
                self._save_index(self._load_index())
            self._touch_flushed = True
        except OSError:  # pragma: no cover - stamp refresh is best-effort
            self.errors += 1

    def _forget(self, digest: str) -> None:
        """Drop one (broken) entry and its blob (best-effort)."""
        with contextlib.suppress(OSError):
            self._object_path(digest).unlink()
        self._drop_entry(digest)

    def _quarantine(self, digest: str) -> None:
        """Move a poisoned blob aside and drop its index entry (best-effort).

        Move-aside instead of delete: the digest becomes a plain miss (the
        degradation happens once, not on every lookup), the next write of
        the same digest heals it, and the corrupt bytes stay inspectable
        under ``quarantine/`` until :meth:`gc` ages them out.
        """
        self.quarantined += 1
        source = self._object_path(digest)
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, self._quarantine_dir / digest)
        except OSError:
            # Can't move it aside (readonly dir, cross-device, gone already):
            # fall back to deleting so the poison at least can't re-degrade.
            with contextlib.suppress(OSError):
                source.unlink()
        self._drop_entry(digest)

    def _drop_entry(self, digest: str) -> None:
        try:
            with self._locked():
                entries = self._load_index()
                if entries.pop(digest, None) is not None:
                    self._save_index(entries)
        except OSError:  # pragma: no cover
            self.errors += 1

    def quarantine_entries(self) -> int:
        """How many poisoned blobs are currently parked under ``quarantine/``."""
        try:
            return sum(1 for path in self._quarantine_dir.glob("*") if path.is_file())
        except OSError:  # pragma: no cover
            return 0

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, object]:
        """Reconcile the index with the blobs and enforce the size budget.

        Orphaned blobs (present on disk, absent from the index) are adopted,
        dangling entries (indexed, blob gone) dropped, stray files (foreign
        junk under ``objects/``, stale staging files from killed writers)
        deleted, then LRU eviction brings the store under ``max_bytes``
        (default: the store's budget).
        """
        if max_bytes is not None:
            self.max_bytes = max(0, int(max_bytes))
        with self._locked():
            for path in self._objects_dir.rglob("*"):
                if path.is_file() and not self._is_digest(path.name):
                    with contextlib.suppress(OSError):
                        path.unlink()
            # Staging files are only swept once stale: a live writer's tmp
            # file (pre-os.replace) must survive a concurrent gc.
            stale_before = time.time() - self.TMP_STALE_S
            for path in self._tmp_dir.glob("*"):
                with contextlib.suppress(OSError):
                    if path.is_file() and path.stat().st_mtime < stale_before:
                        path.unlink()
            # Quarantined blobs age out on the same schedule: kept long
            # enough to debug a corruption burst, never accumulated forever.
            if self._quarantine_dir.is_dir():
                for path in self._quarantine_dir.glob("*"):
                    with contextlib.suppress(OSError):
                        if path.is_file() and path.stat().st_mtime < stale_before:
                            path.unlink()
            entries = self._load_index()
            on_disk = self._rebuild_entries()
            for digest in list(entries):
                if digest not in on_disk:
                    del entries[digest]
            for digest, entry in on_disk.items():
                if digest not in entries:
                    entries[digest] = entry
                else:
                    entries[digest]["size"] = entry["size"]
            self._evict_over_budget(entries)
            self._save_index(entries)
            return self._summary(entries)

    def clear(self) -> None:
        """Delete every artifact (the layout and schema stay in place)."""
        with self._locked():
            self._wipe_objects()
            self._save_index({})

    def digests(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """The digests currently indexed, optionally filtered by artifact kind.

        Sorted for determinism (replay consumers iterate this).  Like every
        other read, failures degrade to "nothing found" rather than raising.
        """
        try:
            with self._locked():
                entries = self._load_index()
        except OSError:
            self.errors += 1
            return ()
        if kind is None:
            return tuple(sorted(entries))
        return tuple(
            sorted(
                digest
                for digest, entry in entries.items()
                if str(entry.get("kind", "artifact")) == kind
            )
        )

    def stats(self) -> Dict[str, object]:
        with self._locked():
            entries = self._load_index()
        summary = self._summary(entries)
        summary.update(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            evictions=self.evictions,
            errors=self.errors,
            quarantined=self.quarantined,
            quarantine_entries=self.quarantine_entries(),
        )
        return summary

    def _summary(self, entries: Dict[str, Dict[str, object]]) -> Dict[str, object]:
        kinds: Dict[str, Dict[str, int]] = {}
        for entry in entries.values():
            kind = str(entry.get("kind", "artifact"))
            bucket = kinds.setdefault(kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += int(entry.get("size", 0))
        return {
            "root": str(self.root),
            "format": STORE_FORMAT,
            "schema": self.schema[:16],
            "entries": len(entries),
            "total_bytes": sum(int(entry.get("size", 0)) for entry in entries.values()),
            "max_bytes": self.max_bytes,
            "kinds": kinds,
        }
