"""The content-addressed artifact store (CAS): policy over a pluggable backend.

The store maps hex digests to pickled compiler artifacts.  Since PR 10 the
*where* of blobs and index lives behind a :class:`~repro.descend.store.backend.StoreBackend`
(local directory or the daemon's HTTP store endpoint — see that module for
the layout and wire protocol); this class keeps the *policy*, unchanged:

* **Content addressing.**  Objects are immutable and named by the digest the
  compiler derives from the artifact's *inputs* (source hash / AST pickle +
  artifact kind), so concurrent writers of the same compilation write the
  same bytes to the same name — last write wins, both are correct.

* **Crash/corruption safety.**  Reads trust nothing: a truncated,
  corrupted, or unreadable blob is treated as a miss, never an error — the
  caller falls back to a cold compile.  Corrupt blobs are *quarantined*
  (moved aside and counted) rather than silently re-degrading every later
  lookup; a corrupted index is rebuilt by listing the (authoritative)
  blobs.  The hot I/O seams (blob read/write/rename, index flock, HTTP
  get/put) carry named :mod:`repro.faults` injection points, so the chaos
  suite exercises these paths with real injected failures.

* **Concurrency.**  Index mutations go through the backend's
  ``index_update`` — a flock-held read-modify-write on a local directory,
  a rev-guarded compare-and-swap loop against the daemon's single-writer
  HTTP endpoint.  Blob reads take no lock (immutable names); a reader
  racing an eviction simply misses.

* **Eviction.**  The index records a last-used stamp per entry; when the
  store exceeds ``max_bytes``, least-recently-used entries are evicted
  until it fits (:meth:`ArtifactStore.gc`, also run after every write).

* **Self-invalidation.**  The store pins the
  :func:`~repro.descend.store.fingerprint.pipeline_fingerprint` of the
  compiler that filled it.  Opening a *local* store written by a different
  compiler build (or Python version, or store format) wipes it; attaching
  to a mismatched *remote* store refuses loudly instead (the server owns
  its data) — either way stale artifacts can never leak across compiler
  changes.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Dict, Optional, Tuple

from repro.descend.store.backend import (
    LocalDirBackend,
    StoreBackend,
    backend_for,
    is_store_url,
)
from repro.descend.store.fingerprint import STORE_FORMAT, pipeline_fingerprint

#: Default size bound of a store: plenty for every Figure 8 artifact while
#: staying far below what a CI cache is willing to persist.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Pinned pickle wire protocol (participates in the schema fingerprint).
PICKLE_PROTOCOL = 4

#: Environment override of the quarantine age-out threshold (seconds).
ENV_QUARANTINE_S = "REPRO_STORE_QUARANTINE_S"


def default_quarantine_age_s() -> float:
    """The quarantine age-out threshold: env override or the tmp-stale default."""
    raw = os.environ.get(ENV_QUARANTINE_S)
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return ArtifactStore.TMP_STALE_S


class ArtifactStore:
    """A persistent, size-bounded, multi-process-safe artifact cache.

    It is a pure cache: every operation degrades to a miss (``load`` →
    ``None``, ``store`` → ``False``) instead of raising, so a broken disk,
    a hostile blob, or a racing process can never take compilation down
    with it.  ``root`` may be a directory path or an ``http(s)://`` URL of
    a ``descendc serve --store-http`` endpoint (see
    :meth:`ArtifactStore.open`).
    """

    def __init__(
        self,
        root: os.PathLike | str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        schema: Optional[str] = None,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self.schema = schema if schema is not None else pipeline_fingerprint()
        self.backend = backend if backend is not None else backend_for(root, self.schema)
        self.root = (
            self.backend.root
            if isinstance(self.backend, LocalDirBackend)
            else self.backend.location
        )
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.errors = 0
        self.quarantined = 0
        self._pending_touches: Dict[str, float] = {}
        self._touch_flushed = False
        self.backend.ensure_ready()

    @classmethod
    def open(
        cls,
        location: os.PathLike | str,
        max_bytes: int = DEFAULT_MAX_BYTES,
        schema: Optional[str] = None,
    ) -> "ArtifactStore":
        """Open a store by location — a directory path or an HTTP store URL."""
        return cls(location, max_bytes=max_bytes, schema=schema)

    # -- layout passthrough (tests and tools reach into local-dir stores) ------
    def _object_path(self, digest: str):
        return self.backend._object_path(digest)  # type: ignore[union-attr]

    # -- index policy ----------------------------------------------------------
    @staticmethod
    def _is_digest(name: str) -> bool:
        return len(name) == 64 and all(c in "0123456789abcdef" for c in name)

    def _sanitize_entries(
        self, raw: Optional[Dict[str, object]]
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """Field-by-field validation of a raw entry table, ``None`` if unusable.

        A JSON-valid index with wrong-typed fields (hand edits, foreign
        tools) must degrade like any other corruption, not raise
        ``ValueError`` out of the numeric conversions downstream (eviction
        sorts, size sums)."""
        if not isinstance(raw, dict):
            return None
        entries: Dict[str, Dict[str, object]] = {}
        for digest, entry in raw.items():
            if not (isinstance(digest, str) and self._is_digest(digest)):
                continue
            if not isinstance(entry, dict):
                continue
            try:
                entries[digest] = {
                    "size": int(entry.get("size", 0)),
                    "used": float(entry.get("used", 0.0)),
                    "kind": str(entry.get("kind", "artifact")),
                }
            except (TypeError, ValueError):
                entries[digest] = {"size": 0, "used": 0.0, "kind": "artifact"}
        if not entries and raw:
            return None
        return entries

    def _usable_entries(
        self, raw: Optional[Dict[str, object]]
    ) -> Dict[str, Dict[str, object]]:
        """Sanitized entries (rebuilt from blobs if unusable), pending LRU
        stamps applied."""
        entries = self._sanitize_entries(raw)
        if entries is None:
            entries = self._rebuild_entries()
        for digest, stamp in self._pending_touches.items():
            entry = entries.get(digest)
            if entry is not None and stamp > float(entry.get("used", 0.0)):
                entry["used"] = stamp
        return entries

    def _rebuild_entries(self) -> Dict[str, Dict[str, object]]:
        """Recover the entry table from the (authoritative) blob listing.

        Only digest-named blobs count: orphaned staging files from a writer
        killed mid-write must not be adopted as entries (their digest would
        never resolve back to their path) — the backend's listing already
        enforces this."""
        now = time.time()
        entries: Dict[str, Dict[str, object]] = {}
        try:
            blobs = self.backend.list_blobs()
        except OSError:
            return entries
        for digest, size in blobs.items():
            entries[digest] = {"size": int(size), "used": now, "kind": "artifact"}
        return entries

    def _read_entries(self) -> Dict[str, Dict[str, object]]:
        _, raw = self.backend.index_read()
        return self._usable_entries(raw)

    def _evict_over_budget(
        self, entries: Dict[str, Dict[str, object]], keep: Optional[str] = None
    ) -> None:
        """Drop least-recently-used entries until the store fits its budget."""
        total = sum(int(entry.get("size", 0)) for entry in entries.values())
        if total <= self.max_bytes:
            return
        by_age = sorted(entries, key=lambda d: float(entries[d].get("used", 0.0)))
        for digest in by_age:
            if total <= self.max_bytes:
                break
            if digest == keep:
                continue
            total -= int(entries[digest].get("size", 0))
            del entries[digest]
            try:
                self.backend.blob_delete(digest)
            except OSError:  # pragma: no cover - eviction is best-effort
                pass
            self.evictions += 1

    # -- public API ------------------------------------------------------------
    def load(self, digest: str) -> Optional[object]:
        """The artifact stored under ``digest``, or ``None`` on any failure."""
        try:
            blob = self.backend.blob_get(digest)
        except OSError:
            # The disk, the network, or an injected fault refused the read:
            # a transient I/O problem, not proof the blob is poisoned — miss
            # without quarantining so a healthy retry can still hit.
            self.errors += 1
            self.misses += 1
            return None
        if blob is None:
            self.misses += 1
            return None
        try:
            artifact = pickle.loads(blob)
        except Exception:
            # Truncated blob, corrupted pickle, unimportable class, … — the
            # store is a cache, so treat every failure as a miss, and move
            # the poisoned blob aside so every later lookup of this digest
            # is a plain miss (heal-on-next-write) instead of another
            # read-and-fail degradation.
            self.errors += 1
            self.misses += 1
            self._quarantine(digest)
            return None
        self.hits += 1
        self._touch(digest)
        return artifact

    def store(self, digest: str, artifact: object, kind: str = "artifact") -> bool:
        """Persist ``artifact`` under ``digest``; ``False`` on any failure."""
        try:
            blob = pickle.dumps(artifact, protocol=PICKLE_PROTOCOL)
        except Exception:
            return False  # unpicklable artifacts simply stay in-memory-only
        stamp = time.time()

        def add_entry(raw: Optional[Dict[str, object]]) -> Dict[str, Dict[str, object]]:
            entries = self._usable_entries(raw)
            entries[digest] = {"size": len(blob), "used": stamp, "kind": kind}
            self._evict_over_budget(entries, keep=digest)
            return entries

        try:
            self.backend.blob_put(digest, blob)
            self.backend.index_update(add_entry)
        except OSError:
            self.errors += 1
            return False
        self._pending_touches.clear()
        self.writes += 1
        return True

    #: Batch size after which pending LRU stamps are flushed to the index.
    TOUCH_FLUSH_PENDING = 16
    #: Age after which a staging file counts as left behind by a dead writer.
    TMP_STALE_S = 3600.0

    def _touch(self, digest: str) -> None:
        """Refresh the LRU stamp of a hit.

        Stamps are batched in memory and merged into the index by every
        index write (:meth:`_usable_entries` applies them, a successful
        update clears them), so a warm process does one index rewrite on
        its first hit — which also heals a corrupted index — and then one
        per :data:`TOUCH_FLUSH_PENDING` loads, instead of one per load.
        """
        self._pending_touches[digest] = time.time()
        if not self._touch_flushed or len(self._pending_touches) >= self.TOUCH_FLUSH_PENDING:
            self._flush_touches()

    def _flush_touches(self) -> None:
        try:
            self.backend.index_update(self._usable_entries)
        except OSError:
            self.errors += 1
            return
        self._pending_touches.clear()
        self._touch_flushed = True

    def _forget(self, digest: str) -> None:
        """Drop one (broken) entry and its blob (best-effort)."""
        try:
            self.backend.blob_delete(digest)
        except OSError:
            pass
        self._drop_entry(digest)

    def _quarantine(self, digest: str) -> None:
        """Move a poisoned blob aside and drop its index entry (best-effort).

        Move-aside instead of delete: the digest becomes a plain miss (the
        degradation happens once, not on every lookup), the next write of
        the same digest heals it, and the corrupt bytes stay inspectable
        under the backend's quarantine until :meth:`gc` ages them out.
        """
        self.quarantined += 1
        try:
            self.backend.blob_quarantine(digest)
        except OSError:
            pass
        self._drop_entry(digest)

    def _drop_entry(self, digest: str) -> None:
        def remove(raw: Optional[Dict[str, object]]) -> Dict[str, Dict[str, object]]:
            entries = self._usable_entries(raw)
            entries.pop(digest, None)
            return entries

        try:
            self.backend.index_update(remove)
        except OSError:  # pragma: no cover
            self.errors += 1
            return
        self._pending_touches.clear()

    def quarantine_entries(self) -> int:
        """How many poisoned blobs are currently parked in quarantine."""
        return self.backend.quarantine_count()

    def gc(
        self,
        max_bytes: Optional[int] = None,
        quarantine_age_s: Optional[float] = None,
    ) -> Dict[str, object]:
        """Reconcile the index with the blobs and enforce the size budget.

        Orphaned blobs (present in the backend, absent from the index) are
        adopted, dangling entries (indexed, blob gone) dropped, stray files
        (foreign junk, stale staging files from killed writers) deleted,
        quarantined blobs older than ``quarantine_age_s`` (default:
        :data:`ENV_QUARANTINE_S` or :data:`TMP_STALE_S`) removed, then LRU
        eviction brings the store under ``max_bytes`` (default: the store's
        budget).
        """
        if max_bytes is not None:
            self.max_bytes = max(0, int(max_bytes))
        if quarantine_age_s is None:
            quarantine_age_s = default_quarantine_age_s()
        self.backend.maintain(self.TMP_STALE_S, max(0.0, float(quarantine_age_s)))

        def reconcile(raw: Optional[Dict[str, object]]) -> Dict[str, Dict[str, object]]:
            entries = self._usable_entries(raw)
            on_disk = self._rebuild_entries()
            for digest in list(entries):
                if digest not in on_disk:
                    del entries[digest]
            for digest, entry in on_disk.items():
                if digest not in entries:
                    entries[digest] = entry
                else:
                    entries[digest]["size"] = entry["size"]
            self._evict_over_budget(entries)
            return entries

        entries = self.backend.index_update(reconcile)
        self._pending_touches.clear()
        return self._summary(entries)

    def clear(self) -> None:
        """Delete every artifact (the layout and schema stay in place)."""
        self.backend.wipe()
        self.backend.index_update(lambda raw: {})
        self._pending_touches.clear()

    def digests(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """The digests currently indexed, optionally filtered by artifact kind.

        Sorted for determinism (replay consumers iterate this).  Like every
        other read, failures degrade to "nothing found" rather than raising.
        """
        try:
            entries = self._read_entries()
        except OSError:
            self.errors += 1
            return ()
        if kind is None:
            return tuple(sorted(entries))
        return tuple(
            sorted(
                digest
                for digest, entry in entries.items()
                if str(entry.get("kind", "artifact")) == kind
            )
        )

    def stats(self) -> Dict[str, object]:
        entries = self._read_entries()
        summary = self._summary(entries)
        summary.update(
            hits=self.hits,
            misses=self.misses,
            writes=self.writes,
            evictions=self.evictions,
            errors=self.errors,
            quarantined=self.quarantined,
            quarantine_entries=self.quarantine_entries(),
        )
        return summary

    def _summary(self, entries: Dict[str, Dict[str, object]]) -> Dict[str, object]:
        kinds: Dict[str, Dict[str, int]] = {}
        for entry in entries.values():
            kind = str(entry.get("kind", "artifact"))
            bucket = kinds.setdefault(kind, {"count": 0, "bytes": 0})
            bucket["count"] += 1
            bucket["bytes"] += int(entry.get("size", 0))
        return {
            "root": str(self.root),
            "backend": self.backend.kind,
            "format": STORE_FORMAT,
            "schema": self.schema[:16],
            "entries": len(entries),
            "total_bytes": sum(int(entry.get("size", 0)) for entry in entries.values()),
            "max_bytes": self.max_bytes,
            "kinds": kinds,
        }


__all__ = [
    "ArtifactStore",
    "DEFAULT_MAX_BYTES",
    "PICKLE_PROTOCOL",
    "ENV_QUARANTINE_S",
    "default_quarantine_age_s",
    "is_store_url",
]
