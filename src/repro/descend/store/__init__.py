"""Persistent content-addressed artifact store for the compiler driver.

PR 3's :class:`~repro.descend.driver.CompileSession` made repeated compiles
~1000× faster *within* a process; this package makes the cache survive the
process.  A :class:`~repro.descend.store.cas.ArtifactStore` is attached to a
session (``session.attach_store(store)``); the driver then reads through it
(memory → store → compute) and writes every freshly computed artifact back,
so the next CLI invocation, benchsuite shard, or CI job starts warm.

See :mod:`repro.descend.store.cas` for the on-disk format and concurrency
story, and :mod:`repro.descend.store.fingerprint` for the self-invalidating
schema versioning.
"""

from repro.descend.store.backend import (
    HttpBackend,
    LocalDirBackend,
    StoreBackend,
    is_store_url,
)
from repro.descend.store.cas import (
    DEFAULT_MAX_BYTES,
    ENV_QUARANTINE_S,
    PICKLE_PROTOCOL,
    ArtifactStore,
    default_quarantine_age_s,
)
from repro.descend.store.fingerprint import STORE_FORMAT, pipeline_fingerprint

__all__ = [
    "ArtifactStore",
    "StoreBackend",
    "LocalDirBackend",
    "HttpBackend",
    "is_store_url",
    "DEFAULT_MAX_BYTES",
    "ENV_QUARANTINE_S",
    "PICKLE_PROTOCOL",
    "STORE_FORMAT",
    "default_quarantine_age_s",
    "pipeline_fingerprint",
]
