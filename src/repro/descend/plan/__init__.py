"""The device-plan subsystem: lower → optimize → execute, as data.

A GPU Descend function is *compiled once* into a
:class:`~repro.descend.plan.ir.DevicePlan` — a flat program of frozen
dataclass ops over an explicit slot table — and the plan is executed once
per launch against the grid-wide
:class:`~repro.gpusim.engine.vectorized.VecCtx` of the vectorized engine.

The three stages:

* :mod:`repro.descend.plan.lower` — AST → plan IR (no callables, no
  optimization); raises :class:`PlanUnsupported` for constructs that need
  the reference engine (``sync`` under divergence),
* :mod:`repro.descend.plan.optimize` — the ``lower.plan.opt`` pass pipeline
  (constant folding of closed nats, adjacent-arith fusion, dead-slot
  elimination),
* :mod:`repro.descend.plan.execute` — the IR interpreter with exact
  cycle/race parity to the per-thread reference interpreter.

A fourth, optional stage — :mod:`repro.descend.plan.codegen`, the
``lower.plan.codegen`` pass — compiles the optimized IR further into a
straight-line Python source function (:class:`PlanSource`, the ``jit``
engine's input) with the interpreter kept as the parity oracle; helpers for
the generated code live in :mod:`repro.descend.plan.runtime`.

Because plans are plain data they pickle: the persistent artifact store
keeps them as first-class ``plan`` artifacts, warm CLI invocations and
sweep workers deserialize instead of re-lowering, and ``repro.cli plan``
disassembles them (:func:`~repro.descend.plan.ir.disassemble`).

Caching lives one layer up, in
:class:`~repro.descend.driver.CompileSession` (content-hash keyed, with
the persistent store underneath); this package is purely functional.
"""

from __future__ import annotations

from repro.descend.plan.codegen import (
    CodegenUnsupported,
    PlanSource,
    generate_plan_source,
)
from repro.descend.plan.ir import DevicePlan, disassemble
from repro.descend.plan.lower import PlanUnsupported, compile_device_plan, lower_device_plan
from repro.descend.plan.optimize import PASSES, optimize_plan

__all__ = [
    "CodegenUnsupported",
    "DevicePlan",
    "PlanSource",
    "PlanUnsupported",
    "PASSES",
    "compile_device_plan",
    "disassemble",
    "generate_plan_source",
    "lower_device_plan",
    "optimize_plan",
]
