"""IR passes over device plans (stage two of the plan pipeline).

Three simple, parity-preserving rewrites, run by the compiler driver as the
``lower.plan.opt`` pass (visible in ``--timings`` next to ``lower.plan``):

``fold-nats``
    Constant-fold every closed nat operand (``NatOp`` results, nat indices,
    loop bounds, split positions, view arguments): a nat with no free
    variables evaluates once here instead of per launch (or per loop
    iteration) in the executor.  Nat evaluation records no cost, so folding
    cannot change cycle counts.

``fuse-arith``
    Fuse an arith op into its single arith consumer within the same op
    sequence (one interpreter dispatch and one batched ``ctx.arith(2)``
    instead of two).  Arithmetic cost is a pure per-lane counter under the
    current mask — and the mask is constant within a sequence — so the fused
    accounting is exactly the unfused accounting.

``dead-slots``
    Delete pure ops (constants, nat evaluations, comparisons, logic) whose
    result slot is never read, then compact the slot table.  Ops with
    effects (loads, stores, allocs, arith — they feed the cost model or the
    race detector) are never touched.

Every pass is a pure function ``plan -> (plan, change_count)`` over the
frozen dataclasses; nothing here mutates, so optimized and unoptimized
plans coexist (the ``repro.cli plan --no-opt`` disassembly).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple

from repro.descend.ast.views import ViewRef
from repro.descend.nat import Nat, NatConst, NatError, evaluate_nat
from repro.descend.plan.ir import (
    AllocOp,
    ArithOp,
    BorrowOp,
    CompareOp,
    ConstOp,
    DevicePlan,
    ForEachOp,
    ForNatOp,
    FusedArithOp,
    IfOp,
    LogicOp,
    NatIdxStep,
    NatOp,
    NegOp,
    NotOp,
    PURE_OPS,
    PlaceIR,
    PlanOp,
    ReadOp,
    SchedOp,
    SlotIdxStep,
    SplitOp,
    StoreOp,
    ViewStep,
)

# ---------------------------------------------------------------------------
# Generic walkers
# ---------------------------------------------------------------------------


def _place_reads(place: PlaceIR) -> List[int]:
    slots = [place.root]
    slots.extend(step.slot for step in place.steps if isinstance(step, SlotIdxStep))
    return slots


def _op_reads(op: PlanOp) -> List[int]:
    """Slots this single op reads (bodies of structured ops not included)."""
    if isinstance(op, (ArithOp, CompareOp, LogicOp)):
        return [op.lhs, op.rhs]
    if isinstance(op, FusedArithOp):
        return [op.inner_lhs, op.inner_rhs, op.other]
    if isinstance(op, (NegOp, NotOp)):
        return [op.operand]
    if isinstance(op, (ReadOp, BorrowOp)):
        return _place_reads(op.place)
    if isinstance(op, StoreOp):
        return [op.value] + _place_reads(op.place)
    if isinstance(op, IfOp):
        return [op.cond]
    if isinstance(op, ForEachOp):
        return [op.collection]
    return []


def _op_bodies(op: PlanOp) -> List[Tuple[PlanOp, ...]]:
    if isinstance(op, IfOp):
        return [op.then_ops] + ([op.else_ops] if op.else_ops is not None else [])
    if isinstance(op, (ForNatOp, ForEachOp, SchedOp)):
        return [op.body]
    if isinstance(op, SplitOp):
        return [op.first, op.second]
    return []


def _walk(ops: Tuple[PlanOp, ...]):
    for op in ops:
        yield op
        for body in _op_bodies(op):
            yield from _walk(body)


def _read_counts(ops: Tuple[PlanOp, ...]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for op in _walk(ops):
        for slot in _op_reads(op):
            counts[slot] = counts.get(slot, 0) + 1
    return counts


def _map_bodies(op: PlanOp, fn) -> PlanOp:
    """Rebuild a structured op with every body sequence passed through ``fn``."""
    if isinstance(op, IfOp):
        return replace(
            op,
            then_ops=fn(op.then_ops),
            else_ops=fn(op.else_ops) if op.else_ops is not None else None,
        )
    if isinstance(op, (ForNatOp, ForEachOp, SchedOp)):
        return replace(op, body=fn(op.body))
    if isinstance(op, SplitOp):
        return replace(op, first=fn(op.first), second=fn(op.second))
    return op


# ---------------------------------------------------------------------------
# Pass 1: constant folding of Nat-resolved bounds
# ---------------------------------------------------------------------------


class _Counter:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


def _fold_nat(nat: Nat, counter: _Counter) -> Nat:
    if isinstance(nat, NatConst) or nat.free_vars():
        return nat
    try:
        folded = NatConst(int(evaluate_nat(nat, {})))
    except NatError:
        return nat
    counter.value += 1
    return folded


def _fold_ref(ref: ViewRef, counter: _Counter) -> ViewRef:
    nat_args = tuple(_fold_nat(nat, counter) for nat in ref.nat_args)
    view_args = tuple(_fold_ref(arg, counter) for arg in ref.view_args)
    if nat_args == ref.nat_args and view_args == ref.view_args:
        return ref
    return ViewRef(ref.name, nat_args, view_args)


def _fold_place(place: PlaceIR, counter: _Counter) -> PlaceIR:
    steps = tuple(
        NatIdxStep(_fold_nat(step.nat, counter))
        if isinstance(step, NatIdxStep)
        else ViewStep(_fold_ref(step.ref, counter))
        if isinstance(step, ViewStep)
        else step
        for step in place.steps
    )
    return place if steps == place.steps else replace(place, steps=steps)


def _fold_op(op: PlanOp, counter: _Counter) -> PlanOp:
    if isinstance(op, NatOp):
        if isinstance(op.nat, NatConst):
            counter.value += 1
            return ConstOp(op.out, op.nat.value)
        folded = _fold_nat(op.nat, counter)
        if isinstance(folded, NatConst):
            return ConstOp(op.out, folded.value)
        return op
    if isinstance(op, (ReadOp, BorrowOp)):
        return replace(op, place=_fold_place(op.place, counter))
    if isinstance(op, StoreOp):
        return replace(op, place=_fold_place(op.place, counter))
    if isinstance(op, ForNatOp):
        return replace(op, lo=_fold_nat(op.lo, counter), hi=_fold_nat(op.hi, counter))
    if isinstance(op, SplitOp):
        return replace(op, pos=_fold_nat(op.pos, counter))
    return op


def fold_nats(plan: DevicePlan) -> Tuple[DevicePlan, int]:
    """Evaluate every closed nat operand once, at compile time."""
    counter = _Counter()

    def fold_seq(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        return tuple(_map_bodies(_fold_op(op, counter), fold_seq) for op in ops)

    return replace(plan, body=fold_seq(plan.body)), counter.value


# ---------------------------------------------------------------------------
# Pass 2: adjacent-arith fusion
# ---------------------------------------------------------------------------

#: Ops an arith chain may be fused across: expression ops with no arith cost
#: of their own and no control-flow/mask effects.  (Loads are fine — the
#: arithmetic counter is order-independent of memory accesses.)
_FUSE_ACROSS = (ConstOp, NatOp, ReadOp, BorrowOp, CompareOp, LogicOp, NotOp)
#: How far ahead of a producer the single consumer may sit.
_FUSE_WINDOW = 8


def fuse_arith(plan: DevicePlan) -> Tuple[DevicePlan, int]:
    """Fuse arith producers into their single arith consumer."""
    counts = _read_counts(plan.body)
    counter = _Counter()

    def fuse_seq(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        work = [_map_bodies(op, fuse_seq) for op in ops]
        out: List[PlanOp] = []
        index = 0
        while index < len(work):
            op = work[index]
            fused: Optional[Tuple[int, FusedArithOp]] = None
            if isinstance(op, ArithOp) and counts.get(op.out, 0) == 1:
                limit = min(index + 1 + _FUSE_WINDOW, len(work))
                for ahead in range(index + 1, limit):
                    nxt = work[ahead]
                    if isinstance(nxt, ArithOp) and op.out in (nxt.lhs, nxt.rhs):
                        if nxt.lhs != nxt.rhs:
                            inner_is_lhs = nxt.lhs == op.out
                            fused = (
                                ahead,
                                FusedArithOp(
                                    out=nxt.out,
                                    inner_op=op.op,
                                    inner_lhs=op.lhs,
                                    inner_rhs=op.rhs,
                                    outer_op=nxt.op,
                                    other=nxt.rhs if inner_is_lhs else nxt.lhs,
                                    inner_is_lhs=inner_is_lhs,
                                ),
                            )
                        break
                    if not isinstance(nxt, _FUSE_ACROSS) or op.out in _op_reads(nxt):
                        break
            if fused is None:
                out.append(op)
                index += 1
            else:
                ahead, fused_op = fused
                out.extend(work[index + 1 : ahead])
                out.append(fused_op)
                counter.value += 1
                index = ahead + 1
        return tuple(out)

    return replace(plan, body=fuse_seq(plan.body)), counter.value


# ---------------------------------------------------------------------------
# Pass 3: dead-slot elimination + slot-table compaction
# ---------------------------------------------------------------------------


def _remap_place(place: PlaceIR, mapping: Dict[int, int]) -> PlaceIR:
    steps = tuple(
        SlotIdxStep(mapping[step.slot]) if isinstance(step, SlotIdxStep) else step
        for step in place.steps
    )
    return replace(place, root=mapping[place.root], steps=steps)


def _remap_op(op: PlanOp, mapping: Dict[int, int]) -> PlanOp:
    if isinstance(op, (ConstOp, NatOp, AllocOp)):
        return replace(op, out=mapping[op.out])
    if isinstance(op, (ArithOp, CompareOp, LogicOp)):
        return replace(op, out=mapping[op.out], lhs=mapping[op.lhs], rhs=mapping[op.rhs])
    if isinstance(op, FusedArithOp):
        return replace(
            op,
            out=mapping[op.out],
            inner_lhs=mapping[op.inner_lhs],
            inner_rhs=mapping[op.inner_rhs],
            other=mapping[op.other],
        )
    if isinstance(op, (NegOp, NotOp)):
        return replace(op, out=mapping[op.out], operand=mapping[op.operand])
    if isinstance(op, (ReadOp, BorrowOp)):
        return replace(op, out=mapping[op.out], place=_remap_place(op.place, mapping))
    if isinstance(op, StoreOp):
        return replace(op, value=mapping[op.value], place=_remap_place(op.place, mapping))
    if isinstance(op, IfOp):
        return replace(op, cond=mapping[op.cond])
    if isinstance(op, ForEachOp):
        return replace(op, var=mapping[op.var], collection=mapping[op.collection])
    return op


def _op_writes(op: PlanOp) -> List[int]:
    out = getattr(op, "out", None)
    if out is not None:
        return [out]
    if isinstance(op, ForEachOp):
        return [op.var]
    return []


def eliminate_dead_slots(plan: DevicePlan) -> Tuple[DevicePlan, int]:
    """Drop pure ops with unread results, then compact the slot table."""
    counter = _Counter()
    body = plan.body
    while True:
        reads = set(_read_counts(body))

        def sweep(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
            kept = []
            for op in ops:
                if isinstance(op, PURE_OPS) and op.out not in reads:
                    counter.value += 1
                    continue
                kept.append(_map_bodies(op, sweep))
            return tuple(kept)

        swept = sweep(body)
        if swept == body:
            break
        body = swept

    # Compaction: parameters keep their slots (the executor binds launch
    # arguments by index), every other referenced slot is renumbered densely.
    referenced: Set[int] = set(range(len(plan.params)))
    for op in _walk(body):
        referenced.update(_op_reads(op))
        referenced.update(_op_writes(op))
    mapping = {old: new for new, old in enumerate(sorted(referenced))}

    def remap_seq(ops: Tuple[PlanOp, ...]) -> Tuple[PlanOp, ...]:
        return tuple(_map_bodies(_remap_op(op, mapping), remap_seq) for op in ops)

    slot_names = tuple(plan.slot_names[old] for old in sorted(referenced))
    return (
        replace(plan, body=remap_seq(body), slot_names=slot_names),
        counter.value + (plan.n_slots - len(slot_names)),
    )


# ---------------------------------------------------------------------------
# The pipeline
# ---------------------------------------------------------------------------

#: The pass pipeline, in application order (name, pass function).
PASSES = (
    ("fold-nats", fold_nats),
    ("fuse-arith", fuse_arith),
    ("dead-slots", eliminate_dead_slots),
)


def optimize_plan(plan: DevicePlan) -> Tuple[DevicePlan, str]:
    """Run the full pass pipeline; returns the plan and a change summary.

    The summary string (e.g. ``"fold-nats:4 fuse-arith:1 dead-slots:6"``)
    lands in the ``lower.plan.opt`` pass timing's detail field.
    """
    details = []
    for name, pass_fn in PASSES:
        plan, changed = pass_fn(plan)
        details.append(f"{name}:{changed}")
    return plan, " ".join(details)
