"""Executing plan IR against the vectorized engine's :class:`VecCtx`.

Stage three of the device-plan pipeline: a small register-machine
interpreter over the frozen op dataclasses of :mod:`repro.descend.plan.ir`.
One :class:`ExecState` per launch holds the slot register file (one Python
value per slot — uniform scalars, per-thread numpy arrays, or
:class:`~repro.descend.interp.values.MemValue` regions), the active lane
mask, the nat environment and the ``sched``/``split`` window bookkeeping.

Parity with the per-thread reference interpreter is exact by construction —
the invariants are the same ones the closure compiler this package replaced
relied on:

* each thread performs the same accesses in the same per-thread order, so
  the ``(block, warp, slot)`` coalescing groups and the barrier epochs seen
  by the race detector are identical;
* masked-out lanes do not advance their slot counters, do not count
  arithmetic, and record no accesses — exactly like threads that skip a
  branch in the reference engine;
* ``sync`` only ever executes with the full grid active (the lowering
  rejects divergent barriers), so one :meth:`VecCtx.sync` equals one
  barrier per block.

The dispatch table maps op classes to handler functions; per-op overhead is
amortized over whole-grid numpy operations, which is what makes the plan
backend fast in the first place.
"""

from __future__ import annotations

import operator
from functools import lru_cache
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.descend.ast.dims import DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.interp.values import MemValue, Value, numpy_dtype, static_shape
from repro.descend.nat import Nat, evaluate_nat
from repro.descend.plan.ir import (
    AllocOp,
    ArithOp,
    BorrowOp,
    CompareOp,
    ConstOp,
    DevicePlan,
    ForEachOp,
    ForNatOp,
    FusedArithOp,
    IfOp,
    LogicOp,
    NatIdxStep,
    NatOp,
    NegOp,
    NotOp,
    PlaceIR,
    ProjStep,
    ReadOp,
    SchedOp,
    SelectStep,
    SplitOp,
    StoreOp,
    SyncOp,
    ViewStep,
)
from repro.descend.views.indexing import BoundView, LogicalArray, LogicalPair
from repro.descend.views.registry import resolve_view
from repro.errors import DescendRuntimeError
from repro.gpusim.engine.vectorized import VecCtx


@lru_cache(maxsize=512)
def _resolved_view(ref):
    """Registry resolution of a view reference, memoized across launches.

    The IR stores the syntactic :class:`~repro.descend.ast.views.ViewRef`
    (plain data, serializable); the registry lookup happens here, once per
    distinct reference per process.
    """
    return resolve_view(ref)


class ElementSlot:
    """A batch of fully indexed elements: one offset per thread of the grid."""

    __slots__ = ("buffer", "offsets")

    def __init__(self, buffer, offsets) -> None:
        self.buffer = buffer
        self.offsets = offsets


class LocalTarget:
    """Marker for a plain scalar slot used as an assignment target."""

    __slots__ = ("slot",)

    def __init__(self, slot: int) -> None:
        self.slot = slot


class ExecState:
    """Mutable launch state threaded through the plan interpreter.

    Everything here is *uniform* over the grid (nat bindings, view windows,
    scheduling bookkeeping) or *batched* (slots holding per-thread arrays,
    the active-lane mask, the execution coordinates).
    """

    def __init__(
        self,
        ctx: VecCtx,
        level: GpuGridLevel,
        nat_env: Dict[str, int],
        n_slots: int,
    ) -> None:
        self.ctx = ctx
        self.nat_env = dict(nat_env)
        self.slots: list = [None] * n_slots
        self.exec_coords: Dict[str, Tuple[object, ...]] = {}
        self.mask: Optional[np.ndarray] = None

        self.block_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.blocks.entries
        }
        self.thread_window = {
            name: [0, int(evaluate_nat(size, self.nat_env))]
            for name, size in level.threads.entries
        }
        self.pending_blocks = set(self.block_window)
        self.pending_threads = set(self.thread_window)

    # -- helpers ---------------------------------------------------------------
    def nat_value(self, nat: Nat) -> int:
        return int(evaluate_nat(nat, self.nat_env))

    def raw_index(self, dim: DimName, over_blocks: bool) -> np.ndarray:
        source = self.ctx.blockIdx if over_blocks else self.ctx.threadIdx
        return {DimName.X: source.x, DimName.Y: source.y, DimName.Z: source.z}[dim]

    def load(self, slot: ElementSlot):
        return self.ctx.load(slot.buffer, slot.offsets, where=self.mask)

    def store(self, slot: ElementSlot, value) -> None:
        self.ctx.store(slot.buffer, slot.offsets, value, where=self.mask)

    def arith(self, count: int = 1) -> None:
        self.ctx.arith(count, where=self.mask)


# ---------------------------------------------------------------------------
# Value helpers (shared with the reference semantics)
# ---------------------------------------------------------------------------


def _as_int_index(value):
    """Mirror the reference interpreter's ``int(...)`` on expression indices."""
    if isinstance(value, np.ndarray):
        return value.astype(np.int64, copy=False)
    return int(value)


def _is_integer(value) -> bool:
    if isinstance(value, np.ndarray):
        return value.dtype.kind in "iu"
    return isinstance(value, (int, np.integer)) and not isinstance(value, bool)


def _logical_not(value):
    if isinstance(value, np.ndarray):
        return np.logical_not(value)
    return not value


def _div(lhs, rhs):
    if _is_integer(lhs) and _is_integer(rhs):
        return lhs // rhs
    return lhs / rhs


#: Arith dispatch as a table: the interpreter hot loop looks the operator up
#: once per op instead of walking a string-compare chain per evaluation.
_ARITH_FUNCS = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _div,
    "%": operator.mod,
}


def _apply_arith(op: str, lhs, rhs):
    return _ARITH_FUNCS[op](lhs, rhs)


_COMPARISONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _merge_masked(mask: Optional[np.ndarray], new, old):
    """Merge an assignment under a mask (inactive lanes keep their value)."""
    if mask is None:
        return new
    return np.where(mask, new, old)


# ---------------------------------------------------------------------------
# Place evaluation
# ---------------------------------------------------------------------------


def _eval_place(place: PlaceIR, state: ExecState) -> Union[ElementSlot, LocalTarget, MemValue]:
    value = state.slots[place.root]
    if value is None:
        raise DescendRuntimeError(f"unbound variable `{place.root_name}` at runtime")
    if not isinstance(value, MemValue):
        if not place.steps:
            return LocalTarget(place.root)
        raise DescendRuntimeError(
            f"`{place.root_name}` is a scalar and cannot be indexed or viewed"
        )

    current: Union[LogicalArray, LogicalPair] = value.logical
    buffer = value.buffer
    for step in place.steps:
        if isinstance(step, ViewStep):
            if isinstance(current, LogicalPair):
                raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
            current = current.apply_view(BoundView(_resolved_view(step.ref), state.nat_value))
            continue
        if isinstance(step, ProjStep):
            if isinstance(current, LogicalPair):
                current = current.project(step.index)
                continue
            raise DescendRuntimeError("tuple projections on runtime tuples are not supported")
        if isinstance(current, LogicalPair):
            raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
        if isinstance(step, SelectStep):
            coords = state.exec_coords.get(step.exec_var)
            if coords is None:
                raise DescendRuntimeError(
                    f"`{step.exec_var}` is not a scheduled execution resource"
                )
            current = current.select(coords)
            continue
        if isinstance(step, NatIdxStep):
            current = current.index(state.nat_value(step.nat))
            continue
        # SlotIdxStep: the index ops ran earlier in the surrounding sequence.
        current = current.index(_as_int_index(state.slots[step.slot]))

    if isinstance(current, LogicalPair):
        raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
    if current.is_scalar():
        return ElementSlot(buffer=buffer, offsets=current.flat_offset(()))
    return MemValue(buffer=buffer, logical=current, uniq=value.uniq)


# ---------------------------------------------------------------------------
# Op handlers
# ---------------------------------------------------------------------------


def _run_const(op: ConstOp, state: ExecState) -> None:
    state.slots[op.out] = op.value


def _run_nat(op: NatOp, state: ExecState) -> None:
    state.slots[op.out] = state.nat_value(op.nat)


def _run_read(op: ReadOp, state: ExecState) -> None:
    target = _eval_place(op.place, state)
    if isinstance(target, ElementSlot):
        state.slots[op.out] = state.load(target)
    elif isinstance(target, LocalTarget):
        state.slots[op.out] = state.slots[target.slot]
    else:
        state.slots[op.out] = target


def _run_borrow(op: BorrowOp, state: ExecState) -> None:
    target = _eval_place(op.place, state)
    if isinstance(target, ElementSlot):
        raise DescendRuntimeError("cannot borrow a single element at runtime")
    if isinstance(target, LocalTarget):
        raise DescendRuntimeError("cannot borrow a scalar local at runtime")
    state.slots[op.out] = target


def _run_alloc(op: AllocOp, state: ExecState) -> None:
    shape = static_shape(op.ty, state.nat_env) or (1,)
    dtype = numpy_dtype(op.ty)
    if op.space == "gpu.shared":
        # Stable per-site pool key: re-evaluating the same alloc (a loop
        # body) reuses the one per-block buffer, like the reference engine.
        buffer = state.ctx.shared(f"plan_shared_{op.alloc_id}", shape, dtype=dtype)
    else:
        buffer = state.ctx.local(shape, dtype=dtype)
    state.slots[op.out] = MemValue(buffer=buffer, logical=LogicalArray.root(tuple(buffer.shape)))


def _run_arith(op: ArithOp, state: ExecState) -> None:
    lhs = state.slots[op.lhs]
    rhs = state.slots[op.rhs]
    state.arith(1)
    state.slots[op.out] = _ARITH_FUNCS[op.op](lhs, rhs)


def _run_fused_arith(op: FusedArithOp, state: ExecState) -> None:
    # Two per-lane arith counts under one mask == two separate counts under
    # the same mask: the cost model only sums, so fusing is parity-exact.
    state.arith(2)
    funcs = _ARITH_FUNCS
    inner = funcs[op.inner_op](state.slots[op.inner_lhs], state.slots[op.inner_rhs])
    other = state.slots[op.other]
    if op.inner_is_lhs:
        state.slots[op.out] = funcs[op.outer_op](inner, other)
    else:
        state.slots[op.out] = funcs[op.outer_op](other, inner)


def _run_compare(op: CompareOp, state: ExecState) -> None:
    state.slots[op.out] = _COMPARISONS[op.op](state.slots[op.lhs], state.slots[op.rhs])


def _run_logic(op: LogicOp, state: ExecState) -> None:
    lhs = state.slots[op.lhs]
    rhs = state.slots[op.rhs]
    if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
        state.slots[op.out] = (
            np.logical_and(lhs, rhs) if op.op == "&&" else np.logical_or(lhs, rhs)
        )
    else:
        state.slots[op.out] = (
            (bool(lhs) and bool(rhs)) if op.op == "&&" else (bool(lhs) or bool(rhs))
        )


def _run_neg(op: NegOp, state: ExecState) -> None:
    operand = state.slots[op.operand]
    state.arith(1)
    state.slots[op.out] = -operand


def _run_not(op: NotOp, state: ExecState) -> None:
    state.slots[op.out] = _logical_not(state.slots[op.operand])


def _run_store(op: StoreOp, state: ExecState) -> None:
    value = state.slots[op.value]
    target = _eval_place(op.place, state)
    if isinstance(target, LocalTarget):
        old = state.slots[target.slot]
        state.slots[target.slot] = _merge_masked(state.mask, value, old)
    elif isinstance(target, ElementSlot):
        state.store(target, value)
    else:
        raise DescendRuntimeError(f"cannot assign a whole array at once: `{op.place.text}`")


def _run_if(op: IfOp, state: ExecState) -> None:
    cond = state.slots[op.cond]
    if not isinstance(cond, np.ndarray):
        if cond:
            _run_ops(op.then_ops, state)
        elif op.else_ops is not None:
            _run_ops(op.else_ops, state)
        return
    old_mask = state.mask
    then_mask = cond if old_mask is None else (old_mask & cond)
    if then_mask.any():
        state.mask = then_mask
        try:
            _run_ops(op.then_ops, state)
        finally:
            state.mask = old_mask
    if op.else_ops is not None:
        else_mask = ~cond if old_mask is None else (old_mask & ~cond)
        if else_mask.any():
            state.mask = else_mask
            try:
                _run_ops(op.else_ops, state)
            finally:
                state.mask = old_mask


def _run_for_nat(op: ForNatOp, state: ExecState) -> None:
    lo = state.nat_value(op.lo)
    hi = state.nat_value(op.hi)
    previous = state.nat_env.get(op.var)
    for value in range(lo, hi):
        state.nat_env[op.var] = value
        _run_ops(op.body, state)
    if previous is None:
        state.nat_env.pop(op.var, None)
    else:
        state.nat_env[op.var] = previous


def _run_for_each(op: ForEachOp, state: ExecState) -> None:
    collection = state.slots[op.collection]
    if not isinstance(collection, MemValue):
        raise DescendRuntimeError("`for ... in` expects an array value")
    size = int(collection.shape[0])
    for index in range(size):
        element = collection.logical.index(index)
        if element.is_scalar():
            value: Value = state.load(
                ElementSlot(buffer=collection.buffer, offsets=element.flat_offset(()))
            )
        else:
            value = MemValue(buffer=collection.buffer, logical=element)
        state.slots[op.var] = value
        _run_ops(op.body, state)


def _run_sched(op: SchedOp, state: ExecState) -> None:
    over_blocks = bool(state.pending_blocks)
    window = state.block_window if over_blocks else state.thread_window
    pending = state.pending_blocks if over_blocks else state.pending_threads

    coords = []
    for dim in op.dims:
        if dim not in pending:
            raise DescendRuntimeError(f"dimension {dim} is not pending for `{op.binder}`")
        lo, _hi = window[dim]
        raw = state.raw_index(dim, over_blocks)
        coords.append(raw - lo if lo else raw)
    for dim in op.dims:
        pending.discard(dim)
    previous_coords = state.exec_coords.get(op.binder)
    state.exec_coords[op.binder] = tuple(coords)
    try:
        _run_ops(op.body, state)
    finally:
        if previous_coords is None:
            state.exec_coords.pop(op.binder, None)
        else:
            state.exec_coords[op.binder] = previous_coords
        for dim in op.dims:
            pending.add(dim)


def _run_split(op: SplitOp, state: ExecState) -> None:
    over_blocks = op.dim in state.pending_blocks
    window = state.block_window if over_blocks else state.thread_window
    if op.dim not in window:
        raise DescendRuntimeError(f"cannot split missing dimension {op.dim}")
    lo, hi = window[op.dim]
    pos = state.nat_value(op.pos)
    relative = state.raw_index(op.dim, over_blocks) - lo
    first_cond = relative < pos
    old_mask = state.mask

    first_mask = first_cond if old_mask is None else (old_mask & first_cond)
    if first_mask.any():
        window[op.dim] = [lo, lo + pos]
        state.mask = first_mask
        try:
            _run_ops(op.first, state)
        finally:
            window[op.dim] = [lo, hi]
            state.mask = old_mask

    second_mask = ~first_cond if old_mask is None else (old_mask & ~first_cond)
    if second_mask.any():
        window[op.dim] = [lo + pos, hi]
        state.mask = second_mask
        try:
            _run_ops(op.second, state)
        finally:
            window[op.dim] = [lo, hi]
            state.mask = old_mask


def _run_sync(op: SyncOp, state: ExecState) -> None:
    # The lowering guarantees `sync` is never nested under divergence, so
    # the whole grid is active here: one barrier per block, one epoch
    # grid-wide — the same accounting as the per-block reference executor.
    assert state.mask is None, "sync under an active mask escaped lowering checks"
    state.ctx.sync()


_DISPATCH = {
    ConstOp: _run_const,
    NatOp: _run_nat,
    ReadOp: _run_read,
    BorrowOp: _run_borrow,
    AllocOp: _run_alloc,
    ArithOp: _run_arith,
    FusedArithOp: _run_fused_arith,
    CompareOp: _run_compare,
    LogicOp: _run_logic,
    NegOp: _run_neg,
    NotOp: _run_not,
    StoreOp: _run_store,
    IfOp: _run_if,
    ForNatOp: _run_for_nat,
    ForEachOp: _run_for_each,
    SchedOp: _run_sched,
    SplitOp: _run_split,
    SyncOp: _run_sync,
}


#: Pre-paired ``(op, handler)`` sequences keyed by ``id(ops)``: plan bodies
#: are immutable tuples that run once per loop iteration per launch, so the
#: per-op class lookup is paid once per distinct ops sequence instead of per
#: execution.  Each entry pins the ops tuple itself (first element) so a
#: dead tuple's recycled ``id`` can never alias a live entry; the identity
#: check guards the (unlikely) pin-free window after a wholesale clear.
_PAIR_TABLE: Dict[int, Tuple[tuple, tuple]] = {}
_PAIR_TABLE_MAX = 4096


def _paired_ops(ops):
    key = id(ops)
    cached = _PAIR_TABLE.get(key)
    if cached is not None and cached[0] is ops:
        return cached[1]
    dispatch = _DISPATCH
    pairs = tuple((op, dispatch[op.__class__]) for op in ops)
    if len(_PAIR_TABLE) >= _PAIR_TABLE_MAX:
        _PAIR_TABLE.clear()
    _PAIR_TABLE[key] = (ops, pairs)
    return pairs


def _run_ops(ops, state: ExecState) -> None:
    for op, handler in _paired_ops(ops):
        handler(op, state)


def execute_plan(
    plan: DevicePlan,
    ctx: VecCtx,
    nat_env: Dict[str, int],
    args: Dict[str, Value],
) -> None:
    """Run one launch of a plan against a grid-wide :class:`VecCtx`."""
    state = ExecState(ctx, plan.level, nat_env, plan.n_slots)
    for index, name in enumerate(plan.params):
        if name not in args:
            raise DescendRuntimeError(f"missing argument `{name}`")
        state.slots[index] = args[name]
    _run_ops(plan.body, state)
