"""The ``lower.plan.codegen`` pass: plan IR → straight-line Python source.

The plan interpreter (:mod:`repro.descend.plan.execute`) pays Python
dispatch, slot loads/stores, and mask bookkeeping for every op of every
launch.  This pass removes all of it *ahead of time*: it walks the optimized
IR once and emits a real Python function in which

* the slot table becomes local variables (``s0``, ``s1``, …),
* structured ``for-nat``/``for-each``/``if``/``sched``/``split`` ops become
  real ``for``/``if`` statements over masked numpy expressions,
* the same ``ctx.arith`` / access-recording hooks are inlined at every
  arithmetic and memory op, so cycle and race accounting stays **exact** —
  the interpreter remains the parity oracle, and the differential tests
  assert byte-identical cycle counts and race reports.

The emitted source is plain data: :class:`PlanSource` pickles into the
artifact store as a first-class ``plan-src`` artifact beside the plan IR, so
warm sessions and sweep workers load pre-built code with zero codegen
passes.  ``compile()`` of the source happens at most once per process per
distinct source text (:func:`_materialize`).

Anything the emitter cannot express raises :exc:`CodegenUnsupported`;
``DescendKernel.launch`` degrades such launches to the interpreter (and
records ``fallback_reason``), never failing the launch.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.descend.plan.ir import (
    AllocOp,
    ArithOp,
    BorrowOp,
    CompareOp,
    ConstOp,
    DevicePlan,
    ForEachOp,
    ForNatOp,
    FusedArithOp,
    IfOp,
    LogicOp,
    NatOp,
    NegOp,
    NotOp,
    PlaceIR,
    ReadOp,
    SchedOp,
    SlotIdxStep,
    SplitOp,
    StoreOp,
    SyncOp,
)

#: Hard ceiling on emitted source lines.  ``if``/``split`` arms are emitted
#: once per (array vs scalar condition) path, so pathologically deep nested
#: divergence can grow the source exponentially; past this cap the plan
#: simply keeps using the interpreter.
MAX_SOURCE_LINES = 20_000


class CodegenUnsupported(Exception):
    """The plan contains a construct the source emitter cannot compile."""


@dataclass(frozen=True)
class PlanSource:
    """The generated Python source of one device plan (a store artifact).

    ``source`` is self-contained but *parameterized*: the function it defines
    takes ``(ctx, args, _env, C, rt)`` where ``C`` is :attr:`consts` (the
    plan's non-literal constants — places, nats, types, level) and ``rt`` is
    :mod:`repro.descend.plan.runtime`.  Keeping the constants out of the text
    keeps the source printable/diffable and the pickle compact.
    """

    fun_name: str
    entry_name: str
    source: str
    consts: Tuple[Any, ...]

    def entry(self, nat_env, args):
        """A jit kernel closure over one launch's arguments.

        Mirrors :meth:`DevicePlan.entry`; the returned callable is what the
        jit engine executes against a grid-wide ``VecCtx``.
        """
        # Imported here (not at module top): the runtime pulls in the
        # interpreter machinery, which itself imports this package.
        from repro.descend.plan import runtime as _rt

        fn = _materialize(self)
        consts = self.consts

        def jit_kernel(ctx) -> None:
            fn(ctx, args, nat_env, consts, _rt)

        jit_kernel.__name__ = f"{self.fun_name}_jit"
        return jit_kernel


#: Per-process cache of compiled entry functions, keyed by source text: the
#: generated functions close over nothing (everything arrives as parameters),
#: so two structurally identical plans share one code object.
_FUNC_CACHE: Dict[str, Callable] = {}
_FUNC_CACHE_MAX = 256


def _materialize(plan_src: PlanSource) -> Callable:
    fn = _FUNC_CACHE.get(plan_src.source)
    if fn is None:
        code = compile(plan_src.source, f"<plan-jit:{plan_src.fun_name}>", "exec")
        namespace: Dict[str, Any] = {}
        exec(code, namespace)  # noqa: S102 - compiling our own generated source
        fn = namespace[plan_src.entry_name]
        if len(_FUNC_CACHE) >= _FUNC_CACHE_MAX:
            _FUNC_CACHE.pop(next(iter(_FUNC_CACHE)))
        _FUNC_CACHE[plan_src.source] = fn
    return fn


def _entry_name(fun_name: str) -> str:
    safe = re.sub(r"\W", "_", fun_name) or "plan"
    return f"_{safe}_jit"


# ---------------------------------------------------------------------------
# The emitter
# ---------------------------------------------------------------------------


@dataclass
class _Emitter:
    lines: List[str] = field(default_factory=list)
    consts: List[Any] = field(default_factory=list)
    _const_ids: Dict[int, int] = field(default_factory=dict)
    _tmp: int = 0

    def emit(self, indent: int, text: str) -> None:
        if len(self.lines) >= MAX_SOURCE_LINES:
            raise CodegenUnsupported(
                f"generated source exceeds {MAX_SOURCE_LINES} lines "
                "(deeply nested divergent control flow)"
            )
        self.lines.append("    " * indent + text)

    def const(self, value: Any) -> str:
        """Reference ``value`` through the constant pool (identity-deduped)."""
        index = self._const_ids.get(id(value))
        if index is None:
            index = len(self.consts)
            self.consts.append(value)  # the list pins id(value) for the dict key
            self._const_ids[id(value)] = index
        return f"C[{index}]"

    def fresh(self) -> str:
        self._tmp += 1
        return str(self._tmp)


def _inline_literal(value: Any) -> str:
    """A source literal for a const, or '' when it must go through the pool."""
    if value is True or value is False or value is None:
        return repr(value)
    if type(value) is int:
        return repr(value)
    if type(value) is float and value == value and value not in (float("inf"), float("-inf")):
        return repr(value)  # repr of a finite float round-trips exactly
    return ""


def _binop(op: str, lhs: str, rhs: str) -> str:
    """An arithmetic expression matching the oracle's ``_apply_arith``."""
    if op == "/":
        return f"rt.div({lhs}, {rhs})"
    if op in ("+", "-", "*", "%"):
        return f"({lhs} {op} {rhs})"
    raise CodegenUnsupported(f"no code generator for arithmetic operator {op!r}")


_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")


def _place_call_args(em: _Emitter, place: PlaceIR) -> Tuple[str, str, str]:
    """``(place_const, root_local, slot_index_tuple)`` for a place helper call."""
    slots = [step.slot for step in place.steps if isinstance(step, SlotIdxStep)]
    if not slots:
        idxs = "()"
    elif len(slots) == 1:
        idxs = f"(s{slots[0]},)"
    else:
        idxs = "(" + ", ".join(f"s{slot}" for slot in slots) + ")"
    return em.const(place), f"s{place.root}", idxs


def _emit_ops(em: _Emitter, ops, indent: int) -> None:
    if not ops:
        em.emit(indent, "pass")
        return
    for op in ops:
        _emit_op(em, op, indent)


def _emit_op(em: _Emitter, op, indent: int) -> None:  # noqa: PLR0915, PLR0912
    if isinstance(op, ConstOp):
        literal = _inline_literal(op.value)
        if literal:
            em.emit(indent, f"s{op.out} = {literal}")
        else:
            em.emit(indent, f"s{op.out} = {em.const(op.value)}  # const {op.value!r}")
    elif isinstance(op, NatOp):
        em.emit(indent, f"s{op.out} = _natf({em.const(op.nat)})  # nat {op.nat}")
    elif isinstance(op, ReadOp):
        place, root, idxs = _place_call_args(em, op.place)
        em.emit(
            indent,
            f"s{op.out} = rt.read({place}, {root}, {idxs}, _natf, _coords, ctx, _mask)"
            f"  # read {op.place.text}",
        )
    elif isinstance(op, BorrowOp):
        place, root, idxs = _place_call_args(em, op.place)
        em.emit(
            indent,
            f"s{op.out} = rt.borrow({place}, {root}, {idxs}, _natf, _coords)"
            f"  # borrow {op.place.text}",
        )
    elif isinstance(op, AllocOp):
        em.emit(
            indent,
            f"s{op.out} = rt.alloc({em.const(op)}, _env, ctx)"
            f"  # alloc {op.space} #{op.alloc_id}",
        )
    elif isinstance(op, ArithOp):
        em.emit(indent, "ctx.arith(1, where=_mask)")
        em.emit(indent, f"s{op.out} = {_binop(op.op, f's{op.lhs}', f's{op.rhs}')}")
    elif isinstance(op, FusedArithOp):
        inner = _binop(op.inner_op, f"s{op.inner_lhs}", f"s{op.inner_rhs}")
        if op.inner_is_lhs:
            expr = _binop(op.outer_op, inner, f"s{op.other}")
        else:
            expr = _binop(op.outer_op, f"s{op.other}", inner)
        em.emit(indent, "ctx.arith(2, where=_mask)")
        em.emit(indent, f"s{op.out} = {expr}")
    elif isinstance(op, CompareOp):
        if op.op not in _COMPARE_OPS:
            raise CodegenUnsupported(f"no code generator for comparison {op.op!r}")
        em.emit(indent, f"s{op.out} = (s{op.lhs} {op.op} s{op.rhs})")
    elif isinstance(op, LogicOp):
        helper = "rt.logic_and" if op.op == "&&" else "rt.logic_or"
        em.emit(indent, f"s{op.out} = {helper}(s{op.lhs}, s{op.rhs})")
    elif isinstance(op, NegOp):
        em.emit(indent, "ctx.arith(1, where=_mask)")
        em.emit(indent, f"s{op.out} = -s{op.operand}")
    elif isinstance(op, NotOp):
        em.emit(indent, f"s{op.out} = rt.logic_not(s{op.operand})")
    elif isinstance(op, StoreOp):
        place, root, idxs = _place_call_args(em, op.place)
        em.emit(
            indent,
            f"{root} = rt.store({place}, {root}, {idxs}, s{op.value}, "
            f"_natf, _coords, ctx, _mask)  # store {op.place.text}",
        )
    elif isinstance(op, IfOp):
        _emit_if(em, op, indent)
    elif isinstance(op, ForNatOp):
        n = em.fresh()
        em.emit(indent, f"_lo{n} = _natf({em.const(op.lo)})  # {op.lo}")
        em.emit(indent, f"_hi{n} = _natf({em.const(op.hi)})  # {op.hi}")
        em.emit(indent, f"_pv{n} = _env.get({op.var!r})")
        em.emit(indent, f"for _i{n} in range(_lo{n}, _hi{n}):  # for {op.var}")
        em.emit(indent + 1, f"_env[{op.var!r}] = _i{n}")
        _emit_ops(em, op.body, indent + 1)
        em.emit(indent, f"if _pv{n} is None:")
        em.emit(indent + 1, f"_env.pop({op.var!r}, None)")
        em.emit(indent, "else:")
        em.emit(indent + 1, f"_env[{op.var!r}] = _pv{n}")
    elif isinstance(op, ForEachOp):
        n = em.fresh()
        em.emit(indent, f"_cl{n} = s{op.collection}")
        em.emit(
            indent,
            f"for _i{n} in range(rt.foreach_size(_cl{n})):  # for {op.var_name}",
        )
        em.emit(indent + 1, f"s{op.var} = rt.foreach_element(_cl{n}, _i{n}, ctx, _mask)")
        _emit_ops(em, op.body, indent + 1)
    elif isinstance(op, SchedOp):
        n = em.fresh()
        dims = ",".join(d.name for d in op.dims)
        em.emit(
            indent,
            f"_sc{n} = rt.sched_enter({em.const(op)}, _bw, _tw, _pb, _pt, _coords, ctx)"
            f"  # sched({dims}) {op.binder}",
        )
        em.emit(indent, "try:")
        _emit_ops(em, op.body, indent + 1)
        em.emit(indent, "finally:")
        em.emit(indent + 1, f"rt.sched_exit({em.const(op)}, _sc{n}, _coords)")
    elif isinstance(op, SplitOp):
        _emit_split(em, op, indent)
    elif isinstance(op, SyncOp):
        em.emit(
            indent,
            'assert _mask is None, "sync under an active mask escaped lowering checks"',
        )
        em.emit(indent, "ctx.sync()")
    else:
        raise CodegenUnsupported(f"no code generator for op {type(op).__name__}")


def _emit_if(em: _Emitter, op: IfOp, indent: int) -> None:
    """Branch on a slot: masked dual-arm execution for array conditions,
    a plain Python ``if`` for uniform scalar ones (both arms are emitted
    once per path — the source-size cap bounds the duplication)."""
    n = em.fresh()
    em.emit(indent, f"_c{n} = s{op.cond}")
    em.emit(indent, f"if isinstance(_c{n}, rt.ndarray):")
    em.emit(indent + 1, f"_om{n} = _mask")
    em.emit(indent + 1, f"_tm{n} = _c{n} if _om{n} is None else (_om{n} & _c{n})")
    em.emit(indent + 1, f"if _tm{n}.any():")
    em.emit(indent + 2, f"_mask = _tm{n}")
    em.emit(indent + 2, "try:")
    _emit_ops(em, op.then_ops, indent + 3)
    em.emit(indent + 2, "finally:")
    em.emit(indent + 3, f"_mask = _om{n}")
    if op.else_ops is not None:
        em.emit(indent + 1, f"_em{n} = ~_c{n} if _om{n} is None else (_om{n} & ~_c{n})")
        em.emit(indent + 1, f"if _em{n}.any():")
        em.emit(indent + 2, f"_mask = _em{n}")
        em.emit(indent + 2, "try:")
        _emit_ops(em, op.else_ops, indent + 3)
        em.emit(indent + 2, "finally:")
        em.emit(indent + 3, f"_mask = _om{n}")
    em.emit(indent, "else:")
    em.emit(indent + 1, f"if _c{n}:")
    _emit_ops(em, op.then_ops, indent + 2)
    if op.else_ops is not None:
        em.emit(indent + 1, "else:")
        _emit_ops(em, op.else_ops, indent + 2)


def _emit_split(em: _Emitter, op: SplitOp, indent: int) -> None:
    n = em.fresh()
    oc = em.const(op)
    em.emit(
        indent,
        f"_w{n}, _lo{n}, _hi{n}, _ps{n}, _fc{n} = "
        f"rt.split_enter({oc}, _bw, _tw, _pb, _natf, ctx)"
        f"  # split {op.dim.name} @ {op.pos}",
    )
    em.emit(indent, f"_om{n} = _mask")
    em.emit(indent, f"_fm{n} = _fc{n} if _om{n} is None else (_om{n} & _fc{n})")
    em.emit(indent, f"if _fm{n}.any():")
    em.emit(indent + 1, f"_w{n}[{oc}.dim] = [_lo{n}, _lo{n} + _ps{n}]")
    em.emit(indent + 1, f"_mask = _fm{n}")
    em.emit(indent + 1, "try:")
    _emit_ops(em, op.first, indent + 2)
    em.emit(indent + 1, "finally:")
    em.emit(indent + 2, f"_w{n}[{oc}.dim] = [_lo{n}, _hi{n}]")
    em.emit(indent + 2, f"_mask = _om{n}")
    em.emit(indent, f"_sm{n} = ~_fc{n} if _om{n} is None else (_om{n} & ~_fc{n})")
    em.emit(indent, f"if _sm{n}.any():")
    em.emit(indent + 1, f"_w{n}[{oc}.dim] = [_lo{n} + _ps{n}, _hi{n}]")
    em.emit(indent + 1, f"_mask = _sm{n}")
    em.emit(indent + 1, "try:")
    _emit_ops(em, op.second, indent + 2)
    em.emit(indent + 1, "finally:")
    em.emit(indent + 2, f"_w{n}[{oc}.dim] = [_lo{n}, _hi{n}]")
    em.emit(indent + 2, f"_mask = _om{n}")


def generate_plan_source(plan: DevicePlan) -> PlanSource:
    """Compile one optimized device plan to a :class:`PlanSource`.

    Deterministic: the same plan always yields the same source text and
    constant pool (golden-source tests rely on this).  Raises
    :exc:`CodegenUnsupported` for constructs the emitter cannot express.
    """
    em = _Emitter()
    entry_name = _entry_name(plan.fun_name)
    em.emit(0, f"# plan-jit source for `{plan.fun_name}` "
               f"(exec {plan.level.describe()}, {plan.n_slots} slots)")
    em.emit(0, f"def {entry_name}(ctx, args, _env, C, rt):")
    em.emit(1, "_env = dict(_env)")
    em.emit(1, "_natf = rt.natf(_env)")
    em.emit(1, "_mask = None")
    em.emit(1, "_coords = {}")
    em.emit(1, f"_bw, _tw, _pb, _pt = rt.init_windows({em.const(plan.level)}, _env)")
    for index, name in enumerate(plan.params):
        em.emit(1, f"s{index} = rt.arg(args, {name!r})")
    spare = [f"s{i}" for i in range(len(plan.params), plan.n_slots)]
    for chunk_start in range(0, len(spare), 8):
        chunk = spare[chunk_start : chunk_start + 8]
        em.emit(1, " = ".join(chunk) + " = None")
    _emit_ops(em, plan.body, 1)
    source = "\n".join(em.lines) + "\n"
    return PlanSource(
        fun_name=plan.fun_name,
        entry_name=entry_name,
        source=source,
        consts=tuple(em.consts),
    )
