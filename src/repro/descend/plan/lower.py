"""Lowering type-checked GPU functions to the plan IR.

This is stage one of the device-plan pipeline (the other two are
:mod:`repro.descend.plan.optimize` and :mod:`repro.descend.plan.execute`).
It walks the AST once and emits a flat tuple of frozen dataclass ops over an
explicit slot table:

* expressions flatten into ops that write numbered slots (fresh temporaries
  per op site, compacted later by the dead-slot pass);
* name resolution is done *here*, lexically: every ``let``/parameter/loop
  binding gets its own slot, so shadowing costs nothing at run time and the
  executor never looks names up in a dict;
* place expressions become :class:`~repro.descend.plan.ir.PlaceIR` chains
  whose runtime index sub-expressions are lowered into the surrounding op
  sequence (in chain order — the access order the race detector sees must
  match the reference interpreter exactly);
* constructs whose batched semantics would diverge from the reference
  engine (``sync`` nested under ``split`` or a per-thread ``if``) raise
  :class:`PlanUnsupported`, and the kernel launcher falls back to the
  per-thread reference interpreter for that function.

The lowering performs no optimization and embeds no callables: its output
pickles directly into the artifact store.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.descend.ast import terms as T
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.ast.places import PDeref, PIdx, PProj, PSelect, PVar, PView, PlaceExpr
from repro.descend.nat import Nat
from repro.descend.plan.ir import (
    AllocOp,
    ArithOp,
    BorrowOp,
    CompareOp,
    ConstOp,
    DevicePlan,
    ForEachOp,
    ForNatOp,
    IfOp,
    LogicOp,
    NatIdxStep,
    NatOp,
    NegOp,
    NotOp,
    PlaceIR,
    PlaceStep,
    PlanOp,
    ProjStep,
    ReadOp,
    SchedOp,
    SelectStep,
    SlotIdxStep,
    SplitOp,
    StoreOp,
    SyncOp,
    ViewStep,
)
from repro.errors import DescendError

_ARITH_OPS = ("+", "-", "*", "/", "%")
_COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")


class PlanUnsupported(DescendError):
    """A construct the device-plan compiler cannot lower; callers fall back."""


class _Lowerer:
    """Single-use AST walker: slot allocation, lexical scoping, op emission."""

    def __init__(self, fun_def: T.FunDef) -> None:
        self.fun_def = fun_def
        self.slot_names: List[str] = []
        self.scope: Dict[str, List[int]] = {}
        self.alloc_counter = 0
        self.ops: List[PlanOp] = []

    # -- slots & scoping -------------------------------------------------------
    def new_slot(self, name: str = "") -> int:
        self.slot_names.append(name)
        return len(self.slot_names) - 1

    def bind(self, name: str, slot: int) -> None:
        self.scope.setdefault(name, []).append(slot)
        if not self.slot_names[slot]:
            self.slot_names[slot] = name

    def unbind(self, name: str) -> None:
        self.scope[name].pop()
        if not self.scope[name]:
            del self.scope[name]

    def lookup(self, name: str) -> int:
        stack = self.scope.get(name)
        if not stack:
            raise PlanUnsupported(f"unbound variable `{name}` in device plan")
        return stack[-1]

    def emit(self, op: PlanOp) -> None:
        self.ops.append(op)

    def nested(self, lower) -> Tuple[PlanOp, ...]:
        """Lower into a fresh op sequence (the body of a structured op)."""
        saved, self.ops = self.ops, []
        try:
            lower()
            return tuple(self.ops)
        finally:
            self.ops = saved

    # -- places ----------------------------------------------------------------
    def lower_place(self, place: PlaceExpr) -> PlaceIR:
        parts = place.parts()
        root = parts[0]
        assert isinstance(root, PVar)
        steps: List[PlaceStep] = []
        for part in parts[1:]:
            if isinstance(part, PDeref):
                continue
            if isinstance(part, PView):
                steps.append(ViewStep(part.ref))
            elif isinstance(part, PProj):
                steps.append(ProjStep(part.index))
            elif isinstance(part, PSelect):
                steps.append(SelectStep(part.exec_var))
            elif isinstance(part, PIdx):
                if isinstance(part.index, Nat):
                    steps.append(NatIdxStep(part.index))
                else:
                    # Runtime indices evaluate in chain order: their ops are
                    # emitted here, before the access op that consumes the
                    # finished chain.
                    steps.append(SlotIdxStep(self.lower_expr(part.index)))
            else:
                raise PlanUnsupported(f"unsupported place expression step {part}")
        return PlaceIR(
            root=self.lookup(root.name),
            root_name=root.name,
            steps=tuple(steps),
            text=str(place),
        )

    # -- expressions -----------------------------------------------------------
    def lower_expr(self, term: T.Term) -> int:
        """Emit the ops of one expression; returns the result slot."""
        if isinstance(term, T.Lit):
            out = self.new_slot()
            self.emit(ConstOp(out, term.value))
            return out
        if isinstance(term, T.NatTerm):
            out = self.new_slot()
            self.emit(NatOp(out, term.nat))
            return out
        if isinstance(term, T.PlaceTerm):
            place = self.lower_place(term.place)
            out = self.new_slot()
            self.emit(ReadOp(out, place))
            return out
        if isinstance(term, T.Borrow):
            place = self.lower_place(term.place)
            out = self.new_slot()
            self.emit(BorrowOp(out, place))
            return out
        if isinstance(term, T.BinaryOp):
            return self.lower_binary(term)
        if isinstance(term, T.UnaryOp):
            operand = self.lower_expr(term.operand)
            out = self.new_slot()
            if term.op == "-":
                self.emit(NegOp(out, operand))
            elif term.op == "!":
                self.emit(NotOp(out, operand))
            else:
                raise PlanUnsupported(f"unsupported unary operator {term.op}")
            return out
        if isinstance(term, T.Alloc):
            return self.lower_alloc(term)
        if isinstance(term, T.FnApp):
            raise PlanUnsupported(
                f"function calls on the GPU are inlined before execution; "
                f"cannot lower call to `{term.name}`"
            )
        raise PlanUnsupported(f"cannot lower term {term}")

    def lower_binary(self, term: T.BinaryOp) -> int:
        lhs = self.lower_expr(term.lhs)
        rhs = self.lower_expr(term.rhs)
        out = self.new_slot()
        if term.op in _ARITH_OPS:
            self.emit(ArithOp(out, term.op, lhs, rhs))
        elif term.op in _COMPARE_OPS:
            self.emit(CompareOp(out, term.op, lhs, rhs))
        elif term.op in ("&&", "||"):
            # Both engines evaluate both operands eagerly (no short-circuit).
            self.emit(LogicOp(out, term.op, lhs, rhs))
        else:
            raise PlanUnsupported(f"unsupported binary operator {term.op}")
        return out

    def lower_alloc(self, term: T.Alloc) -> int:
        mem_name = str(term.mem)
        if mem_name not in ("gpu.shared", "gpu.local"):
            raise PlanUnsupported(f"cannot allocate `{term.mem}` memory on the GPU")
        out = self.new_slot()
        self.emit(AllocOp(out, mem_name, term.ty, self.alloc_counter))
        self.alloc_counter += 1
        return out

    # -- statements ------------------------------------------------------------
    def lower_stmt(self, term: T.Term, divergent: bool = False) -> None:
        if isinstance(term, T.Block):
            # Bindings introduced by the block go out of (lexical) scope at
            # its end; slots are per-binding, so shadowing resolves here and
            # mutations of outer variables naturally survive.
            introduced: List[str] = []
            try:
                for stmt in term.stmts:
                    self.lower_stmt(stmt, divergent)
                    if isinstance(stmt, T.LetTerm):
                        introduced.append(stmt.name)
            finally:
                for name in reversed(introduced):
                    self.unbind(name)
            return
        if isinstance(term, T.LetTerm):
            # The initializer is lowered in the *outer* scope (`let x = x+1`
            # reads the shadowed binding), then its result slot becomes the
            # new binding.
            slot = self.lower_expr(term.init)
            self.bind(term.name, slot)
            return
        if isinstance(term, T.Assign):
            value = self.lower_expr(term.value)
            place = self.lower_place(term.place)
            self.emit(StoreOp(place, value))
            return
        if isinstance(term, T.IfTerm):
            if T.contains_sync(term):
                raise PlanUnsupported(
                    "`sync` under a per-thread `if` needs the reference engine's "
                    "barrier-divergence detection"
                )
            cond = self.lower_expr(term.cond)
            then_ops = self.nested(lambda: self.lower_stmt(term.then, divergent=True))
            else_ops = (
                self.nested(lambda: self.lower_stmt(term.otherwise, divergent=True))
                if term.otherwise is not None
                else None
            )
            self.emit(IfOp(cond, then_ops, else_ops))
            return
        if isinstance(term, T.ForNat):
            body = self.nested(lambda: self.lower_stmt(term.body, divergent))
            self.emit(ForNatOp(term.var, term.lo, term.hi, body))
            return
        if isinstance(term, T.ForEach):
            collection = self.lower_expr(term.collection)
            var_slot = self.new_slot(term.var)
            self.bind(term.var, var_slot)
            try:
                body = self.nested(lambda: self.lower_stmt(term.body, divergent))
            finally:
                self.unbind(term.var)
            self.emit(ForEachOp(var_slot, term.var, collection, body))
            return
        if isinstance(term, T.Sched):
            body = self.nested(lambda: self.lower_stmt(term.body, divergent))
            self.emit(SchedOp(term.binder, tuple(term.dims), body))
            return
        if isinstance(term, T.SplitExec):
            if T.contains_sync(term):
                raise PlanUnsupported(
                    "`sync` under `split` needs the reference engine's "
                    "barrier-divergence detection"
                )
            first = self.nested(lambda: self.lower_stmt(term.first_body, divergent=True))
            second = self.nested(lambda: self.lower_stmt(term.second_body, divergent=True))
            self.emit(SplitOp(term.dim, term.pos, first, second))
            return
        if isinstance(term, T.Sync):
            if divergent:
                raise PlanUnsupported(
                    "`sync` under divergent control flow needs the reference engine"
                )
            self.emit(SyncOp())
            return
        # expression statements: evaluate for effects, discard the value
        self.lower_expr(term)

    # -- entry -----------------------------------------------------------------
    def lower(self) -> DevicePlan:
        level = self.fun_def.exec_spec.level
        if not isinstance(level, GpuGridLevel):
            raise PlanUnsupported(f"`{self.fun_def.name}` is not a GPU grid function")
        params = tuple(p.name for p in self.fun_def.params)
        for name in params:
            self.bind(name, self.new_slot(name))
        body = self.nested(lambda: self.lower_stmt(self.fun_def.body))
        return DevicePlan(
            fun_name=self.fun_def.name,
            level=level,
            params=params,
            slot_names=tuple(self.slot_names),
            body=body,
        )


def lower_device_plan(fun_def: T.FunDef) -> DevicePlan:
    """Lower one GPU Descend function to (unoptimized) plan IR.

    Raises :class:`PlanUnsupported` when the function uses a construct whose
    batched execution could diverge from the reference semantics.
    """
    return _Lowerer(fun_def).lower()


def compile_device_plan(fun_def: T.FunDef, optimize: bool = True) -> DevicePlan:
    """Lower one GPU function and (by default) run the IR pass pipeline."""
    plan = lower_device_plan(fun_def)
    if optimize:
        from repro.descend.plan.optimize import optimize_plan

        plan, _detail = optimize_plan(plan)
    return plan
