"""Runtime support library for JIT-compiled device plans.

The :mod:`repro.descend.plan.codegen` pass emits a straight-line Python
source function per plan; everything in that generated source that is not a
plain local-variable assignment or a masked numpy expression calls back into
this module (the ``rt`` parameter of the generated function).

The helpers here mirror :mod:`repro.descend.plan.execute` — the op-at-a-time
interpreter that stays behind as the cycle/race **parity oracle** — down to
the exact error strings.  The interpreter module is deliberately left
untouched; where a helper is pure data plumbing (the :class:`ElementSlot`
marker, the memoized view resolution, integer-index coercion) it is imported
from there so both engines share one definition and one cache.

Masking discipline is identical to the interpreter: every load/store/arith
forwards the generated function's current ``_mask`` local as ``where=``, so
inactive lanes do not advance slot counters, record no accesses, and count
no arithmetic.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from repro.descend.ast.dims import DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.interp.values import MemValue, numpy_dtype, static_shape
from repro.descend.nat import Nat, evaluate_nat
from repro.descend.plan.execute import (
    ElementSlot,
    _as_int_index,
    _is_integer,
    _resolved_view,
)
from repro.descend.plan.ir import (
    AllocOp,
    NatIdxStep,
    PlaceIR,
    ProjStep,
    SchedOp,
    SelectStep,
    SplitOp,
    ViewStep,
)
from repro.descend.views.indexing import BoundView, LogicalArray, LogicalPair
from repro.errors import DescendRuntimeError

#: Re-exported so generated code can write ``isinstance(x, rt.ndarray)``.
ndarray = np.ndarray

#: Sentinel: the evaluated place is the scalar root local itself.
_LOCAL = object()


# ---------------------------------------------------------------------------
# Launch prologue
# ---------------------------------------------------------------------------


def arg(args: Dict[str, object], name: str):
    """One launch argument (same missing-argument diagnostic as the oracle)."""
    if name not in args:
        raise DescendRuntimeError(f"missing argument `{name}`")
    return args[name]


def natf(env: Dict[str, int]) -> Callable[[Nat], int]:
    """A nat evaluator closed over the launch's (mutable) nat environment."""

    def nat_value(nat: Nat) -> int:
        return int(evaluate_nat(nat, env))

    return nat_value


def init_windows(level: GpuGridLevel, env: Dict[str, int]):
    """The ``sched``/``split`` window bookkeeping of one launch.

    Returns ``(block_window, thread_window, pending_blocks, pending_threads)``
    exactly as ``ExecState.__init__`` builds them.
    """
    block_window = {
        name: [0, int(evaluate_nat(size, env))] for name, size in level.blocks.entries
    }
    thread_window = {
        name: [0, int(evaluate_nat(size, env))] for name, size in level.threads.entries
    }
    return block_window, thread_window, set(block_window), set(thread_window)


# ---------------------------------------------------------------------------
# Scalar helpers inlined by the emitter
# ---------------------------------------------------------------------------


def div(lhs, rhs):
    """``/`` with the oracle's integer-division rule (floordiv iff both int)."""
    if _is_integer(lhs) and _is_integer(rhs):
        return lhs // rhs
    return lhs / rhs


def logic_and(lhs, rhs):
    if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
        return np.logical_and(lhs, rhs)
    return bool(lhs) and bool(rhs)


def logic_or(lhs, rhs):
    if isinstance(lhs, np.ndarray) or isinstance(rhs, np.ndarray):
        return np.logical_or(lhs, rhs)
    return bool(lhs) or bool(rhs)


def logic_not(value):
    if isinstance(value, np.ndarray):
        return np.logical_not(value)
    return not value


# ---------------------------------------------------------------------------
# Place evaluation (reads, borrows, stores)
# ---------------------------------------------------------------------------


def _eval_place(place: PlaceIR, root_value, idxs: Tuple, nat_value, coords):
    """Mirror of the interpreter's ``_eval_place`` over pre-read slot values.

    ``idxs`` holds the values of the place's ``SlotIdxStep`` slots in chain
    order (the generated call site reads them from its locals); ``coords`` is
    the generated function's execution-coordinate dict.
    """
    if root_value is None:
        raise DescendRuntimeError(f"unbound variable `{place.root_name}` at runtime")
    if not isinstance(root_value, MemValue):
        if not place.steps:
            return _LOCAL
        raise DescendRuntimeError(
            f"`{place.root_name}` is a scalar and cannot be indexed or viewed"
        )

    current = root_value.logical
    next_idx = 0
    for step in place.steps:
        if isinstance(step, ViewStep):
            if isinstance(current, LogicalPair):
                raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
            current = current.apply_view(BoundView(_resolved_view(step.ref), nat_value))
            continue
        if isinstance(step, ProjStep):
            if isinstance(current, LogicalPair):
                current = current.project(step.index)
                continue
            raise DescendRuntimeError("tuple projections on runtime tuples are not supported")
        if isinstance(current, LogicalPair):
            raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
        if isinstance(step, SelectStep):
            exec_coords = coords.get(step.exec_var)
            if exec_coords is None:
                raise DescendRuntimeError(
                    f"`{step.exec_var}` is not a scheduled execution resource"
                )
            current = current.select(exec_coords)
            continue
        if isinstance(step, NatIdxStep):
            current = current.index(nat_value(step.nat))
            continue
        # SlotIdxStep: the index value was read from its slot local.
        current = current.index(_as_int_index(idxs[next_idx]))
        next_idx += 1

    if isinstance(current, LogicalPair):
        raise DescendRuntimeError("`split` must be followed by `.fst`/`.snd`")
    if current.is_scalar():
        return ElementSlot(buffer=root_value.buffer, offsets=current.flat_offset(()))
    return MemValue(buffer=root_value.buffer, logical=current, uniq=root_value.uniq)


def read(place: PlaceIR, root_value, idxs, nat_value, coords, ctx, mask):
    target = _eval_place(place, root_value, idxs, nat_value, coords)
    if isinstance(target, ElementSlot):
        return ctx.load(target.buffer, target.offsets, where=mask)
    if target is _LOCAL:
        return root_value
    return target


def borrow(place: PlaceIR, root_value, idxs, nat_value, coords):
    target = _eval_place(place, root_value, idxs, nat_value, coords)
    if isinstance(target, ElementSlot):
        raise DescendRuntimeError("cannot borrow a single element at runtime")
    if target is _LOCAL:
        raise DescendRuntimeError("cannot borrow a scalar local at runtime")
    return target


def store(place: PlaceIR, root_value, idxs, value, nat_value, coords, ctx, mask):
    """One assignment; returns the (possibly replaced) root slot value.

    Uniform call shape for all three target kinds: a scalar-local target
    returns the masked-merged new value (the call site rebinds the root
    local), element and whole-array targets return the root unchanged.
    """
    target = _eval_place(place, root_value, idxs, nat_value, coords)
    if target is _LOCAL:
        if mask is None:
            return value
        return np.where(mask, value, root_value)
    if isinstance(target, ElementSlot):
        ctx.store(target.buffer, target.offsets, value, where=mask)
        return root_value
    raise DescendRuntimeError(f"cannot assign a whole array at once: `{place.text}`")


def alloc(op: AllocOp, env: Dict[str, int], ctx) -> MemValue:
    shape = static_shape(op.ty, env) or (1,)
    dtype = numpy_dtype(op.ty)
    if op.space == "gpu.shared":
        # Stable per-site pool key: re-evaluating the same alloc (a loop
        # body) reuses the one per-block buffer, like the reference engine.
        buffer = ctx.shared(f"plan_shared_{op.alloc_id}", shape, dtype=dtype)
    else:
        buffer = ctx.local(shape, dtype=dtype)
    return MemValue(buffer=buffer, logical=LogicalArray.root(tuple(buffer.shape)))


# ---------------------------------------------------------------------------
# Structured control flow
# ---------------------------------------------------------------------------


def foreach_size(collection) -> int:
    if not isinstance(collection, MemValue):
        raise DescendRuntimeError("`for ... in` expects an array value")
    return int(collection.shape[0])


def foreach_element(collection: MemValue, index: int, ctx, mask):
    element = collection.logical.index(index)
    if element.is_scalar():
        return ctx.load(collection.buffer, element.flat_offset(()), where=mask)
    return MemValue(buffer=collection.buffer, logical=element)


def _raw_index(ctx, dim: DimName, over_blocks: bool) -> np.ndarray:
    source = ctx.blockIdx if over_blocks else ctx.threadIdx
    return {DimName.X: source.x, DimName.Y: source.y, DimName.Z: source.z}[dim]


def sched_enter(
    op: SchedOp, block_window, thread_window, pending_blocks, pending_threads, coords, ctx
):
    """Bind one ``sched`` op's execution coordinates; returns the restore state."""
    over_blocks = bool(pending_blocks)
    window = block_window if over_blocks else thread_window
    pending = pending_blocks if over_blocks else pending_threads

    new_coords = []
    for dim in op.dims:
        if dim not in pending:
            raise DescendRuntimeError(f"dimension {dim} is not pending for `{op.binder}`")
        lo, _hi = window[dim]
        raw = _raw_index(ctx, dim, over_blocks)
        new_coords.append(raw - lo if lo else raw)
    for dim in op.dims:
        pending.discard(dim)
    previous = coords.get(op.binder)
    coords[op.binder] = tuple(new_coords)
    return pending, previous


def sched_exit(op: SchedOp, saved, coords) -> None:
    pending, previous = saved
    if previous is None:
        coords.pop(op.binder, None)
    else:
        coords[op.binder] = previous
    for dim in op.dims:
        pending.add(dim)


def split_enter(op: SplitOp, block_window, thread_window, pending_blocks, nat_value, ctx):
    """The window/partition state of one ``split`` op.

    Returns ``(window, lo, hi, pos, first_cond)``; the generated code
    narrows ``window[op.dim]`` around each arm and restores it, exactly like
    the interpreter's ``_run_split``.
    """
    over_blocks = op.dim in pending_blocks
    window = block_window if over_blocks else thread_window
    if op.dim not in window:
        raise DescendRuntimeError(f"cannot split missing dimension {op.dim}")
    lo, hi = window[op.dim]
    pos = nat_value(op.pos)
    relative = _raw_index(ctx, op.dim, over_blocks) - lo
    return window, lo, hi, pos, relative < pos


__all__ = [
    "alloc",
    "arg",
    "borrow",
    "div",
    "foreach_element",
    "foreach_size",
    "init_windows",
    "logic_and",
    "logic_not",
    "logic_or",
    "natf",
    "ndarray",
    "read",
    "sched_enter",
    "sched_exit",
    "split_enter",
    "store",
]
