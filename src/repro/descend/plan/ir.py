"""The data-driven device-plan IR.

A :class:`DevicePlan` is a GPU Descend function lowered to a flat program of
frozen dataclass *ops* over an explicit slot table — plain data, no embedded
callables.  That makes plans

* **serializable**: ``pickle.dumps(plan)`` round-trips byte-exactly, so the
  persistent artifact store keeps whole plans as first-class ``plan``
  artifacts and warm processes (CLI invocations, sweep workers) deserialize
  them instead of re-running the lowering;
* **inspectable**: :func:`disassemble` renders the IR as deterministic text
  (the ``repro.cli plan`` sub-command, golden tests);
* **optimizable**: :mod:`repro.descend.plan.optimize` rewrites op trees with
  ``dataclasses.replace`` instead of reaching into closure cells.

The value model mirrors the closure compiler this package replaced:

* every expression op writes its result into a numbered **slot** of the
  launch's register file (one Python value per slot — a uniform scalar, a
  per-thread numpy array, or a :class:`~repro.descend.interp.values.MemValue`);
  function parameters occupy slots ``0..len(params)-1``;
* place expressions are :class:`PlaceIR` chains of data steps (views, nat
  indices, slot-valued indices, execution-resource selects) resolved against
  the views engine at execution time;
* control flow stays structured: ``if``/``split`` ops carry their body op
  tuples and the executor runs them under boolean lane masks, exactly like
  the divergence handling of the vectorized engine.

Semantics (and cycle/race parity) live in
:mod:`repro.descend.plan.execute`; this module is deliberately *just* the
data definitions plus the disassembler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple, Union

from repro.descend.ast.dims import DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.ast.types import DataType
from repro.descend.ast.views import ViewRef
from repro.descend.nat import Nat

# ---------------------------------------------------------------------------
# Place chains
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ViewStep:
    """Apply a view (``.group::<32>``); resolved against the registry at run time."""

    ref: ViewRef


@dataclass(frozen=True)
class ProjStep:
    """Project a ``split`` pair (``.fst`` = 0, ``.snd`` = 1)."""

    index: int


@dataclass(frozen=True)
class SelectStep:
    """``[[exec]]`` — index by the coordinates of a scheduled execution resource."""

    exec_var: str


@dataclass(frozen=True)
class NatIdxStep:
    """``[n]`` with a statically known (nat) index."""

    nat: Nat


@dataclass(frozen=True)
class SlotIdxStep:
    """``[e]`` with a runtime index taken from a slot."""

    slot: int


PlaceStep = Union[ViewStep, ProjStep, SelectStep, NatIdxStep, SlotIdxStep]


@dataclass(frozen=True)
class PlaceIR:
    """A lowered place expression: a root slot plus a chain of data steps.

    ``text`` preserves the surface syntax of the place for diagnostics (the
    runtime error messages must match the reference interpreter's).
    """

    root: int
    root_name: str
    steps: Tuple[PlaceStep, ...]
    text: str


# ---------------------------------------------------------------------------
# Expression ops (each writes one result slot)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstOp:
    """``%out <- const v`` — a literal value."""

    out: int
    value: Any


@dataclass(frozen=True)
class NatOp:
    """``%out <- nat η`` — evaluate a nat under the launch's nat environment."""

    out: int
    nat: Nat


@dataclass(frozen=True)
class ReadOp:
    """``%out <- read p`` — read a place (a batched load for element places)."""

    out: int
    place: PlaceIR


@dataclass(frozen=True)
class BorrowOp:
    """``%out <- borrow p`` — reborrow a memory region (no data movement)."""

    out: int
    place: PlaceIR


@dataclass(frozen=True)
class AllocOp:
    """``%out <- alloc`` — shared (per block) or local (per thread) memory.

    ``alloc_id`` is a stable per-plan counter: re-evaluating the same alloc
    site (a loop body) reuses the one pooled shared buffer, mirroring the
    reference interpreter's per-term pooling without depending on ``id()``.
    """

    out: int
    space: str  # "gpu.shared" | "gpu.local"
    ty: DataType
    alloc_id: int


@dataclass(frozen=True)
class ArithOp:
    """``%out <- %lhs op %rhs`` for ``+ - * / %`` (records one arith per lane)."""

    out: int
    op: str
    lhs: int
    rhs: int


@dataclass(frozen=True)
class FusedArithOp:
    """Two adjacent arith ops fused into one dispatch (records two ariths).

    Computes ``inner = %inner_lhs inner_op %inner_rhs`` and then
    ``%out = inner outer_op %other`` (or ``%other outer_op inner`` when
    ``inner_is_lhs`` is false).  Produced by the ``fuse-arith`` pass; the
    cost accounting is identical to the unfused pair because arithmetic is
    a pure per-lane counter.
    """

    out: int
    inner_op: str
    inner_lhs: int
    inner_rhs: int
    outer_op: str
    other: int
    inner_is_lhs: bool


@dataclass(frozen=True)
class CompareOp:
    """``%out <- %lhs cmp %rhs`` for ``< <= > >= == !=`` (no arith cost)."""

    out: int
    op: str
    lhs: int
    rhs: int


@dataclass(frozen=True)
class LogicOp:
    """``%out <- %lhs && %rhs`` / ``||`` — eager, like both engines."""

    out: int
    op: str
    lhs: int
    rhs: int


@dataclass(frozen=True)
class NegOp:
    """``%out <- -%operand`` (records one arith per lane)."""

    out: int
    operand: int


@dataclass(frozen=True)
class NotOp:
    """``%out <- !%operand`` (no arith cost)."""

    out: int
    operand: int


# ---------------------------------------------------------------------------
# Statement ops
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StoreOp:
    """``store p <- %value`` — assignment (masked merge for scalar locals)."""

    place: PlaceIR
    value: int


@dataclass(frozen=True)
class IfOp:
    """Branch on a slot; array conditions run both arms under lane masks."""

    cond: int
    then_ops: Tuple["PlanOp", ...]
    else_ops: Optional[Tuple["PlanOp", ...]]


@dataclass(frozen=True)
class ForNatOp:
    """``for var in lo..hi`` over a nat range (uniform across the grid)."""

    var: str
    lo: Nat
    hi: Nat
    body: Tuple["PlanOp", ...]


@dataclass(frozen=True)
class ForEachOp:
    """``for %var in %collection`` over the outer dimension of an array."""

    var: int
    var_name: str
    collection: int
    body: Tuple["PlanOp", ...]


@dataclass(frozen=True)
class SchedOp:
    """``sched(dims) binder { body }`` — bind execution coordinates."""

    binder: str
    dims: Tuple[DimName, ...]
    body: Tuple["PlanOp", ...]


@dataclass(frozen=True)
class SplitOp:
    """``split dim @ pos { first } { second }`` — partition the hierarchy."""

    dim: DimName
    pos: Nat
    first: Tuple["PlanOp", ...]
    second: Tuple["PlanOp", ...]


@dataclass(frozen=True)
class SyncOp:
    """``sync`` — one grid-wide barrier epoch (never under divergence)."""


PlanOp = Union[
    ConstOp,
    NatOp,
    ReadOp,
    BorrowOp,
    AllocOp,
    ArithOp,
    FusedArithOp,
    CompareOp,
    LogicOp,
    NegOp,
    NotOp,
    StoreOp,
    IfOp,
    ForNatOp,
    ForEachOp,
    SchedOp,
    SplitOp,
    SyncOp,
]

#: Expression ops with no side effects (no memory access, no arith cost):
#: the dead-slot pass may delete them when their result slot is never read.
PURE_OPS = (ConstOp, NatOp, CompareOp, LogicOp, NotOp)


@dataclass(frozen=True)
class DevicePlan:
    """A GPU Descend function lowered to the serializable plan IR.

    ``params`` names the function parameters, which occupy slots
    ``0..len(params)-1`` of the register file; ``slot_names`` is the full
    slot table (empty string for anonymous temporaries).  Everything inside
    is frozen plain data: plans pickle, hash, and compare structurally.
    """

    fun_name: str
    level: GpuGridLevel
    params: Tuple[str, ...]
    slot_names: Tuple[str, ...]
    body: Tuple[PlanOp, ...]

    @property
    def n_slots(self) -> int:
        return len(self.slot_names)

    # -- execution (delegates to the interpreter stage) ------------------------
    def execute(self, ctx, nat_env, args) -> None:
        from repro.descend.plan.execute import execute_plan

        execute_plan(self, ctx, nat_env, args)

    def entry(self, nat_env, args):
        """A vectorized kernel closure over one launch's arguments."""

        def vec_kernel(ctx) -> None:
            self.execute(ctx, nat_env, args)

        vec_kernel.__name__ = f"{self.fun_name}_plan"
        return vec_kernel


# ---------------------------------------------------------------------------
# Disassembler
# ---------------------------------------------------------------------------


def _render_place(place: PlaceIR) -> str:
    text = place.root_name
    for step in place.steps:
        if isinstance(step, ViewStep):
            text += f".{step.ref}"
        elif isinstance(step, ProjStep):
            text += ".fst" if step.index == 0 else ".snd"
        elif isinstance(step, SelectStep):
            text += f"[[{step.exec_var}]]"
        elif isinstance(step, NatIdxStep):
            text += f"[{step.nat}]"
        else:  # SlotIdxStep
            text += f"[%{step.slot}]"
    return text


def _render_op(op: PlanOp, lines, indent: int) -> None:
    pad = "  " * indent
    if isinstance(op, ConstOp):
        lines.append(f"{pad}%{op.out} <- const {op.value!r}")
    elif isinstance(op, NatOp):
        lines.append(f"{pad}%{op.out} <- nat {op.nat}")
    elif isinstance(op, ReadOp):
        lines.append(f"{pad}%{op.out} <- read {_render_place(op.place)}")
    elif isinstance(op, BorrowOp):
        lines.append(f"{pad}%{op.out} <- borrow {_render_place(op.place)}")
    elif isinstance(op, AllocOp):
        lines.append(f"{pad}%{op.out} <- alloc {op.space} {op.ty} #{op.alloc_id}")
    elif isinstance(op, ArithOp):
        lines.append(f"{pad}%{op.out} <- arith %{op.lhs} {op.op} %{op.rhs}")
    elif isinstance(op, FusedArithOp):
        inner = f"(%{op.inner_lhs} {op.inner_op} %{op.inner_rhs})"
        expr = (
            f"{inner} {op.outer_op} %{op.other}"
            if op.inner_is_lhs
            else f"%{op.other} {op.outer_op} {inner}"
        )
        lines.append(f"{pad}%{op.out} <- fused {expr}")
    elif isinstance(op, CompareOp):
        lines.append(f"{pad}%{op.out} <- cmp %{op.lhs} {op.op} %{op.rhs}")
    elif isinstance(op, LogicOp):
        lines.append(f"{pad}%{op.out} <- logic %{op.lhs} {op.op} %{op.rhs}")
    elif isinstance(op, NegOp):
        lines.append(f"{pad}%{op.out} <- neg %{op.operand}")
    elif isinstance(op, NotOp):
        lines.append(f"{pad}%{op.out} <- not %{op.operand}")
    elif isinstance(op, StoreOp):
        lines.append(f"{pad}store {_render_place(op.place)} <- %{op.value}")
    elif isinstance(op, IfOp):
        lines.append(f"{pad}if %{op.cond} {{")
        _render_ops(op.then_ops, lines, indent + 1)
        if op.else_ops is not None:
            lines.append(f"{pad}}} else {{")
            _render_ops(op.else_ops, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(op, ForNatOp):
        lines.append(f"{pad}for {op.var} in nat {op.lo}..{op.hi} {{")
        _render_ops(op.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(op, ForEachOp):
        lines.append(f"{pad}for %{op.var} ({op.var_name}) in %{op.collection} {{")
        _render_ops(op.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(op, SchedOp):
        dims = ",".join(d.name for d in op.dims)
        lines.append(f"{pad}sched({dims}) {op.binder} {{")
        _render_ops(op.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(op, SplitOp):
        lines.append(f"{pad}split {op.dim.name} @ {op.pos} {{")
        _render_ops(op.first, lines, indent + 1)
        lines.append(f"{pad}}} {{")
        _render_ops(op.second, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(op, SyncOp):
        lines.append(f"{pad}sync")
    else:  # pragma: no cover - keep the disassembler total over the op union
        lines.append(f"{pad}<unknown op {type(op).__name__}>")


def _render_ops(ops, lines, indent: int) -> None:
    for op in ops:
        _render_op(op, lines, indent)


def disassemble(plan: DevicePlan) -> str:
    """Deterministic textual form of a plan (debugging, golden tests)."""
    lines = [f"plan {plan.fun_name} exec {plan.level.describe()}"]
    params = ", ".join(f"%{i}={name}" for i, name in enumerate(plan.params)) or "(none)"
    lines.append(f"params: {params}")
    named = ", ".join(
        f"%{i}={name}"
        for i, name in enumerate(plan.slot_names)
        if name and i >= len(plan.params)
    )
    lines.append(f"slots: {plan.n_slots}" + (f" ({named})" if named else ""))
    lines.append("body:")
    _render_ops(plan.body, lines, 1)
    return "\n".join(lines) + "\n"
