"""Syntactic disjointness of place expressions.

Like Rust (and Oxide), Descend compares place expressions syntactically to
decide whether two accesses may touch overlapping memory.  The analysis here
is deliberately conservative: it only reports ``DISJOINT`` when the two place
expressions *provably* denote non-overlapping memory regions, and reports
``MAY_OVERLAP`` otherwise.

Sources of provable disjointness (Section 3.2):

* different projections out of a tuple (``p.fst`` vs ``p.snd``),
* the two halves of the *same* ``split`` view (``p.split::<k>.fst`` vs
  ``p.split::<k>.snd``),
* indexing with provably distinct static indices (``p[0]`` vs ``p[1]``),
* different root variables (different allocations).

Two *identical* place expressions are not disjoint, but they are also not a
data race when they are accessed by the same (collection of) execution
resources: each instance touches exactly the same element it already owns.
That case is handled by the access-conflict check, not here.
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.descend.ast.places import (
    PDeref,
    PIdx,
    PProj,
    PSelect,
    PVar,
    PView,
    PlaceExpr,
)
from repro.descend.nat import Nat, nat_equal, nat_known_distinct


class Overlap(enum.Enum):
    """Result of comparing two place expressions."""

    DISJOINT = "disjoint"
    IDENTICAL = "identical"
    MAY_OVERLAP = "may-overlap"


def _normalized_parts(place: PlaceExpr) -> List[PlaceExpr]:
    """The chain of a place expression with dereferences removed.

    Dereferences do not change *which* memory is denoted (the reference's
    target), so they are transparent for overlap purposes: ``(*arr)[i]`` and
    ``arr[i]`` denote the same element.
    """
    return [part for part in place.parts() if not isinstance(part, PDeref)]


def _same_step(a: PlaceExpr, b: PlaceExpr) -> bool:
    """Whether two chain steps are syntactically the same access step."""
    if isinstance(a, PVar) and isinstance(b, PVar):
        return a.name == b.name
    if isinstance(a, PProj) and isinstance(b, PProj):
        return a.index == b.index
    if isinstance(a, PSelect) and isinstance(b, PSelect):
        return a.exec_var == b.exec_var
    if isinstance(a, PView) and isinstance(b, PView):
        return str(a.ref) == str(b.ref)
    if isinstance(a, PIdx) and isinstance(b, PIdx):
        if isinstance(a.index, Nat) and isinstance(b.index, Nat):
            return nat_equal(a.index, b.index)
        return str(a.index) == str(b.index)
    return False


def _steps_disjoint(a: PlaceExpr, b: PlaceExpr, previous_was_split: bool) -> bool:
    """Whether two *differing* chain steps prove the places disjoint."""
    if isinstance(a, PProj) and isinstance(b, PProj) and a.index != b.index:
        # Tuple fields are separate regions; so are the two halves of a split
        # view (which is the only way a projection follows a view).
        return True
    if isinstance(a, PIdx) and isinstance(b, PIdx):
        if isinstance(a.index, Nat) and isinstance(b.index, Nat):
            return nat_known_distinct(a.index, b.index)
        return False
    return False


def compare_places(a: PlaceExpr, b: PlaceExpr) -> Overlap:
    """Compare two place expressions syntactically.

    The comparison is pure and place expressions are immutable value
    objects, so results are memoized: the access-conflict check compares
    every new access against all recorded ones, which revisits the same
    handful of place pairs throughout a function body.
    """
    try:
        return _compare_places_cached(a, b)
    except TypeError:  # an unhashable index term; compare uncached
        return _compare_places_impl(a, b)


@lru_cache(maxsize=65536)
def _compare_places_cached(a: PlaceExpr, b: PlaceExpr) -> Overlap:
    return _compare_places_impl(a, b)


def clear_overlap_cache() -> None:
    """Drop the memoized place comparisons (cold-cache benchmarking)."""
    _compare_places_cached.cache_clear()


def _compare_places_impl(a: PlaceExpr, b: PlaceExpr) -> Overlap:
    parts_a = _normalized_parts(a)
    parts_b = _normalized_parts(b)

    root_a = parts_a[0]
    root_b = parts_b[0]
    if isinstance(root_a, PVar) and isinstance(root_b, PVar) and root_a.name != root_b.name:
        return Overlap.DISJOINT

    previous_was_split = False
    for step_a, step_b in zip(parts_a, parts_b):
        if _same_step(step_a, step_b):
            previous_was_split = isinstance(step_a, PView) and step_a.ref.name == "split"
            continue
        if _steps_disjoint(step_a, step_b, previous_was_split):
            return Overlap.DISJOINT
        return Overlap.MAY_OVERLAP

    if len(parts_a) == len(parts_b):
        return Overlap.IDENTICAL
    # One place is a prefix of the other: the shorter one covers the longer one.
    return Overlap.MAY_OVERLAP


def places_may_overlap(a: PlaceExpr, b: PlaceExpr) -> bool:
    """True unless the two places are provably disjoint."""
    return compare_places(a, b) is not Overlap.DISJOINT


def place_contains(outer: PlaceExpr, inner: PlaceExpr) -> bool:
    """Whether ``outer`` denotes a region that contains the region of ``inner``.

    Used by borrow checking: a loan of ``x`` blocks accesses to ``x[i]`` and
    vice versa; here we specifically ask whether ``outer`` is a (syntactic)
    prefix of ``inner``.
    """
    parts_outer = _normalized_parts(outer)
    parts_inner = _normalized_parts(inner)
    if len(parts_outer) > len(parts_inner):
        return False
    return all(_same_step(o, i) for o, i in zip(parts_outer, parts_inner))
