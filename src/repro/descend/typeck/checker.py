"""The typing rules of Descend.

:class:`TypeChecker` implements the flow-sensitive typing judgement of
Section 4 for whole programs, functions, and every term of Figure 5.  The
GPU-specific safety checks (narrowing, access conflicts, borrow checking) are
delegated to :mod:`repro.descend.typeck.access_check`; the structural typing
of place expressions to :mod:`repro.descend.typeck.place_typing`.

The checker is eager: the first violation raises a
:class:`~repro.errors.DescendTypeError` carrying a diagnostic with the error
code and labels used to render the messages shown in Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim, DimName
from repro.descend.ast.exec_level import (
    CpuThreadLevel,
    ExecSpec,
    GpuBlockLevel,
    GpuGridLevel,
    GpuThreadLevel,
)
from repro.descend.ast.exec_resources import (
    CpuThreadRes,
    ExecResource,
    ForallRes,
    GpuGridRes,
    make_split,
)
from repro.descend.ast.memory import CPU_MEM, GPU_GLOBAL, GPU_LOCAL, GPU_SHARED, Memory
from repro.descend.ast.places import PVar, PlaceExpr
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    BOOL,
    DataType,
    F32,
    F64,
    FnType,
    GenericParam,
    I32,
    Kind,
    RefType,
    ScalarType,
    TupleType,
    UNIT,
    assignable,
    types_equal,
)
from repro.descend.diagnostics import Diagnostic, DiagnosticBag
from repro.descend.nat import Nat, NatError, nat_le
from repro.descend.source import NO_SPAN, SourceFile, Span
from repro.descend.typeck.access_check import SHRD, UNIQ, access_safety_check
from repro.descend.typeck.context import (
    GlobalEnv,
    Loan,
    SchedFrame,
    TypingContext,
    VarInfo,
)
from repro.descend.typeck.place_typing import PlaceInfo, type_place
from repro.errors import DescendError, DescendTypeError


#: Built-in host operations of the prelude (handled specially by the checker).
BUILTIN_FUNCTIONS = (
    "CpuHeap::new",
    "GpuGlobal::alloc",
    "GpuGlobal::alloc_copy",
    "copy_mem_to_host",
    "copy_mem_to_gpu",
)


@dataclass
class CheckedProgram:
    """A program that passed type checking, plus collected warnings."""

    program: T.Program
    fn_types: Dict[str, FnType]
    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)

    def fun(self, name: str) -> T.FunDef:
        return self.program.fun(name)


def check_program(program: T.Program, source: Optional[SourceFile] = None) -> CheckedProgram:
    """Type check a whole program; raises :class:`DescendTypeError` on failure."""
    return TypeChecker(program, source).check()


class TypeChecker:
    """Type checks Descend programs."""

    def __init__(self, program: T.Program, source: Optional[SourceFile] = None) -> None:
        self.program = program
        self.source = source
        self.globals = GlobalEnv()
        self.diagnostics = DiagnosticBag()

    # ------------------------------------------------------------------
    # Programs and functions
    # ------------------------------------------------------------------

    def check(self) -> CheckedProgram:
        fn_types: Dict[str, FnType] = {}
        for fun_def in self.program.fun_defs:
            if self.globals.known(fun_def.name):
                raise DescendTypeError(
                    f"function `{fun_def.name}` is defined twice",
                    Diagnostic.error("E0009", f"function `{fun_def.name}` is defined twice", fun_def.span),
                )
            fn_type = fun_def.fn_type()
            self.globals.declare(fun_def.name, fn_type)
            fn_types[fun_def.name] = fn_type
        for fun_def in self.program.fun_defs:
            self.check_fun(fun_def)
        return CheckedProgram(self.program, fn_types, self.diagnostics)

    def _root_exec(self, exec_spec: ExecSpec) -> ExecResource:
        level = exec_spec.level
        if isinstance(level, CpuThreadLevel):
            return CpuThreadRes()
        if isinstance(level, GpuGridLevel):
            return GpuGridRes(level.blocks, level.threads)
        if isinstance(level, GpuBlockLevel):
            # A block-level function is checked as if the grid had already been
            # scheduled over its (symbolic) blocks.
            grid = GpuGridRes(Dim.of(x="__blocks"), level.threads)
            return ForallRes(grid, (DimName.X,))
        if isinstance(level, GpuThreadLevel):
            grid = GpuGridRes(Dim.of(x="__blocks"), Dim.of(x="__threads"))
            return ForallRes(ForallRes(grid, (DimName.X,)), (DimName.X,))
        raise DescendTypeError(f"unsupported execution level {level}")

    def check_fun(self, fun_def: T.FunDef) -> None:
        ctx = TypingContext(
            globals_env=self.globals,
            exec_spec=fun_def.exec_spec,
            root_exec=self._root_exec(fun_def.exec_spec),
            source=self.source,
        )
        for generic in fun_def.generics:
            ctx.kinds.declare(generic.name, generic.kind)
        for param in fun_def.params:
            ctx.locals.declare(
                VarInfo(
                    name=param.name,
                    ty=param.ty,
                    owner_depth=0,
                    mem=None,
                    is_param=True,
                    span=param.span,
                )
            )
        body_ty = self.check_term(ctx, fun_def.body)
        if not types_equal(fun_def.ret, UNIT) and not assignable(fun_def.ret, body_ty):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    f"mismatched types: function `{fun_def.name}` returns `{fun_def.ret}` "
                    f"but its body has type `{body_ty}`",
                    fun_def.span,
                )
            )

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------

    def check_term(self, ctx: TypingContext, term: T.Term) -> DataType:
        if isinstance(term, T.Lit):
            return term.ty
        if isinstance(term, T.NatTerm):
            return I32
        if isinstance(term, T.PlaceTerm):
            return self._check_place_read(ctx, term)
        if isinstance(term, T.BinaryOp):
            return self._check_binary(ctx, term)
        if isinstance(term, T.UnaryOp):
            return self._check_unary(ctx, term)
        if isinstance(term, T.Borrow):
            return self._check_borrow(ctx, term)
        if isinstance(term, T.LetTerm):
            return self._check_let(ctx, term)
        if isinstance(term, T.Assign):
            return self._check_assign(ctx, term)
        if isinstance(term, T.Block):
            return self._check_block(ctx, term)
        if isinstance(term, T.IfTerm):
            return self._check_if(ctx, term)
        if isinstance(term, T.ForNat):
            return self._check_for_nat(ctx, term)
        if isinstance(term, T.ForEach):
            return self._check_for_each(ctx, term)
        if isinstance(term, T.Sched):
            return self._check_sched(ctx, term)
        if isinstance(term, T.SplitExec):
            return self._check_split(ctx, term)
        if isinstance(term, T.Sync):
            return self._check_sync(ctx, term)
        if isinstance(term, T.Alloc):
            return self._check_alloc(ctx, term)
        if isinstance(term, T.ArrayInit):
            return self._check_array_init(ctx, term)
        if isinstance(term, T.FnApp):
            return self._check_fn_app(ctx, term)
        if isinstance(term, T.KernelLaunch):
            return self._check_kernel_launch(ctx, term)
        raise DescendTypeError(f"cannot type check term {term!r}")

    # -- reads, writes, borrows ------------------------------------------------

    def _check_memory_context(self, ctx: TypingContext, info: PlaceInfo, span: Span) -> None:
        """References must only be dereferenced in the correct execution context."""
        mem_name = str(info.mem)
        if ctx.exec_spec.is_gpu() and mem_name == "cpu.mem":
            diagnostic = Diagnostic.error(
                "E0004",
                f"cannot dereference `{info.place}` pointing to `cpu.mem`",
                span,
                label="dereferencing pointer to `cpu.mem` memory",
            )
            diagnostic.with_label(
                NO_SPAN,
                f"this code is executed by `{ctx.current_exec.describe()}`",
                primary=False,
            )
            raise ctx.error(diagnostic)
        if not ctx.exec_spec.is_gpu() and mem_name in ("gpu.global", "gpu.shared", "gpu.local"):
            raise ctx.error(
                Diagnostic.error(
                    "E0004",
                    f"cannot access `{info.place}` in `{mem_name}` from the CPU",
                    span,
                    label="GPU memory can only be accessed by GPU code "
                    "(use `copy_mem_to_host` to read it on the host)",
                )
            )

    def _check_place_read(self, ctx: TypingContext, term: T.PlaceTerm) -> DataType:
        info = type_place(ctx, term.place, term.span)
        if info.ty.is_copyable():
            self._check_memory_context(ctx, info, term.span)
            access_safety_check(ctx, info, SHRD, term.span)
            return info.ty
        # Non-copyable values are moved; only whole variables can be moved out of.
        if not isinstance(term.place, PVar):
            raise ctx.error(
                Diagnostic.error(
                    "E0007",
                    f"cannot move out of `{term.place}`",
                    term.span,
                    label="only whole variables can be moved; consider borrowing instead",
                )
            )
        access_safety_check(ctx, info, UNIQ, term.span)
        ctx.locals.mark_moved(term.place.name)
        return info.ty

    def _check_borrow(self, ctx: TypingContext, term: T.Borrow) -> DataType:
        info = type_place(ctx, term.place, term.span)
        if term.uniq and not info.writable:
            raise ctx.error(
                Diagnostic.error(
                    "E0014",
                    f"cannot borrow `{term.place}` as unique through a shared reference",
                    term.span,
                )
            )
        access_safety_check(ctx, info, UNIQ if term.uniq else SHRD, term.span)
        ctx.locals.add_loan(
            Loan(
                place=term.place,
                uniq=term.uniq,
                root=info.root_name,
                mem=info.mem,
                depth=ctx.sched_depth,
                span=term.span,
            )
        )
        return RefType(term.uniq, info.mem, info.ty)

    def _check_assign(self, ctx: TypingContext, term: T.Assign) -> DataType:
        value_ty = self.check_term(ctx, term.value)
        info = type_place(ctx, term.place, term.span)
        self._check_memory_context(ctx, info, term.span)
        if not info.writable:
            raise ctx.error(
                Diagnostic.error(
                    "E0014",
                    f"cannot assign to `{term.place}`, which is behind a shared reference",
                    term.span,
                    label="writing requires a unique (`&uniq`) reference",
                )
            )
        if not assignable(info.ty, value_ty):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    "mismatched types in assignment",
                    term.span,
                    label=f"expected `{info.ty}`, found `{value_ty}`",
                )
            )
        access_safety_check(ctx, info, UNIQ, term.span)
        return UNIT

    # -- expressions -------------------------------------------------------------

    _ARITH_OPS = ("+", "-", "*", "/", "%")
    _COMPARE_OPS = ("<", "<=", ">", ">=", "==", "!=")
    _LOGIC_OPS = ("&&", "||")

    def _check_binary(self, ctx: TypingContext, term: T.BinaryOp) -> DataType:
        lhs = self.check_term(ctx, term.lhs)
        rhs = self.check_term(ctx, term.rhs)
        if term.op in self._LOGIC_OPS:
            if not (types_equal(lhs, BOOL) and types_equal(rhs, BOOL)):
                raise self._binary_error(ctx, term, lhs, rhs)
            return BOOL
        if not (isinstance(lhs, ScalarType) and isinstance(rhs, ScalarType)):
            raise self._binary_error(ctx, term, lhs, rhs)
        if not (lhs.is_numeric() and rhs.is_numeric()):
            raise self._binary_error(ctx, term, lhs, rhs)
        if lhs.is_float() != rhs.is_float():
            raise self._binary_error(ctx, term, lhs, rhs)
        if term.op in self._COMPARE_OPS:
            return BOOL
        if term.op in self._ARITH_OPS:
            # float types unify to the wider one; integers keep the lhs type
            if lhs.is_float():
                return F64 if "f64" in (lhs.name, rhs.name) else F32
            return lhs
        raise ctx.error(
            Diagnostic.error("E0011", f"unsupported binary operator `{term.op}`", term.span)
        )

    def _binary_error(self, ctx: TypingContext, term: T.BinaryOp, lhs: DataType, rhs: DataType):
        return ctx.error(
            Diagnostic.error(
                "E0011",
                f"invalid operands for `{term.op}`",
                term.span,
                label=f"left operand has type `{lhs}`, right operand has type `{rhs}`",
            )
        )

    def _check_unary(self, ctx: TypingContext, term: T.UnaryOp) -> DataType:
        operand = self.check_term(ctx, term.operand)
        if term.op == "!":
            if not types_equal(operand, BOOL):
                raise ctx.error(
                    Diagnostic.error("E0011", "`!` expects a boolean operand", term.span)
                )
            return BOOL
        if term.op == "-":
            if not (isinstance(operand, ScalarType) and operand.is_numeric()):
                raise ctx.error(
                    Diagnostic.error("E0011", "unary `-` expects a numeric operand", term.span)
                )
            return operand
        raise ctx.error(
            Diagnostic.error("E0011", f"unsupported unary operator `{term.op}`", term.span)
        )

    # -- bindings and blocks --------------------------------------------------------

    def _check_let(self, ctx: TypingContext, term: T.LetTerm) -> DataType:
        init_ty = self.check_term(ctx, term.init)
        if term.ty is not None and not assignable(term.ty, init_ty):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    f"mismatched types in `let {term.name}`",
                    term.span,
                    label=f"expected `{term.ty}`, found `{init_ty}`",
                )
            )
        declared_ty = term.ty if term.ty is not None else init_ty
        mem: Optional[Memory] = None
        if isinstance(term.init, T.Alloc):
            mem = term.init.mem
        ctx.locals.declare(
            VarInfo(
                name=term.name,
                ty=declared_ty,
                owner_depth=ctx.sched_depth,
                mem=mem,
                span=term.span,
            )
        )
        return UNIT

    def _check_block(self, ctx: TypingContext, term: T.Block) -> DataType:
        ctx.locals.push_scope()
        last_ty: DataType = UNIT
        try:
            for stmt in term.stmts:
                loans_before = len(ctx.locals.active_loans())
                last_ty = self.check_term(ctx, stmt)
                keep_loans = isinstance(stmt, T.LetTerm) and isinstance(stmt.init, T.Borrow)
                if not keep_loans:
                    self._truncate_loans(ctx, loans_before)
        finally:
            ctx.locals.pop_scope()
        return last_ty

    @staticmethod
    def _truncate_loans(ctx: TypingContext, count: int) -> None:
        """Release temporary borrows created while checking a statement (Θ)."""
        loans = ctx.locals._loan_scopes[-1]
        total = len(ctx.locals.active_loans())
        excess = total - count
        if excess > 0:
            del loans[len(loans) - excess:]

    def _check_if(self, ctx: TypingContext, term: T.IfTerm) -> DataType:
        cond_ty = self.check_term(ctx, term.cond)
        if not types_equal(cond_ty, BOOL):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    "the condition of an `if` must be a boolean",
                    term.span,
                    label=f"found `{cond_ty}`",
                )
            )
        self.check_term(ctx, term.then)
        if term.otherwise is not None:
            self.check_term(ctx, term.otherwise)
        return UNIT

    # -- loops ------------------------------------------------------------------------

    def _check_for_nat(self, ctx: TypingContext, term: T.ForNat) -> DataType:
        self._check_nat_wellformed(ctx, term.lo, term.span)
        self._check_nat_wellformed(ctx, term.hi, term.span)
        already_bound = ctx.kinds.kind_of(term.var)
        ctx.kinds.declare(term.var, Kind.NAT)
        try:
            self.check_term(ctx, term.body)
            # Second pass: catch conflicts between accesses of *different* loop
            # iterations (which need a barrier in between).
            previous = ctx.loop_recheck
            ctx.loop_recheck = True
            try:
                self.check_term(ctx, term.body)
            finally:
                ctx.loop_recheck = previous
        finally:
            if already_bound is not None:
                ctx.kinds.declare(term.var, already_bound)
            else:
                ctx.kinds.remove(term.var)
        return UNIT

    def _check_for_each(self, ctx: TypingContext, term: T.ForEach) -> DataType:
        collection_ty = self.check_term(ctx, term.collection)
        if not isinstance(collection_ty, (ArrayType, ArrayViewType)):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    "`for ... in` expects an array or view",
                    term.span,
                    label=f"found `{collection_ty}`",
                )
            )
        ctx.locals.push_scope()
        ctx.locals.declare(
            VarInfo(
                name=term.var,
                ty=collection_ty.elem,
                owner_depth=ctx.sched_depth,
                span=term.span,
            )
        )
        try:
            self.check_term(ctx, term.body)
        finally:
            ctx.locals.pop_scope()
        return UNIT

    def _check_nat_wellformed(self, ctx: TypingContext, nat: Nat, span: Span) -> None:
        for name in nat.free_vars():
            kind = ctx.kinds.kind_of(name)
            if kind is None:
                raise ctx.error(
                    Diagnostic.error(
                        "E0009",
                        f"unknown natural number variable `{name}`",
                        span,
                    )
                )
            if kind != Kind.NAT:
                raise ctx.error(
                    Diagnostic.error(
                        "E0012",
                        f"`{name}` is a `{kind}` variable but is used as a natural number",
                        span,
                    )
                )

    # -- the execution hierarchy ---------------------------------------------------------

    def _check_sched(self, ctx: TypingContext, term: T.Sched) -> DataType:
        resource = ctx.exec_of(term.exec_name)
        if resource is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0009",
                    f"unknown execution resource `{term.exec_name}`",
                    term.span,
                )
            )
        if term.exec_name != ctx.current_exec_binder:
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"cannot schedule over `{term.exec_name}` here",
                    term.span,
                    label=f"the code at this point is executed by `{ctx.current_exec_binder}`",
                )
            )
        if resource.base_grid() is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    "`sched` can only be used on GPU execution resources",
                    term.span,
                )
            )
        try:
            extents = resource.forall_extents(term.dims)
        except DescendError as exc:
            raise ctx.error(
                Diagnostic.error("E0010", f"illegal scheduling: {exc}", term.span)
            ) from None

        new_res = ForallRes(resource, term.dims)
        frame = SchedFrame(
            binder=term.binder,
            resource=new_res,
            extents=extents,
            depth=ctx.sched_depth + 1,
        )
        previous_exec = ctx.current_exec
        previous_binder = ctx.current_exec_binder
        ctx.push_sched_frame(frame)
        shadowed = ctx.bind_exec(term.binder, new_res)
        ctx.current_exec = new_res
        ctx.current_exec_binder = term.binder
        try:
            self.check_term(ctx, term.body)
        finally:
            ctx.current_exec = previous_exec
            ctx.current_exec_binder = previous_binder
            ctx.unbind_exec(term.binder, shadowed)
            ctx.pop_sched_frame()
        return UNIT

    def _check_split(self, ctx: TypingContext, term: T.SplitExec) -> DataType:
        resource = ctx.exec_of(term.exec_name)
        if resource is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0009", f"unknown execution resource `{term.exec_name}`", term.span
                )
            )
        if term.exec_name != ctx.current_exec_binder:
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"cannot split `{term.exec_name}` here",
                    term.span,
                    label=f"the code at this point is executed by `{ctx.current_exec_binder}`",
                )
            )
        if resource.base_grid() is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0010", "`split` can only be used on GPU execution resources", term.span
                )
            )
        pending = resource.pending_block_dims() or resource.pending_thread_dims()
        if term.dim not in pending:
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"cannot split dimension {term.dim}: it is not an unscheduled dimension "
                    f"of `{term.exec_name}`",
                    term.span,
                )
            )
        self._check_nat_wellformed(ctx, term.pos, term.span)
        extent = resource._extent_of(term.dim, over_blocks=bool(resource.pending_block_dims()))
        if nat_le(term.pos, extent) is False:
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"split position {term.pos} exceeds the extent {extent} of dimension {term.dim}",
                    term.span,
                )
            )

        first_res, second_res = make_split(resource, term.dim, term.pos)
        for binder, body, res in (
            (term.first_binder, term.first_body, first_res),
            (term.second_binder, term.second_body, second_res),
        ):
            previous_exec = ctx.current_exec
            previous_binder = ctx.current_exec_binder
            shadowed = ctx.bind_exec(binder, res)
            ctx.current_exec = res
            ctx.current_exec_binder = binder
            try:
                self.check_term(ctx, body)
            finally:
                ctx.current_exec = previous_exec
                ctx.current_exec_binder = previous_binder
                ctx.unbind_exec(binder, shadowed)
        return UNIT

    def _check_sync(self, ctx: TypingContext, term: T.Sync) -> DataType:
        resource = ctx.current_exec
        if resource.base_grid() is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0002",
                    "barrier not allowed here",
                    term.span,
                    label="`sync` can only be used in GPU code",
                )
            )
        if not resource.blocks_fully_scheduled():
            raise ctx.error(
                Diagnostic.error(
                    "E0002",
                    "barrier not allowed here",
                    term.span,
                    label="`sync` synchronises the threads of one block; schedule the "
                    "blocks of the grid first",
                )
            )
        if resource.has_thread_split():
            diagnostic = Diagnostic.error(
                "E0002",
                "barrier not allowed here",
                term.span,
                label="`sync` not performed by all threads in the block",
            )
            diagnostic.with_label(
                NO_SPAN,
                f"the block is split here: `{ctx.current_exec_binder}` only contains part "
                "of the block's threads",
                primary=False,
            )
            raise ctx.error(diagnostic)
        ctx.accesses.clear_for_sync()
        ctx.locals.release_shared_memory_loans()
        return UNIT

    # -- allocation --------------------------------------------------------------------

    def _check_alloc(self, ctx: TypingContext, term: T.Alloc) -> DataType:
        mem_name = str(term.mem)
        resource = ctx.current_exec
        if mem_name == "gpu.shared":
            if not ctx.exec_spec.is_gpu() or not resource.is_block_level():
                raise ctx.error(
                    Diagnostic.error(
                        "E0013",
                        "shared memory must be allocated at block level",
                        term.span,
                        label="allocate with `alloc::<gpu.shared, _>()` after scheduling "
                        "the blocks of the grid but before scheduling their threads",
                    )
                )
        elif mem_name == "gpu.local":
            if not ctx.exec_spec.is_gpu() or not resource.is_single_thread():
                raise ctx.error(
                    Diagnostic.error(
                        "E0013",
                        "private (gpu.local) memory must be allocated by a single thread",
                        term.span,
                    )
                )
        elif mem_name == "cpu.mem":
            if ctx.exec_spec.is_gpu():
                raise ctx.error(
                    Diagnostic.error(
                        "E0013",
                        "CPU memory cannot be allocated from GPU code",
                        term.span,
                    )
                )
        else:
            raise ctx.error(
                Diagnostic.error(
                    "E0013",
                    f"cannot allocate in memory space `{term.mem}`",
                    term.span,
                )
            )
        return term.ty

    def _check_array_init(self, ctx: TypingContext, term: T.ArrayInit) -> DataType:
        elem_ty = self.check_term(ctx, term.value)
        self._check_nat_wellformed(ctx, term.size, term.span)
        return ArrayType(elem_ty, term.size)

    # -- calls --------------------------------------------------------------------------

    def _check_fn_app(self, ctx: TypingContext, term: T.FnApp) -> DataType:
        if term.name in BUILTIN_FUNCTIONS:
            return self._check_builtin(ctx, term)
        fn_type = ctx.globals.lookup(term.name)
        if fn_type is None:
            raise ctx.error(
                Diagnostic.error(
                    "E0009", f"cannot find function `{term.name}`", term.span
                )
            )
        self._check_call_exec_level(ctx, fn_type, term.span, term.name)
        nat_subst, mem_subst, ty_subst = self._build_substitution(ctx, fn_type, term)
        arg_types = [self.check_term(ctx, arg) for arg in term.args]
        expected = [
            p.substitute(nat_subst, mem_subst, ty_subst) for p in fn_type.params
        ]
        if len(arg_types) != len(expected):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    f"`{term.name}` expects {len(expected)} argument(s), got {len(arg_types)}",
                    term.span,
                )
            )
        for index, (exp, found) in enumerate(zip(expected, arg_types)):
            if not assignable(exp, found):
                raise self._argument_error(ctx, term, index, exp, found)
        return fn_type.ret.substitute(nat_subst, mem_subst, ty_subst)

    def _argument_error(self, ctx, term, index, expected, found):
        label = f"expected `{expected}`, found `{found}`"
        if isinstance(expected, RefType) and isinstance(found, RefType) and str(expected.mem) != str(found.mem):
            label = (
                f"expected reference to `{expected.mem}`, found reference to `{found.mem}`"
            )
        return ctx.error(
            Diagnostic.error(
                "E0003" if "reference" in label else "E0011",
                "mismatched types",
                term.args[index].span if index < len(term.args) else term.span,
                label=label,
            )
        )

    def _check_call_exec_level(self, ctx: TypingContext, fn_type: FnType, span: Span, name: str) -> None:
        level = fn_type.exec_spec.level
        if isinstance(level, GpuGridLevel):
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{name}` is executed by a GPU grid and must be launched with "
                    f"`{name}::<<<...>>>(...)`",
                    span,
                )
            )
        if isinstance(level, CpuThreadLevel) and ctx.exec_spec.is_gpu():
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{name}` is a CPU function and cannot be called from GPU code",
                    span,
                )
            )
        if isinstance(level, GpuThreadLevel) and not ctx.current_exec.is_single_thread():
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{name}` must be called by a single GPU thread",
                    span,
                )
            )
        if isinstance(level, GpuBlockLevel) and not ctx.current_exec.is_block_level():
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{name}` must be called at block level",
                    span,
                )
            )

    def _build_substitution(
        self, ctx: TypingContext, fn_type: FnType, term: T.FnApp
    ) -> Tuple[Dict[str, Nat], Dict[str, Memory], Dict[str, DataType]]:
        nat_params = [g.name for g in fn_type.generics if g.kind == Kind.NAT]
        mem_params = [g.name for g in fn_type.generics if g.kind == Kind.MEMORY]
        ty_params = [g.name for g in fn_type.generics if g.kind == Kind.DATA_TYPE]
        if (
            len(nat_params) != len(term.nat_args)
            or len(mem_params) != len(term.mem_args)
            or len(ty_params) != len(term.ty_args)
        ):
            raise ctx.error(
                Diagnostic.error(
                    "E0012",
                    f"`{term.name}` expects {len(nat_params)} nat, {len(mem_params)} memory and "
                    f"{len(ty_params)} data-type argument(s)",
                    term.span,
                )
            )
        for nat in term.nat_args:
            self._check_nat_wellformed(ctx, nat, term.span)
        nat_subst = dict(zip(nat_params, term.nat_args))
        mem_subst = dict(zip(mem_params, term.mem_args))
        ty_subst = dict(zip(ty_params, term.ty_args))
        return nat_subst, mem_subst, ty_subst

    def _check_builtin(self, ctx: TypingContext, term: T.FnApp) -> DataType:
        name = term.name
        span = term.span
        if ctx.exec_spec.is_gpu():
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{name}` manages CPU/GPU memory and can only be called from the host",
                    span,
                )
            )
        args = [self.check_term(ctx, arg) for arg in term.args]

        if name == "CpuHeap::new":
            self._expect_arg_count(ctx, term, 1)
            return AtType(args[0], CPU_MEM)
        if name == "GpuGlobal::alloc":
            if len(term.ty_args) != 1:
                raise ctx.error(
                    Diagnostic.error(
                        "E0012", "`GpuGlobal::alloc` expects one type argument", span
                    )
                )
            self._expect_arg_count(ctx, term, 0)
            return AtType(term.ty_args[0], GPU_GLOBAL)
        if name == "GpuGlobal::alloc_copy":
            self._expect_arg_count(ctx, term, 1)
            source_ty = args[0]
            if not (isinstance(source_ty, RefType) and str(source_ty.mem) == "cpu.mem"):
                raise ctx.error(
                    Diagnostic.error(
                        "E0003",
                        "mismatched types",
                        term.args[0].span if term.args else span,
                        label=f"expected reference to `cpu.mem`, found `{source_ty}`",
                    )
                )
            return AtType(source_ty.referent, GPU_GLOBAL)
        if name in ("copy_mem_to_host", "copy_mem_to_gpu"):
            self._expect_arg_count(ctx, term, 2)
            dst_ty, src_ty = args
            if name == "copy_mem_to_host":
                expected_dst_mem, expected_src_mem = "cpu.mem", "gpu.global"
            else:
                expected_dst_mem, expected_src_mem = "gpu.global", "cpu.mem"
            self._check_copy_ref(ctx, term, 0, dst_ty, expected_dst_mem, must_be_uniq=True)
            self._check_copy_ref(ctx, term, 1, src_ty, expected_src_mem, must_be_uniq=False)
            if (
                isinstance(dst_ty, RefType)
                and isinstance(src_ty, RefType)
                and not types_equal(dst_ty.referent, src_ty.referent)
            ):
                raise ctx.error(
                    Diagnostic.error(
                        "E0011",
                        "mismatched types",
                        span,
                        label=f"cannot copy `{src_ty.referent}` into `{dst_ty.referent}`",
                    )
                )
            return UNIT
        raise ctx.error(
            Diagnostic.error("E0009", f"unknown built-in function `{name}`", span)
        )

    def _check_copy_ref(
        self,
        ctx: TypingContext,
        term: T.FnApp,
        index: int,
        found: DataType,
        expected_mem: str,
        must_be_uniq: bool,
    ) -> None:
        span = term.args[index].span if index < len(term.args) else term.span
        if not isinstance(found, RefType):
            raise ctx.error(
                Diagnostic.error(
                    "E0003",
                    "mismatched types",
                    span,
                    label=f"expected reference to `{expected_mem}`, found `{found}`",
                )
            )
        if str(found.mem) != expected_mem:
            raise ctx.error(
                Diagnostic.error(
                    "E0003",
                    "mismatched types",
                    span,
                    label=f"expected reference to `{expected_mem}`, found reference to `{found.mem}`",
                )
            )
        if must_be_uniq and not found.uniq:
            raise ctx.error(
                Diagnostic.error(
                    "E0014",
                    "the destination of a copy must be a unique reference",
                    span,
                )
            )

    def _expect_arg_count(self, ctx: TypingContext, term: T.FnApp, count: int) -> None:
        if len(term.args) != count:
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    f"`{term.name}` expects {count} argument(s), got {len(term.args)}",
                    term.span,
                )
            )

    def _check_kernel_launch(self, ctx: TypingContext, term: T.KernelLaunch) -> DataType:
        if ctx.exec_spec.is_gpu():
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    "GPU functions can only be launched from the host",
                    term.span,
                )
            )
        fn_type = ctx.globals.lookup(term.name)
        if fn_type is None:
            raise ctx.error(
                Diagnostic.error("E0009", f"cannot find function `{term.name}`", term.span)
            )
        level = fn_type.exec_spec.level
        if not isinstance(level, GpuGridLevel):
            raise ctx.error(
                Diagnostic.error(
                    "E0010",
                    f"`{term.name}` is not a GPU grid function and cannot be launched",
                    term.span,
                )
            )
        nat_params = [g.name for g in fn_type.generics if g.kind == Kind.NAT]
        if len(nat_params) != len(term.nat_args):
            raise ctx.error(
                Diagnostic.error(
                    "E0012",
                    f"`{term.name}` expects {len(nat_params)} nat argument(s), got "
                    f"{len(term.nat_args)}",
                    term.span,
                )
            )
        for nat in term.nat_args:
            self._check_nat_wellformed(ctx, nat, term.span)
        nat_subst = dict(zip(nat_params, term.nat_args))

        expected_level = level.substitute_nats(nat_subst)
        if not term.grid_dim.equals(expected_level.blocks) or not term.block_dim.equals(
            expected_level.threads
        ):
            raise ctx.error(
                Diagnostic.error(
                    "E0005",
                    "mismatched launch configuration",
                    term.span,
                    label=(
                        f"`{term.name}` must be executed by "
                        f"`gpu.grid<{expected_level.blocks}, {expected_level.threads}>`, "
                        f"launched with `<<<{term.grid_dim}, {term.block_dim}>>>`"
                    ),
                )
            )

        arg_types = [self.check_term(ctx, arg) for arg in term.args]
        expected_params = [p.substitute(nat_subst, {}, {}) for p in fn_type.params]
        if len(arg_types) != len(expected_params):
            raise ctx.error(
                Diagnostic.error(
                    "E0011",
                    f"`{term.name}` expects {len(expected_params)} argument(s), got {len(arg_types)}",
                    term.span,
                )
            )
        for index, (expected, found) in enumerate(zip(expected_params, arg_types)):
            if not assignable(expected, found):
                label = f"expected `{expected}`, found `{found}`"
                if (
                    isinstance(expected, RefType)
                    and isinstance(found, RefType)
                    and str(expected.mem) == str(found.mem)
                ):
                    label = f"expected `{expected.referent}`, found `{found.referent}`"
                raise ctx.error(
                    Diagnostic.error(
                        "E0005",
                        "mismatched types",
                        term.args[index].span if index < len(term.args) else term.span,
                        label=label,
                    )
                )
        return UNIT
