"""Descend's type system: extended borrow checking for GPUs.

The package implements the typing judgement of Section 4:

    Δ ; Γg ; Γl ; Θ | e_f : ε ; e | A ⊢ t : δ ⊣ Γl' | A'

* :mod:`repro.descend.typeck.context` — the environments (kinds Δ, globals Γg,
  locals Γl, loans Θ, the current execution resource, and the access
  environment A) bundled into a :class:`TypingContext`,
* :mod:`repro.descend.typeck.place_typing` — the place-expression typing
  judgement (shape/memory/ownership of a place),
* :mod:`repro.descend.typeck.overlap` — syntactic disjointness of place
  expressions,
* :mod:`repro.descend.typeck.access_check` — ``access_safety_check``: the
  narrowing check, the access-conflict check, and borrow checking,
* :mod:`repro.descend.typeck.checker` — the typing rules for every term and
  whole programs.
"""

from repro.descend.typeck.checker import TypeChecker, check_program
from repro.descend.typeck.context import AccessEnv, AccessRecord, Loan, TypingContext, VarInfo
from repro.descend.typeck.place_typing import PlaceInfo, type_place

__all__ = [
    "TypeChecker",
    "check_program",
    "TypingContext",
    "VarInfo",
    "AccessEnv",
    "AccessRecord",
    "Loan",
    "PlaceInfo",
    "type_place",
]
