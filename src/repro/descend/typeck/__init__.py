"""Descend's type system: extended borrow checking for GPUs.

The package implements the typing judgement of Section 4:

    Δ ; Γg ; Γl ; Θ | e_f : ε ; e | A ⊢ t : δ ⊣ Γl' | A'

* :mod:`repro.descend.typeck.context` — the environments (kinds Δ, globals Γg,
  locals Γl, loans Θ, the current execution resource, and the access
  environment A) bundled into a :class:`TypingContext`,
* :mod:`repro.descend.typeck.place_typing` — the place-expression typing
  judgement (shape/memory/ownership of a place),
* :mod:`repro.descend.typeck.overlap` — syntactic disjointness of place
  expressions,
* :mod:`repro.descend.typeck.access_check` — ``access_safety_check``: the
  narrowing check, the access-conflict check, and borrow checking,
* :mod:`repro.descend.typeck.checker` — the typing rules for every term and
  whole programs.
"""

from repro.descend.ast.exec_resources import clear_exec_caches
from repro.descend.typeck.checker import TypeChecker, check_program
from repro.descend.typeck.context import AccessEnv, AccessRecord, Loan, TypingContext, VarInfo
from repro.descend.typeck.overlap import clear_overlap_cache
from repro.descend.typeck.place_typing import PlaceInfo, type_place


def clear_typeck_caches() -> None:
    """Drop the type checker's memoization caches.

    Used by the compile-time benchmark to measure genuinely cold compiles;
    the caches are pure memoization, so clearing never changes results.
    """
    clear_overlap_cache()
    clear_exec_caches()


__all__ = [
    "TypeChecker",
    "check_program",
    "clear_typeck_caches",
    "TypingContext",
    "VarInfo",
    "AccessEnv",
    "AccessRecord",
    "Loan",
    "PlaceInfo",
    "type_place",
]
