"""Typing environments of the Descend type checker.

This module defines the pieces of the typing judgement's context:

* :class:`KindEnv` (Δ) — kinds of the type-level variables in scope,
* :class:`GlobalEnv` (Γg) — the types of globally accessible functions,
* :class:`LocalEnv` (Γl) — local variables with ownership information,
* :class:`Loan` (elements of Θ / the active borrows in Γl),
* :class:`AccessEnv` (A) — which execution resource accessed which place,
* :class:`SchedFrame` — one ``sched`` step (used by the narrowing check),
* :class:`TypingContext` — everything bundled together, flow-sensitively.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.descend.ast.exec_level import ExecSpec
from repro.descend.ast.exec_resources import ExecResource
from repro.descend.ast.memory import Memory
from repro.descend.ast.places import PlaceExpr
from repro.descend.ast.types import DataType, FnType, Kind
from repro.descend.diagnostics import Diagnostic
from repro.descend.nat import Nat, NatConst, nat_equal
from repro.descend.source import NO_SPAN, Span
from repro.errors import DescendTypeError


# ---------------------------------------------------------------------------
# Δ — kinds of type-level variables
# ---------------------------------------------------------------------------


class KindEnv:
    """Kinds of the type-level variables currently in scope (Δ)."""

    def __init__(self) -> None:
        self._kinds: Dict[str, Kind] = {}

    def declare(self, name: str, kind: Kind) -> None:
        self._kinds[name] = kind

    def remove(self, name: str) -> None:
        self._kinds.pop(name, None)

    def kind_of(self, name: str) -> Optional[Kind]:
        return self._kinds.get(name)

    def is_nat_var(self, name: str) -> bool:
        return self._kinds.get(name) == Kind.NAT

    def names(self) -> Tuple[str, ...]:
        return tuple(self._kinds)

    def copy(self) -> "KindEnv":
        clone = KindEnv()
        clone._kinds = dict(self._kinds)
        return clone


# ---------------------------------------------------------------------------
# Γg — globally accessible functions
# ---------------------------------------------------------------------------


class GlobalEnv:
    """Types of globally accessible functions (Γg)."""

    def __init__(self) -> None:
        self._functions: Dict[str, FnType] = {}

    def declare(self, name: str, fn_type: FnType) -> None:
        self._functions[name] = fn_type

    def lookup(self, name: str) -> Optional[FnType]:
        return self._functions.get(name)

    def known(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._functions))


# ---------------------------------------------------------------------------
# Γl — local variables
# ---------------------------------------------------------------------------


@dataclass
class VarInfo:
    """Information the checker tracks for every local variable."""

    name: str
    ty: DataType
    #: sched depth (number of enclosing ``sched`` steps) at which the variable
    #: was introduced; the owner of the memory it names.
    owner_depth: int
    #: address space of the memory the variable itself denotes (for allocations
    #: and boxed values); ``None`` for plain copyable locals.
    mem: Optional[Memory] = None
    is_param: bool = False
    moved: bool = False
    span: Span = NO_SPAN


@dataclass
class Loan:
    """An active borrow (element of Θ / the loan set of Γl)."""

    place: PlaceExpr
    uniq: bool
    root: str
    mem: Optional[Memory]
    depth: int
    span: Span = NO_SPAN

    def describe(self) -> str:
        kind = "unique" if self.uniq else "shared"
        return f"{kind} borrow of `{self.place}`"


class LocalEnv:
    """Scoped local variables and active loans (Γl and Θ)."""

    def __init__(self) -> None:
        self._scopes: List[Dict[str, VarInfo]] = [{}]
        self._loan_scopes: List[List[Loan]] = [[]]

    # -- scopes -----------------------------------------------------------------
    def push_scope(self) -> None:
        self._scopes.append({})
        self._loan_scopes.append([])

    def pop_scope(self) -> None:
        self._scopes.pop()
        self._loan_scopes.pop()

    # -- variables ----------------------------------------------------------------
    def declare(self, info: VarInfo) -> VarInfo:
        self._scopes[-1][info.name] = info
        return info

    def lookup(self, name: str) -> Optional[VarInfo]:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def known(self, name: str) -> bool:
        return self.lookup(name) is not None

    def mark_moved(self, name: str) -> None:
        info = self.lookup(name)
        if info is not None:
            info.moved = True

    def all_variables(self) -> List[VarInfo]:
        result: List[VarInfo] = []
        for scope in self._scopes:
            result.extend(scope.values())
        return result

    # -- loans ---------------------------------------------------------------------
    def add_loan(self, loan: Loan) -> Loan:
        self._loan_scopes[-1].append(loan)
        return loan

    def active_loans(self) -> List[Loan]:
        result: List[Loan] = []
        for loans in self._loan_scopes:
            result.extend(loans)
        return result

    def release_shared_memory_loans(self) -> None:
        """Drop loans of ``gpu.shared`` memory (released by a barrier)."""
        for loans in self._loan_scopes:
            loans[:] = [
                loan
                for loan in loans
                if not (loan.mem is not None and str(loan.mem) == "gpu.shared")
            ]


# ---------------------------------------------------------------------------
# A — the access environment
# ---------------------------------------------------------------------------


@dataclass
class AccessRecord:
    """One recorded access: which execution resource touched which place, how."""

    exec_res: ExecResource
    exec_binder: str
    mode: str  # "shrd" | "uniq"
    place: PlaceExpr
    place_key: str
    root: str
    span: Span = NO_SPAN

    def describe(self) -> str:
        how = "writes" if self.mode == "uniq" else "reads"
        return f"`{self.exec_binder}` {how} `{self.place}`"


class AccessEnv:
    """The access mapping environment A of the typing judgement.

    Records are additionally indexed by their root variable: the conflict
    check only ever compares accesses of the same root, and scanning the
    whole record list per access made the check quadratic in function size.
    """

    def __init__(self) -> None:
        self._records: List[AccessRecord] = []
        self._by_root: Dict[str, List[AccessRecord]] = {}

    def record(self, record: AccessRecord) -> AccessRecord:
        self._records.append(record)
        self._by_root.setdefault(record.root, []).append(record)
        return record

    def records(self) -> Tuple[AccessRecord, ...]:
        return tuple(self._records)

    def records_for_root(self, root: str) -> List[AccessRecord]:
        return self._by_root.get(root, [])

    def _reindex(self) -> None:
        self._by_root = {}
        for record in self._records:
            self._by_root.setdefault(record.root, []).append(record)

    def clear_for_sync(self) -> int:
        """Remove accesses made by execution resources inside a block.

        A barrier guarantees that accesses before it cannot conflict with
        accesses after it (Section 3.3): we drop every access performed by an
        execution resource at block granularity or below.
        """
        before = len(self._records)
        self._records = [
            record
            for record in self._records
            if not record.exec_res.blocks_fully_scheduled()
        ]
        self._reindex()
        return before - len(self._records)

    def snapshot(self) -> List[AccessRecord]:
        return list(self._records)

    def restore(self, snapshot: List[AccessRecord]) -> None:
        self._records = list(snapshot)
        self._reindex()

    def __len__(self) -> int:
        return len(self._records)


# ---------------------------------------------------------------------------
# Scheduling frames (for the narrowing check)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SchedFrame:
    """One ``sched`` step: the binder it introduced and the sub-resource extents."""

    binder: str
    resource: ExecResource
    extents: Tuple[Nat, ...]
    depth: int

    def is_singleton(self) -> bool:
        """True when there is only one sub-resource (no select required)."""
        return all(nat_equal(extent, NatConst(1)) for extent in self.extents)


# ---------------------------------------------------------------------------
# The bundled typing context
# ---------------------------------------------------------------------------


class TypingContext:
    """Everything the typing rules need, threaded flow-sensitively."""

    def __init__(
        self,
        globals_env: GlobalEnv,
        exec_spec: ExecSpec,
        root_exec: ExecResource,
        source=None,
    ) -> None:
        self.kinds = KindEnv()
        self.globals = globals_env
        self.locals = LocalEnv()
        self.accesses = AccessEnv()
        self.exec_spec = exec_spec
        self.source = source
        #: binder name -> execution resource (the function's exec name plus
        #: every ``sched`` / ``split`` binder currently in scope)
        self.exec_binders: Dict[str, ExecResource] = {exec_spec.name: root_exec}
        #: innermost execution resource ("who executes the current statement")
        self.current_exec: ExecResource = root_exec
        self.current_exec_binder: str = exec_spec.name
        #: stack of sched frames, outermost first
        self.sched_stack: List[SchedFrame] = []
        #: binder -> innermost frame with that binder (O(1) frame lookups for
        #: the select check, instead of scanning the sched stack per place)
        self._frame_index: Dict[str, SchedFrame] = {}
        #: shadowed frames, parallel to ``sched_stack`` (restored on pop)
        self._frame_shadow: List[Optional[SchedFrame]] = []
        #: set when typing the body of a loop a second time (cross-iteration pass)
        self.loop_recheck: bool = False

    # -- depth ---------------------------------------------------------------------
    @property
    def sched_depth(self) -> int:
        return len(self.sched_stack)

    def frames_below(self, depth: int) -> List[SchedFrame]:
        """Sched frames introduced strictly below ``depth`` (deeper than the owner)."""
        return [frame for frame in self.sched_stack if frame.depth > depth]

    # -- exec binders -----------------------------------------------------------------
    def bind_exec(self, name: str, resource: ExecResource) -> Optional[ExecResource]:
        """Bind a binder name (innermost wins); returns the shadowed binding."""
        shadowed = self.exec_binders.get(name)
        self.exec_binders[name] = resource
        return shadowed

    def unbind_exec(self, name: str, shadowed: Optional[ExecResource] = None) -> None:
        """Undo a ``bind_exec``, restoring the binding it shadowed (if any)."""
        if shadowed is None:
            self.exec_binders.pop(name, None)
        else:
            self.exec_binders[name] = shadowed

    def exec_of(self, name: str) -> Optional[ExecResource]:
        return self.exec_binders.get(name)

    # -- sched frames -----------------------------------------------------------------
    def push_sched_frame(self, frame: SchedFrame) -> None:
        self.sched_stack.append(frame)
        self._frame_shadow.append(self._frame_index.get(frame.binder))
        self._frame_index[frame.binder] = frame

    def pop_sched_frame(self) -> SchedFrame:
        frame = self.sched_stack.pop()
        shadowed = self._frame_shadow.pop()
        if shadowed is None:
            self._frame_index.pop(frame.binder, None)
        else:
            self._frame_index[frame.binder] = shadowed
        return frame

    def frame_of_binder(self, binder: str) -> Optional[SchedFrame]:
        # Innermost frame wins for shadowed binder names, consistent with
        # `exec_binders` (bind_exec overwrites) resolving selects innermost.
        return self._frame_index.get(binder)

    # -- errors ----------------------------------------------------------------------
    def error(self, diagnostic: Diagnostic) -> DescendTypeError:
        return DescendTypeError(diagnostic.message, diagnostic)
