"""The place-expression typing judgement.

``type_place`` walks a place expression from its root variable outwards and
computes:

* the data type of the denoted region,
* the memory space the region lives in,
* ownership information (the root variable and the sched depth that owns it),
* which execution variables were used in selects (for the narrowing check),
* whether the place may be written through (it is not reached via a shared
  reference).

Selects (``p[[thread]]``) are checked here: the selected array level must have
exactly as many elements as the selecting execution resource has
sub-resources (the paper's "mismatched types" on sizes, E0005).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.descend.ast.exec_resources import ForallRes
from repro.descend.ast.memory import CPU_MEM, GPU_LOCAL, Memory
from repro.descend.ast.places import (
    PDeref,
    PIdx,
    PProj,
    PSelect,
    PVar,
    PView,
    PlaceExpr,
)
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    DataType,
    RefType,
    ScalarType,
    TupleType,
)
from repro.descend.diagnostics import Diagnostic
from repro.descend.nat import Nat, NatConst, nat_equal
from repro.descend.source import Span
from repro.descend.typeck.context import TypingContext, VarInfo
from repro.descend.views.indexing import BoundView, bind_view
from repro.descend.views.registry import ViewError
from repro.errors import DescendTypeError


@dataclass
class PlaceInfo:
    """Everything the access-safety check needs to know about a place."""

    place: PlaceExpr
    ty: DataType
    mem: Memory
    root: VarInfo
    select_vars: Tuple[str, ...]
    writable: bool
    went_through_ref: bool
    span: Span

    @property
    def root_name(self) -> str:
        return self.root.name


@dataclass
class _WalkState:
    """Mutable state while walking the chain of a place expression."""

    ty: DataType
    mem: Memory
    writable: bool
    went_through_ref: bool
    pair_shapes: Optional[Tuple[Tuple[Nat, ...], Tuple[Nat, ...]]] = None
    pair_elem: Optional[DataType] = None


def _shape_and_elem(ty: DataType) -> Tuple[Tuple[Nat, ...], DataType]:
    """Decompose (possibly nested) array types into a shape and the element type."""
    if isinstance(ty, (ArrayType, ArrayViewType)):
        return ty.shape(), ty.element_scalar()
    raise _NotAnArray()


class _NotAnArray(Exception):
    pass


def _rebuild_view_type(shape: Tuple[Nat, ...], elem: DataType) -> DataType:
    """Rebuild a (view) array type from a shape and element type."""
    ty = elem
    for size in reversed(shape):
        ty = ArrayViewType(ty, size)
    return ty


def _auto_deref(state: _WalkState, ctx: TypingContext, span: Span) -> None:
    """Implicitly dereference references and boxed values before further access."""
    while True:
        if isinstance(state.ty, RefType):
            if not state.ty.uniq:
                state.writable = False
            state.mem = state.ty.mem
            state.ty = state.ty.referent
            state.went_through_ref = True
            continue
        if isinstance(state.ty, AtType):
            state.mem = state.ty.mem
            state.ty = state.ty.inner
            continue
        return


def _error(ctx: TypingContext, code: str, message: str, span: Span, label: str = "",
           notes: Optional[List[str]] = None) -> DescendTypeError:
    return ctx.error(Diagnostic.error(code, message, span, label, notes))


def type_place(ctx: TypingContext, place: PlaceExpr, span: Optional[Span] = None) -> PlaceInfo:
    """Type a place expression in the given context."""
    span = span or place.span
    parts = place.parts()
    root_part = parts[0]
    if not isinstance(root_part, PVar):
        raise _error(ctx, "E0009", "place expressions must be rooted in a variable", span)

    # The root might name an execution resource — give a dedicated message.
    info = ctx.locals.lookup(root_part.name)
    if info is None:
        if root_part.name in ctx.exec_binders:
            raise _error(
                ctx,
                "E0009",
                f"`{root_part.name}` is an execution resource, not a place",
                span,
            )
        raise _error(ctx, "E0009", f"cannot find value `{root_part.name}` in this scope", span)

    if info.moved:
        raise _error(
            ctx,
            "E0007",
            f"use of moved value: `{info.name}`",
            span,
            label=f"value `{info.name}` was moved and cannot be used again",
        )

    state = _WalkState(
        ty=info.ty,
        mem=info.mem if info.mem is not None else _default_memory(ctx),
        writable=True,
        went_through_ref=False,
    )

    select_vars: List[str] = []

    for part in parts[1:]:
        if isinstance(part, PDeref):
            _deref_step(state, ctx, part, span)
        elif isinstance(part, PView):
            _view_step(state, ctx, part, span)
        elif isinstance(part, PSelect):
            _select_step(state, ctx, part, span, select_vars)
        elif isinstance(part, PIdx):
            _index_step(state, ctx, part, span)
        elif isinstance(part, PProj):
            _proj_step(state, ctx, part, span)
        else:  # pragma: no cover - exhaustive
            raise _error(ctx, "E0011", f"unsupported place expression {part}", span)

    if state.pair_shapes is not None:
        raise _error(
            ctx,
            "E0011",
            "`split` must be followed by `.fst` or `.snd`",
            span,
        )

    return PlaceInfo(
        place=place,
        ty=state.ty,
        mem=state.mem,
        root=info,
        select_vars=tuple(select_vars),
        writable=state.writable,
        went_through_ref=state.went_through_ref,
        span=span,
    )


def _default_memory(ctx: TypingContext) -> Memory:
    """Memory space of plain locals: CPU stack on the host, private memory on the GPU."""
    if ctx.exec_spec.is_gpu():
        return GPU_LOCAL
    return CPU_MEM


def _deref_step(state: _WalkState, ctx: TypingContext, part: PDeref, span: Span) -> None:
    if isinstance(state.ty, RefType):
        if not state.ty.uniq:
            state.writable = False
        state.mem = state.ty.mem
        state.ty = state.ty.referent
        state.went_through_ref = True
        return
    if isinstance(state.ty, AtType):
        state.mem = state.ty.mem
        state.ty = state.ty.inner
        return
    raise _error(
        ctx,
        "E0011",
        f"type `{state.ty}` cannot be dereferenced",
        span,
    )


def _view_step(state: _WalkState, ctx: TypingContext, part: PView, span: Span) -> None:
    if state.pair_shapes is not None:
        raise _error(ctx, "E0011", "`split` must be followed by `.fst` or `.snd`", span)
    _auto_deref(state, ctx, span)
    try:
        shape, elem = _shape_and_elem(state.ty)
    except _NotAnArray:
        raise _error(
            ctx,
            "E0011",
            f"views can only be applied to arrays, but `{part.base}` has type `{state.ty}`",
            span,
        ) from None

    try:
        bound = bind_view(part.ref)
    except ViewError as exc:
        raise _error(ctx, "E0009", str(exc), span) from None

    constraints = bound.view.impl.static_constraints(list(part.ref.nat_args), shape)
    if constraints:
        raise _error(
            ctx,
            "E0012",
            f"view `{part.ref}` cannot be applied to an array of shape "
            f"[{', '.join(str(s) for s in shape)}]",
            span,
            notes=constraints,
        )

    try:
        out = bound.out_shape(shape)
    except ViewError as exc:
        raise _error(ctx, "E0012", str(exc), span) from None

    if bound.is_split:
        first, second = out
        state.pair_shapes = (tuple(first), tuple(second))
        state.pair_elem = elem
        return
    state.ty = _rebuild_view_type(tuple(out), elem)


def _select_step(
    state: _WalkState,
    ctx: TypingContext,
    part: PSelect,
    span: Span,
    select_vars: List[str],
) -> None:
    if state.pair_shapes is not None:
        raise _error(ctx, "E0011", "`split` must be followed by `.fst` or `.snd`", span)
    _auto_deref(state, ctx, span)
    frame = ctx.frame_of_binder(part.exec_var)
    if frame is None:
        raise _error(
            ctx,
            "E0009",
            f"`{part.exec_var}` is not an execution resource bound by `sched` in scope",
            span,
        )
    try:
        shape, elem = _shape_and_elem(state.ty)
    except _NotAnArray:
        raise _error(
            ctx,
            "E0011",
            f"cannot select from non-array type `{state.ty}`",
            span,
        ) from None

    extents = frame.extents
    if len(shape) < len(extents):
        raise _error(
            ctx,
            "E0005",
            f"mismatched types: selecting with `{part.exec_var}` needs an array of rank "
            f">= {len(extents)}, found shape [{', '.join(str(s) for s in shape)}]",
            span,
        )
    for axis, extent in enumerate(extents):
        if not nat_equal(shape[axis], extent):
            raise _error(
                ctx,
                "E0005",
                "mismatched types: array and execution resource sizes differ",
                span,
                label=(
                    f"expected `[{extent}]` elements for `{part.exec_var}`, "
                    f"found `[{shape[axis]}]`"
                ),
            )
    state.ty = _rebuild_view_type(tuple(shape[len(extents):]), elem)
    select_vars.append(part.exec_var)


def _index_step(state: _WalkState, ctx: TypingContext, part: PIdx, span: Span) -> None:
    if state.pair_shapes is not None:
        raise _error(ctx, "E0011", "`split` must be followed by `.fst` or `.snd`", span)
    _auto_deref(state, ctx, span)
    try:
        shape, elem = _shape_and_elem(state.ty)
    except _NotAnArray:
        raise _error(
            ctx,
            "E0011",
            f"cannot index into non-array type `{state.ty}`",
            span,
        ) from None
    if isinstance(part.index, Nat):
        size = shape[0]
        if (
            isinstance(part.index, NatConst)
            and isinstance(size, NatConst)
            and part.index.value >= size.value
        ):
            raise _error(
                ctx,
                "E0005",
                f"index {part.index} out of bounds for array of size {size}",
                span,
            )
    state.ty = _rebuild_view_type(tuple(shape[1:]), elem)


def _proj_step(state: _WalkState, ctx: TypingContext, part: PProj, span: Span) -> None:
    if state.pair_shapes is not None:
        shape = state.pair_shapes[part.index]
        elem = state.pair_elem
        assert elem is not None
        state.ty = _rebuild_view_type(shape, elem)
        state.pair_shapes = None
        state.pair_elem = None
        return
    _auto_deref(state, ctx, span)
    if isinstance(state.ty, TupleType):
        if part.index >= len(state.ty.elems):
            raise _error(ctx, "E0011", "tuple projection out of range", span)
        state.ty = state.ty.elems[part.index]
        return
    raise _error(
        ctx,
        "E0011",
        f"`.fst`/`.snd` can only be applied to tuples or `split` views, "
        f"found `{state.ty}`",
        span,
    )
