"""``access_safety_check`` — the GPU-specific safety checks of Descend.

Following the T-Read-By-Copy and T-Write rules of the paper (Figure 7), every
memory access (read, write, or borrow) of a place expression ``p`` in mode
``shrd`` or ``uniq`` goes through three logical steps:

1. **Narrowing check** — a unique access must have been narrowed down the
   execution hierarchy: for every ``sched`` step between the owner of the
   underlying memory and the execution resource performing the access, the
   place must select (``[[e]]``) a distinct part per sub-resource (unless
   that step has only a single sub-resource).

2. **Access-conflict check** — the access must not conflict with a previous
   access recorded in the access environment A: two accesses to possibly
   overlapping memory conflict when at least one of them is unique, unless
   they are the *same* place accessed by the *same* execution resource (each
   instance only touches the element it already owns).

3. **Borrow checking** — classic Rust/Oxide borrow checking against the
   active loans: a unique loan blocks all other accesses to overlapping
   places, a shared loan blocks unique accesses.

On success the access is recorded in A (producing the A′ of the judgement).
"""

from __future__ import annotations

from typing import List, Optional

from repro.descend.ast.exec_resources import ExecResource, exec_disjoint
from repro.descend.diagnostics import Diagnostic
from repro.descend.source import Span
from repro.descend.typeck.context import AccessRecord, Loan, TypingContext
from repro.descend.typeck.overlap import Overlap, compare_places, places_may_overlap
from repro.descend.typeck.place_typing import PlaceInfo
from repro.errors import DescendTypeError

SHRD = "shrd"
UNIQ = "uniq"


def access_safety_check(
    ctx: TypingContext,
    info: PlaceInfo,
    mode: str,
    span: Optional[Span] = None,
) -> AccessRecord:
    """Run the three safety checks for one access and record it in A."""
    span = span or info.span
    if mode not in (SHRD, UNIQ):
        raise ValueError(f"invalid access mode {mode!r}")

    if mode == UNIQ:
        _narrowing_check(ctx, info, span)
    _conflict_check(ctx, info, mode, span)
    _borrow_check(ctx, info, mode, span)

    record = AccessRecord(
        exec_res=ctx.current_exec,
        exec_binder=ctx.current_exec_binder,
        mode=mode,
        place=info.place,
        place_key=info.place.key(),
        root=info.root_name,
        span=span,
    )
    ctx.accesses.record(record)
    return record


# ---------------------------------------------------------------------------
# 1. Narrowing
# ---------------------------------------------------------------------------


def _narrowing_check(ctx: TypingContext, info: PlaceInfo, span: Span) -> None:
    """A unique access must select a distinct part per sub-execution-resource."""
    required_frames = [
        frame
        for frame in ctx.frames_below(info.root.owner_depth)
        if not frame.is_singleton()
    ]
    provided = set(info.select_vars)
    missing = [frame for frame in required_frames if frame.binder not in provided]
    if not missing:
        return

    frame = missing[0]
    diagnostic = Diagnostic.error(
        "E0006",
        "narrowing violated: unique access is not narrowed to the executing resource",
        span,
        label=(
            f"`{info.place}` is owned at the level of `{_owner_description(ctx, info)}` "
            f"but accessed uniquely by every `{frame.binder}`"
        ),
        notes=[
            f"each `{frame.binder}` would get unique access to the same memory; "
            f"select a distinct part with `[[{frame.binder}]]` or a view",
        ],
    )
    raise ctx.error(diagnostic)


def _owner_description(ctx: TypingContext, info: PlaceInfo) -> str:
    depth = info.root.owner_depth
    if depth == 0:
        return ctx.exec_spec.name
    for frame in ctx.sched_stack:
        if frame.depth == depth:
            return frame.binder
    return f"depth {depth}"


# ---------------------------------------------------------------------------
# 2. Access conflicts
# ---------------------------------------------------------------------------


def _accesses_conflict(
    previous: AccessRecord,
    current_exec: ExecResource,
    current_binder: str,
    place_info: PlaceInfo,
    mode: str,
) -> bool:
    """Whether a previously recorded access conflicts with the new one."""
    if previous.mode == SHRD and mode == SHRD:
        return False
    if previous.root != place_info.root_name:
        return False

    overlap = compare_places(previous.place, place_info.place)
    if overlap is Overlap.DISJOINT:
        return False
    if overlap is Overlap.IDENTICAL:
        # The same place accessed by the same execution resource: every
        # instance touches only its own element(s), no cross-instance race.
        if previous.exec_res == current_exec:
            return False
        # Disjoint thread sets accessing the identical memory region conflict
        # as soon as one of them writes.
        return True
    return True


def _conflict_check(ctx: TypingContext, info: PlaceInfo, mode: str, span: Span) -> None:
    for previous in ctx.accesses.records_for_root(info.root_name):
        if _accesses_conflict(previous, ctx.current_exec, ctx.current_exec_binder, info, mode):
            message = "conflicting memory access"
            if ctx.loop_recheck:
                message += " across loop iterations"
            diagnostic = Diagnostic.error(
                "E0001",
                message,
                span,
                label=f"cannot select memory `{info.place}` for a {_mode_word(mode)} access",
            )
            diagnostic.with_label(
                previous.span,
                f"because of a conflicting prior selection here: {previous.describe()}",
                primary=False,
            )
            if ctx.loop_recheck:
                diagnostic.with_note(
                    "the conflicting accesses happen in different iterations of the "
                    "enclosing loop; a `sync` between them would make this safe"
                )
            raise ctx.error(diagnostic)


def _mode_word(mode: str) -> str:
    return "unique (write)" if mode == UNIQ else "shared (read)"


# ---------------------------------------------------------------------------
# 3. Borrow checking
# ---------------------------------------------------------------------------


def _loan_conflicts(loan: Loan, info: PlaceInfo, mode: str) -> bool:
    if loan.root != info.root_name:
        return False
    if not places_may_overlap(loan.place, info.place):
        return False
    if loan.uniq:
        # A unique loan excludes every other access to overlapping memory that
        # does not go through the borrow itself (such accesses have the
        # borrow's variable as their root and are filtered out above).
        return True
    return mode == UNIQ


def _borrow_check(ctx: TypingContext, info: PlaceInfo, mode: str, span: Span) -> None:
    for loan in ctx.locals.active_loans():
        if loan.span == span and str(loan.place) == str(info.place):
            # The access that creates a borrow is checked before the loan is
            # registered; skip self-conflicts defensively.
            continue
        if _loan_conflicts(loan, info, mode):
            diagnostic = Diagnostic.error(
                "E0008",
                f"cannot access `{info.place}` because it is borrowed",
                span,
                label=f"{_mode_word(mode)} access conflicts with an active borrow",
            )
            diagnostic.with_label(loan.span, f"{loan.describe()} occurs here", primary=False)
            raise ctx.error(diagnostic)
