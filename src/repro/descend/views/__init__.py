"""Semantics of Descend views.

A view reshapes an array or reorders its elements without changing the
underlying memory layout (Section 3.2).  This package implements:

* :mod:`repro.descend.views.registry` — the built-in views (``split``,
  ``group``, ``transpose``, ``reverse``, ``map``, ``join``) and the composite
  views used in the paper's examples (``group_by_row``, ``group_by_tile``),
  each with a shape transformation and an index remapping,
* :mod:`repro.descend.views.indexing` — :class:`LogicalArray`, the engine that
  applies chains of views / indices / selects to compute raw element offsets.
  It is agnostic to the value domain: the interpreter instantiates it with
  Python ints, the code generator with symbolic CUDA index expressions.
"""

from repro.descend.views.indexing import LogicalArray, LogicalPair
from repro.descend.views.registry import (
    ViewImpl,
    ViewRegistry,
    default_registry,
    resolve_view,
)

__all__ = [
    "LogicalArray",
    "LogicalPair",
    "ViewImpl",
    "ViewRegistry",
    "default_registry",
    "resolve_view",
]
