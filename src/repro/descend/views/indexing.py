"""Applying chains of views, indices, and selects to compute element locations.

The same engine serves three clients:

* the **interpreter** instantiates it with Python ints and gets raw offsets
  into simulator buffers,
* the **code generator** instantiates it with symbolic CUDA index expressions
  (objects overloading ``+``, ``*``, ``//``, ...) and gets the raw index
  arithmetic that is emitted into the generated CUDA C++,
* the **type checker** instantiates it with :class:`~repro.descend.nat.Nat`
  values to compute the shape of a viewed array.

This mirrors the paper's code-generation strategy (Section 5): views are
compiled into raw indices by processing the applied views in reverse order,
each view transforming the index produced so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.descend.ast.views import ViewRef
from repro.descend.nat import Nat
from repro.descend.views.registry import ResolvedView, ViewRegistry, default_registry, resolve_view
from repro.errors import DescendError


class IndexingError(DescendError):
    """Raised when a place expression cannot be lowered to an element location."""


#: Resolves a Nat into the client's value domain (int, symbolic expression, Nat).
NatResolver = Callable[[Nat], object]


def identity_resolver(nat: Nat) -> object:
    """Resolver used by the type checker: keep nats symbolic."""
    return nat


@dataclass(frozen=True)
class BoundView:
    """A resolved view whose nat arguments have been mapped into a value domain."""

    view: ResolvedView
    resolver: NatResolver

    def _args(self) -> Tuple[object, ...]:
        return tuple(self.resolver(arg) for arg in self.view.nat_args)

    def _bound_view_args(self) -> Tuple["BoundView", ...]:
        return tuple(BoundView(arg, self.resolver) for arg in self.view.view_args)

    @property
    def is_split(self) -> bool:
        return self.view.impl.is_split

    def out_shape(self, in_shape: Tuple[object, ...]):
        return self.view.impl.out_shape(self._args(), self._bound_view_args(), in_shape)

    def to_source(self, in_shape: Tuple[object, ...], coords: Tuple[object, ...]) -> Tuple[object, ...]:
        return self.view.impl.to_source(self._args(), self._bound_view_args(), in_shape, coords)

    def to_source_half(
        self, half: int, in_shape: Tuple[object, ...], coords: Tuple[object, ...]
    ) -> Tuple[object, ...]:
        impl = self.view.impl
        return impl.to_source_half(half, self._args(), self._bound_view_args(), in_shape, coords)

    def describe(self) -> str:
        return self.view.describe()


CoordsToBase = Callable[[Tuple[object, ...]], Tuple[object, ...]]


@dataclass
class LogicalArray:
    """An array seen through a chain of views and partial indexing.

    ``shape`` is the shape of the *viewed* array that remains to be indexed;
    ``to_base`` maps remaining coordinates to coordinates in the *base* array
    (the physical allocation).
    """

    shape: Tuple[object, ...]
    to_base: CoordsToBase
    base_shape: Tuple[object, ...]

    # -- construction -------------------------------------------------------------
    @staticmethod
    def root(shape: Sequence[object]) -> "LogicalArray":
        shape = tuple(shape)
        return LogicalArray(shape=shape, to_base=lambda coords: tuple(coords), base_shape=shape)

    # -- operations ----------------------------------------------------------------
    def apply_view(self, bound: BoundView) -> Union["LogicalArray", "LogicalPair"]:
        """Apply a view; ``split`` produces a :class:`LogicalPair`."""
        if bound.is_split:
            first_shape, second_shape = bound.out_shape(self.shape)
            return LogicalPair(
                first=self._derived(tuple(first_shape), bound, half=0),
                second=self._derived(tuple(second_shape), bound, half=1),
            )
        new_shape = tuple(bound.out_shape(self.shape))
        return self._derived(new_shape, bound, half=None)

    def _derived(self, new_shape: Tuple[object, ...], bound: BoundView, half: Optional[int]) -> "LogicalArray":
        old_shape = self.shape
        old_to_base = self.to_base

        def to_base(coords: Tuple[object, ...]) -> Tuple[object, ...]:
            if half is None:
                source = bound.to_source(old_shape, coords)
            else:
                source = bound.to_source_half(half, old_shape, coords)
            return old_to_base(tuple(source))

        return LogicalArray(shape=new_shape, to_base=to_base, base_shape=self.base_shape)

    def index(self, value: object) -> "LogicalArray":
        """Consume the outermost dimension with a single index."""
        if not self.shape:
            raise IndexingError("cannot index a scalar")
        rest = self.shape[1:]
        old_to_base = self.to_base

        def to_base(coords: Tuple[object, ...]) -> Tuple[object, ...]:
            return old_to_base((value,) + tuple(coords))

        return LogicalArray(shape=rest, to_base=to_base, base_shape=self.base_shape)

    def select(self, values: Sequence[object]) -> "LogicalArray":
        """Consume one dimension per coordinate of the selecting execution resource."""
        result: LogicalArray = self
        for value in values:
            result = result.index(value)
        return result

    # -- results -------------------------------------------------------------------
    def base_coords(self, coords: Sequence[object] = ()) -> Tuple[object, ...]:
        coords = tuple(coords)
        if len(coords) != len(self.shape):
            raise IndexingError(
                f"expected {len(self.shape)} coordinates, got {len(coords)}"
            )
        return self.to_base(coords)

    def flat_offset(self, coords: Sequence[object] = ()) -> object:
        """Row-major offset of an element in the base allocation."""
        base = self.base_coords(coords)
        if len(base) != len(self.base_shape):
            raise IndexingError(
                "internal error: base coordinates do not match the base shape"
            )
        offset: object = 0
        for value, extent in zip(base, self.base_shape):
            offset = offset * extent + value
        return offset

    def is_scalar(self) -> bool:
        return not self.shape

    def rank(self) -> int:
        return len(self.shape)


@dataclass
class LogicalPair:
    """The result of applying ``split``: a pair of logical arrays."""

    first: LogicalArray
    second: LogicalArray

    def project(self, index: int) -> LogicalArray:
        if index == 0:
            return self.first
        if index == 1:
            return self.second
        raise IndexingError(f"pair projection index must be 0 or 1, got {index}")


def bind_view(
    ref: ViewRef,
    resolver: NatResolver = identity_resolver,
    registry: Optional[ViewRegistry] = None,
) -> BoundView:
    """Resolve a syntactic view reference and bind it to a value domain."""
    return BoundView(resolve_view(ref, registry or default_registry()), resolver)
