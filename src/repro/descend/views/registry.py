"""The registry of built-in views and their semantics.

Every view is described by a :class:`ViewImpl` providing two operations that
work uniformly over any value domain that supports ``+``, ``-``, ``*`` and
``//`` (Python ints for the interpreter, symbolic index expressions for the
code generator, :class:`~repro.descend.nat.Nat` for the type checker):

``out_shape(args, in_shape)``
    the shape of the array seen through the view,

``to_source(args, view_args, in_shape, coords)``
    map coordinates in the viewed array back to coordinates in the source
    array (views never move data, they only remap accesses).

The ``split`` view is special: it produces a *pair* of arrays, so its
``out_shape`` returns two shapes and ``to_source`` additionally takes the
projected half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.descend.ast.views import ViewRef
from repro.descend.nat import Nat, nat_divisible, nat_le
from repro.errors import DescendError


class ViewError(DescendError):
    """Raised when a view is applied to an array of the wrong shape."""


Shape = Tuple[object, ...]
Coords = Tuple[object, ...]


@dataclass
class ResolvedView:
    """A view reference resolved against the registry with its argument views."""

    impl: "ViewImpl"
    nat_args: Tuple[Nat, ...]
    view_args: Tuple["ResolvedView", ...]

    @property
    def name(self) -> str:
        return self.impl.name

    def describe(self) -> str:
        text = self.impl.name
        if self.nat_args:
            text += "::<" + ", ".join(str(a) for a in self.nat_args) + ">"
        if self.view_args:
            text += "(" + ", ".join(v.describe() for v in self.view_args) + ")"
        return text


class ViewImpl:
    """Base class for view implementations."""

    name: str = "<view>"
    num_nat_args: int = 0
    num_view_args: int = 0
    is_split: bool = False

    # -- shape -------------------------------------------------------------------
    def min_rank(self) -> int:
        """Minimum number of array dimensions the view needs."""
        return 1

    def out_shape(self, args: Sequence[object], view_args: Sequence[ResolvedView], in_shape: Shape) -> Shape:
        raise NotImplementedError

    def to_source(
        self,
        args: Sequence[object],
        view_args: Sequence[ResolvedView],
        in_shape: Shape,
        coords: Coords,
    ) -> Coords:
        raise NotImplementedError

    # -- static checking ------------------------------------------------------------
    def static_constraints(self, args: Sequence[Nat], in_shape: Tuple[Nat, ...]) -> List[str]:
        """Human-readable descriptions of violated static constraints (empty = ok)."""
        return []

    def check_arity(self, ref: ViewRef) -> None:
        if len(ref.nat_args) != self.num_nat_args:
            raise ViewError(
                f"view `{self.name}` expects {self.num_nat_args} nat argument(s), "
                f"got {len(ref.nat_args)}"
            )
        if len(ref.view_args) != self.num_view_args:
            raise ViewError(
                f"view `{self.name}` expects {self.num_view_args} view argument(s), "
                f"got {len(ref.view_args)}"
            )


def _require_rank(view: ViewImpl, in_shape: Shape) -> None:
    if len(in_shape) < view.min_rank():
        raise ViewError(
            f"view `{view.name}` needs an array of rank >= {view.min_rank()}, "
            f"got shape of rank {len(in_shape)}"
        )


class IdentityView(ViewImpl):
    """``to_view`` — the identity view (turns ``[T; n]`` into ``[[T; n]]``)."""

    name = "to_view"

    def out_shape(self, args, view_args, in_shape):
        return tuple(in_shape)

    def to_source(self, args, view_args, in_shape, coords):
        return tuple(coords)


class GroupView(ViewImpl):
    """``group::<k>`` — combine consecutive elements into groups of ``k``."""

    name = "group"
    num_nat_args = 1

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        k = args[0]
        n = in_shape[0]
        return (n // k, k) + tuple(in_shape[1:])

    def to_source(self, args, view_args, in_shape, coords):
        k = args[0]
        group_index, within = coords[0], coords[1]
        return (group_index * k + within,) + tuple(coords[2:])

    def static_constraints(self, args, in_shape):
        problems = []
        if nat_divisible(in_shape[0], args[0]) is False:
            problems.append(f"group::<{args[0]}> requires {in_shape[0]} % {args[0]} == 0")
        return problems


class TransposeView(ViewImpl):
    """``transpose`` — swap the two outermost dimensions."""

    name = "transpose"

    def min_rank(self) -> int:
        return 2

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        return (in_shape[1], in_shape[0]) + tuple(in_shape[2:])

    def to_source(self, args, view_args, in_shape, coords):
        return (coords[1], coords[0]) + tuple(coords[2:])


class ReverseView(ViewImpl):
    """``rev`` — reverse the order of elements of the outermost dimension."""

    name = "rev"

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        return tuple(in_shape)

    def to_source(self, args, view_args, in_shape, coords):
        n = in_shape[0]
        return (n - 1 - coords[0],) + tuple(coords[1:])


class SplitView(ViewImpl):
    """``split::<k>`` — split the outermost dimension into two parts at ``k``."""

    name = "split"
    num_nat_args = 1
    is_split = True

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        k = args[0]
        n = in_shape[0]
        first = (k,) + tuple(in_shape[1:])
        second = (n - k,) + tuple(in_shape[1:])
        return (first, second)

    def to_source_half(self, half: int, args, view_args, in_shape, coords):
        k = args[0]
        if half == 0:
            return tuple(coords)
        return (coords[0] + k,) + tuple(coords[1:])

    def to_source(self, args, view_args, in_shape, coords):  # pragma: no cover - defensive
        raise ViewError("`split` must be followed by `.fst` or `.snd`")

    def static_constraints(self, args, in_shape):
        problems = []
        if nat_le(args[0], in_shape[0]) is False:
            problems.append(f"split::<{args[0]}> requires {args[0]} <= {in_shape[0]}")
        return problems


class MapView(ViewImpl):
    """``map(v)`` — apply a view to every element of the outer array.

    The view argument is supplied as a *bound view*: an object exposing
    ``out_shape(in_shape)`` and ``to_source(in_shape, coords)`` with its nat
    arguments already resolved into the caller's value domain (see
    :class:`repro.descend.views.indexing.BoundView`).
    """

    name = "map"
    num_view_args = 1

    def min_rank(self) -> int:
        return 2

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        inner = view_args[0]
        inner_shape = inner.out_shape(tuple(in_shape[1:]))
        if isinstance(inner_shape, tuple) and inner_shape and isinstance(inner_shape[0], tuple):
            raise ViewError("`map(split)` is not supported; split must be outermost")
        return (in_shape[0],) + tuple(inner_shape)

    def to_source(self, args, view_args, in_shape, coords):
        inner = view_args[0]
        inner_coords = inner.to_source(tuple(in_shape[1:]), tuple(coords[1:]))
        return (coords[0],) + tuple(inner_coords)


class JoinView(ViewImpl):
    """``join`` — flatten the two outermost dimensions (inverse of ``group``)."""

    name = "join"

    def min_rank(self) -> int:
        return 2

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        return (in_shape[0] * in_shape[1],) + tuple(in_shape[2:])

    def to_source(self, args, view_args, in_shape, coords):
        inner_size = in_shape[1]
        flat = coords[0]
        return (flat // inner_size, flat % inner_size) + tuple(coords[1:])


class GroupByTileView(ViewImpl):
    """``group_by_tile::<th, tw>`` — partition a matrix into ``th``×``tw`` tiles.

    ``[[d; W]; H]`` (H rows of W elements) becomes a ``H/th`` × ``W/tw`` array
    of tiles, each tile being ``[[d; tw]; th]``.
    """

    name = "group_by_tile"
    num_nat_args = 2

    def min_rank(self) -> int:
        return 2

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        th, tw = args[0], args[1]
        height, width = in_shape[0], in_shape[1]
        return (height // th, width // tw, th, tw) + tuple(in_shape[2:])

    def to_source(self, args, view_args, in_shape, coords):
        th, tw = args[0], args[1]
        tile_row, tile_col, row, col = coords[0], coords[1], coords[2], coords[3]
        return (tile_row * th + row, tile_col * tw + col) + tuple(coords[4:])

    def static_constraints(self, args, in_shape):
        problems = []
        if nat_divisible(in_shape[0], args[0]) is False:
            problems.append(f"group_by_tile rows: {in_shape[0]} % {args[0]} != 0")
        if nat_divisible(in_shape[1], args[1]) is False:
            problems.append(f"group_by_tile cols: {in_shape[1]} % {args[1]} != 0")
        return problems


class GroupByRowView(ViewImpl):
    """``group_by_row::<row_size, per_thread>`` — distribute matrix rows round-robin.

    ``[[d; C]; R]`` becomes ``[[[d; per_thread]; C]; R/per_thread]``: coordinate
    ``(y, x, i)`` maps to element ``(y + (R/per_thread) * i, x)`` of the source.
    This reproduces the access pattern of Listing 1/2 of the paper, where a
    32×8 thread block copies a 32×32 tile with each thread handling 4 rows
    strided by 8.
    """

    name = "group_by_row"
    num_nat_args = 2

    def min_rank(self) -> int:
        return 2

    def out_shape(self, args, view_args, in_shape):
        _require_rank(self, in_shape)
        per_thread = args[1]
        rows, cols = in_shape[0], in_shape[1]
        return (rows // per_thread, cols, per_thread) + tuple(in_shape[2:])

    def to_source(self, args, view_args, in_shape, coords):
        per_thread = args[1]
        rows = in_shape[0]
        stride = rows // per_thread
        y, x, i = coords[0], coords[1], coords[2]
        return (y + stride * i, x) + tuple(coords[3:])

    def static_constraints(self, args, in_shape):
        problems = []
        if nat_divisible(in_shape[0], args[1]) is False:
            problems.append(f"group_by_row: {in_shape[0]} % {args[1]} != 0")
        return problems


class ViewRegistry:
    """Maps view names to their implementations."""

    def __init__(self) -> None:
        self._views: Dict[str, ViewImpl] = {}

    def register(self, impl: ViewImpl) -> ViewImpl:
        if impl.name in self._views:
            raise ViewError(f"view `{impl.name}` registered twice")
        self._views[impl.name] = impl
        return impl

    def lookup(self, name: str) -> ViewImpl:
        if name not in self._views:
            raise ViewError(f"unknown view `{name}`")
        return self._views[name]

    def known(self, name: str) -> bool:
        return name in self._views

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._views))


_DEFAULT = ViewRegistry()
for _impl in (
    IdentityView(),
    GroupView(),
    TransposeView(),
    ReverseView(),
    SplitView(),
    MapView(),
    JoinView(),
    GroupByTileView(),
    GroupByRowView(),
):
    _DEFAULT.register(_impl)


def default_registry() -> ViewRegistry:
    """The registry containing all built-in views."""
    return _DEFAULT


def resolve_view(ref: ViewRef, registry: Optional[ViewRegistry] = None) -> ResolvedView:
    """Resolve a syntactic view reference against a registry (recursively)."""
    registry = registry or _DEFAULT
    impl = registry.lookup(ref.name)
    impl.check_arity(ref)
    view_args = tuple(resolve_view(arg, registry) for arg in ref.view_args)
    return ResolvedView(impl=impl, nat_args=ref.nat_args, view_args=view_args)
