"""Generating host-side C++ from CPU Descend functions.

CPU functions manage memory and launch kernels; the generator maps the
prelude operations to the CUDA runtime API:

* ``GpuGlobal::alloc_copy(&x)`` → ``cudaMalloc`` + ``cudaMemcpy(..., cudaMemcpyHostToDevice)``
* ``copy_mem_to_host(dst, src)`` → ``cudaMemcpy(..., cudaMemcpyDeviceToHost)``
* ``f::<<<G, B>>>(args)``        → ``f<<<dim3(...), dim3(...)>>>(args)`` + ``cudaDeviceSynchronize()``

The generated host code intentionally keeps the structure of the Descend
source; it is meant to be read next to it (and golden-tested), not to be a
production CUDA host framework.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim, DimName
from repro.descend.ast.places import PVar, PlaceExpr
from repro.descend.ast.types import ArrayType, ArrayViewType, AtType, DataType, RefType
from repro.descend.codegen.index_expr import nat_to_cexpr
from repro.descend.codegen.kernel_gen import scalar_ctype
from repro.descend.codegen.writer import SourceWriter
from repro.errors import DescendCodegenError


class HostGenerator:
    """Generates C++ host code for one CPU Descend function."""

    def __init__(self, fun_def: T.FunDef, program: T.Program) -> None:
        self.fun_def = fun_def
        self.program = program
        self.writer = SourceWriter()
        #: variable -> (element C type, element-count expression as C source)
        self.arrays: Dict[str, Tuple[str, str]] = {}

    def generate(self) -> str:
        params = ", ".join(self._param_decl(p) for p in self.fun_def.params)
        self.writer.comment(f"generated from Descend host function `{self.fun_def.name}`")
        self.writer.open_block(f"void {self.fun_def.name}({params})")
        self._emit_block(self.fun_def.body)
        self.writer.close_block()
        return self.writer.source()

    def _param_decl(self, param: T.FunParam) -> str:
        ty = param.ty
        if isinstance(ty, RefType) and isinstance(ty.referent, (ArrayType, ArrayViewType)):
            ctype = scalar_ctype(ty.referent)
            count = nat_to_cexpr(ty.referent.shape()[0], {}).render()
            total = " * ".join(nat_to_cexpr(s, {}).render() for s in ty.referent.shape())
            self.arrays[param.name] = (ctype, total or count)
            qualifier = "" if ty.uniq else "const "
            return f"{qualifier}{ctype} *{param.name}"
        if isinstance(ty, RefType):
            return f"{scalar_ctype(ty.referent)} *{param.name}"
        return f"{scalar_ctype(ty)} {param.name}"

    # -- statements ----------------------------------------------------------------
    def _emit_block(self, block: T.Block) -> None:
        for stmt in block.stmts:
            self._emit_stmt(stmt)

    def _emit_stmt(self, term: T.Term) -> None:
        if isinstance(term, T.LetTerm):
            self._emit_let(term)
            return
        if isinstance(term, T.FnApp):
            self._emit_builtin_call(term)
            return
        if isinstance(term, T.KernelLaunch):
            self._emit_launch(term)
            return
        if isinstance(term, T.Block):
            self._emit_block(term)
            return
        raise DescendCodegenError(f"unsupported host statement {term}")

    def _emit_let(self, term: T.LetTerm) -> None:
        init = term.init
        if isinstance(init, T.FnApp) and init.name == "GpuGlobal::alloc_copy":
            source_name, ctype, count = self._array_arg(init.args[0])
            self.writer.line(f"{ctype} *{term.name};")
            self.writer.line(f"cudaMalloc(&{term.name}, {count} * sizeof({ctype}));")
            self.writer.line(
                f"cudaMemcpy({term.name}, {source_name}, {count} * sizeof({ctype}), "
                "cudaMemcpyHostToDevice);"
            )
            self.arrays[term.name] = (ctype, count)
            return
        if isinstance(init, T.FnApp) and init.name == "GpuGlobal::alloc":
            ty = init.ty_args[0]
            ctype = scalar_ctype(ty)
            count = " * ".join(nat_to_cexpr(s, {}).render() for s in ty.shape())
            self.writer.line(f"{ctype} *{term.name};")
            self.writer.line(f"cudaMalloc(&{term.name}, {count} * sizeof({ctype}));")
            self.arrays[term.name] = (ctype, count)
            return
        if isinstance(init, T.FnApp) and init.name == "CpuHeap::new":
            arg = init.args[0]
            if isinstance(arg, T.ArrayInit):
                count = nat_to_cexpr(arg.size, {}).render()
                ctype = "double"
                self.writer.line(f"{ctype} *{term.name} = new {ctype}[{count}];")
                self.writer.line(
                    f"std::fill({term.name}, {term.name} + {count}, "
                    f"{self._host_literal(arg.value)});"
                )
                self.arrays[term.name] = (ctype, count)
                return
        raise DescendCodegenError(f"unsupported host let binding `{term}`")

    def _emit_builtin_call(self, term: T.FnApp) -> None:
        if term.name in ("copy_mem_to_host", "copy_mem_to_gpu"):
            dst_name, ctype, count = self._array_arg(term.args[0])
            src_name, _, _ = self._array_arg(term.args[1])
            direction = (
                "cudaMemcpyDeviceToHost" if term.name == "copy_mem_to_host" else "cudaMemcpyHostToDevice"
            )
            self.writer.line(
                f"cudaMemcpy({dst_name}, {src_name}, {count} * sizeof({ctype}), {direction});"
            )
            return
        raise DescendCodegenError(f"unsupported host call `{term.name}`")

    def _emit_launch(self, term: T.KernelLaunch) -> None:
        grid = _dim3(term.grid_dim)
        block = _dim3(term.block_dim)
        args = ", ".join(self._array_arg(arg)[0] for arg in term.args)
        self.writer.line(f"{term.name}<<<dim3{grid}, dim3{block}>>>({args});")
        self.writer.line("cudaDeviceSynchronize();")

    # -- helpers --------------------------------------------------------------------
    def _array_arg(self, term: T.Term) -> Tuple[str, str, str]:
        """Resolve a borrow/place argument to (C name, element C type, count expr)."""
        place: Optional[PlaceExpr] = None
        if isinstance(term, T.Borrow):
            place = term.place
        elif isinstance(term, T.PlaceTerm):
            place = term.place
        if place is None:
            raise DescendCodegenError(f"unsupported host argument {term}")
        name = place.root().name
        if name not in self.arrays:
            raise DescendCodegenError(f"`{name}` is not an array known to the host generator")
        ctype, count = self.arrays[name]
        return name, ctype, count

    @staticmethod
    def _host_literal(term: T.Term) -> str:
        if isinstance(term, T.Lit):
            return str(term.value)
        raise DescendCodegenError("array initialisers must be literals")


def _dim3(dim: Dim) -> str:
    sizes = {name: nat_to_cexpr(size, {}).render() for name, size in dim.entries}
    x = sizes.get(DimName.X, "1")
    y = sizes.get(DimName.Y, "1")
    z = sizes.get(DimName.Z, "1")
    return f"({x}, {y}, {z})"


def generate_host_function(fun_def: T.FunDef, program: T.Program) -> str:
    """Generate the C++ host source of one CPU Descend function."""
    return HostGenerator(fun_def, program).generate()
