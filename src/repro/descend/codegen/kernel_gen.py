"""Generating CUDA kernels from GPU Descend functions.

The translation follows Section 5 of the paper:

* a GPU grid function becomes a ``__global__`` kernel,
* ``sched`` does not appear in the generated code: its binder becomes the
  block/thread index of the executing thread,
* ``split`` becomes a branch on the block/thread index,
* selections and views over place expressions are lowered to raw indices by
  replaying the view chain with symbolic C index expressions (in reverse
  order, each view transforming the index produced so far),
* ``sync`` becomes ``__syncthreads()``, shared-memory allocations become
  ``__shared__`` arrays, and memory/execution annotations are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim, DimName
from repro.descend.ast.exec_level import GpuGridLevel
from repro.descend.ast.places import PDeref, PIdx, PProj, PSelect, PVar, PView, PlaceExpr
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    DataType,
    RefType,
    ScalarType,
)
from repro.descend.codegen.index_expr import CExpr, CSym, as_cexpr, cconst, csym, nat_to_cexpr
from repro.descend.codegen.writer import SourceWriter
from repro.descend.nat import Nat
from repro.descend.views.indexing import LogicalArray, LogicalPair, bind_view
from repro.errors import DescendCodegenError

_SCALAR_CTYPES = {
    "f64": "double",
    "f32": "float",
    "i32": "int",
    "i64": "long long",
    "u32": "unsigned int",
    "bool": "bool",
    "()": "void",
}

_BLOCK_IDX = {DimName.X: "blockIdx.x", DimName.Y: "blockIdx.y", DimName.Z: "blockIdx.z"}
_THREAD_IDX = {DimName.X: "threadIdx.x", DimName.Y: "threadIdx.y", DimName.Z: "threadIdx.z"}


def scalar_ctype(ty: DataType) -> str:
    current = ty
    while isinstance(current, (ArrayType, ArrayViewType)):
        current = current.elem
    if isinstance(current, ScalarType) and current.name in _SCALAR_CTYPES:
        return _SCALAR_CTYPES[current.name]
    raise DescendCodegenError(f"type `{ty}` has no CUDA representation")


@dataclass
class BufferInfo:
    """What the kernel generator knows about an array-backed variable."""

    c_name: str
    shape: Tuple[CExpr, ...]
    ctype: str
    writable: bool = True


class KernelGenerator:
    """Generates the CUDA C++ source of one GPU Descend function."""

    def __init__(self, fun_def: T.FunDef, nat_env: Optional[Dict[str, int]] = None) -> None:
        self.fun_def = fun_def
        self.nat_env = dict(nat_env or {})
        level = fun_def.exec_spec.level
        if not isinstance(level, GpuGridLevel):
            raise DescendCodegenError(f"`{fun_def.name}` is not a GPU grid function")
        self.level = level
        self.writer = SourceWriter()
        self.buffers: Dict[str, BufferInfo] = {}
        self.scalars: Dict[str, str] = {}
        self.binder_coords: Dict[str, Tuple[CExpr, ...]] = {}
        self._shared_counter = 0
        # split windows: dimension -> origin offset (lo) expression
        self._block_origin: Dict[DimName, CExpr] = {name: cconst(0) for name in level.blocks.names}
        self._thread_origin: Dict[DimName, CExpr] = {name: cconst(0) for name in level.threads.names}
        self._pending_blocks = set(level.blocks.names)
        self._pending_threads = set(level.threads.names)

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def generate(self) -> str:
        params = ", ".join(self._param_decl(p) for p in self.fun_def.params)
        header = f"__global__ void {self.fun_def.name}({params})"
        self.writer.comment(f"generated from Descend function `{self.fun_def.name}`")
        self.writer.comment(f"execution resource: {self.fun_def.exec_spec.describe()}")
        self.writer.open_block(header)
        self._emit_block(self.fun_def.body)
        self.writer.close_block()
        return self.writer.source()

    def _param_decl(self, param: T.FunParam) -> str:
        ty = param.ty
        if isinstance(ty, RefType):
            referent = ty.referent
            ctype = scalar_ctype(referent)
            if isinstance(referent, (ArrayType, ArrayViewType)):
                shape = tuple(nat_to_cexpr(size, self.nat_env) for size in referent.shape())
                self.buffers[param.name] = BufferInfo(param.name, shape, ctype, writable=ty.uniq)
                qualifier = "" if ty.uniq else "const "
                return f"{qualifier}{ctype} *{param.name}"
            self.scalars[param.name] = ctype
            qualifier = "" if ty.uniq else "const "
            return f"{qualifier}{ctype} *{param.name}"
        ctype = scalar_ctype(ty)
        self.scalars[param.name] = ctype
        return f"{ctype} {param.name}"

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _emit_block(self, block: T.Block) -> None:
        for stmt in block.stmts:
            self._emit_stmt(stmt)

    def _emit_stmt(self, term: T.Term) -> None:
        if isinstance(term, T.Block):
            self.writer.open_block("")
            self._emit_block(term)
            self.writer.close_block()
            return
        if isinstance(term, T.Sched):
            self._emit_sched(term)
            return
        if isinstance(term, T.SplitExec):
            self._emit_split(term)
            return
        if isinstance(term, T.Sync):
            self.writer.line("__syncthreads();")
            return
        if isinstance(term, T.LetTerm):
            self._emit_let(term)
            return
        if isinstance(term, T.Assign):
            target = self._place_lvalue(term.place)
            value = self._expr(term.value)
            self.writer.line(f"{target} = {value};")
            return
        if isinstance(term, T.ForNat):
            lo = nat_to_cexpr(term.lo, self.nat_env).render()
            hi = nat_to_cexpr(term.hi, self.nat_env).render()
            self.writer.open_block(
                f"for (int {term.var} = {lo}; {term.var} < {hi}; ++{term.var})"
            )
            self._emit_block(term.body)
            self.writer.close_block()
            return
        if isinstance(term, T.IfTerm):
            self.writer.open_block(f"if ({self._expr(term.cond)})")
            self._emit_block(term.then)
            if term.otherwise is not None:
                self.writer.close_block("} else {")
                self.writer._level += 1  # reopen at same depth
                self._emit_block(term.otherwise)
            self.writer.close_block()
            return
        if isinstance(term, T.ForEach):
            raise DescendCodegenError("`for ... in collection` is not supported in GPU code generation")
        # expression statement
        self.writer.line(f"{self._expr(term)};")

    def _emit_sched(self, term: T.Sched) -> None:
        over_blocks = bool(self._pending_blocks)
        index_table = _BLOCK_IDX if over_blocks else _THREAD_IDX
        origins = self._block_origin if over_blocks else self._thread_origin
        pending = self._pending_blocks if over_blocks else self._pending_threads

        coords = []
        for dim in term.dims:
            if dim not in pending:
                raise DescendCodegenError(
                    f"dimension {dim} is not schedulable at this point in `{self.fun_def.name}`"
                )
            coords.append(csym(index_table[dim]) - origins[dim])
        self.binder_coords[term.binder] = tuple(coords)
        removed = list(term.dims)
        for dim in removed:
            pending.discard(dim)
        dims_text = ",".join(str(d) for d in term.dims)
        self.writer.comment(f"sched({dims_text}) {term.binder} in {term.exec_name}")
        self._emit_block(term.body)
        for dim in removed:
            pending.add(dim)
        self.binder_coords.pop(term.binder, None)

    def _emit_split(self, term: T.SplitExec) -> None:
        over_blocks = term.dim in self._pending_blocks
        index_table = _BLOCK_IDX if over_blocks else _THREAD_IDX
        origins = self._block_origin if over_blocks else self._thread_origin
        origin = origins[term.dim]
        pos = nat_to_cexpr(term.pos, self.nat_env)
        relative = csym(index_table[term.dim]) - origin
        self.writer.open_block(f"if ({relative.render()} < {pos.render()})")
        self._emit_block(term.first_body)
        self.writer.close_block("} else {")
        self.writer._level += 1
        origins[term.dim] = origin + pos
        self._emit_block(term.second_body)
        origins[term.dim] = origin
        self.writer.close_block()

    def _emit_let(self, term: T.LetTerm) -> None:
        init = term.init
        if isinstance(init, T.Alloc):
            shape = tuple(nat_to_cexpr(size, self.nat_env) for size in _alloc_shape(init.ty))
            ctype = scalar_ctype(init.ty)
            total = cconst(1)
            for extent in shape:
                total = total * extent
            qualifier = "__shared__ " if str(init.mem) == "gpu.shared" else ""
            self.writer.line(f"{qualifier}{ctype} {term.name}[{total.render()}];")
            self.buffers[term.name] = BufferInfo(term.name, shape, ctype)
            return
        value = self._expr(init)
        ctype = self._infer_ctype(init)
        self.scalars[term.name] = ctype
        self.writer.line(f"{ctype} {term.name} = {value};")

    def _infer_ctype(self, term: T.Term) -> str:
        if isinstance(term, T.Lit):
            if isinstance(term.ty, ScalarType) and term.ty.name in _SCALAR_CTYPES:
                return _SCALAR_CTYPES[term.ty.name]
        if isinstance(term, T.NatTerm):
            return "int"
        return "auto"

    # ------------------------------------------------------------------
    # expressions and places
    # ------------------------------------------------------------------

    def _expr(self, term: T.Term) -> str:
        if isinstance(term, T.Lit):
            return _literal(term)
        if isinstance(term, T.NatTerm):
            return nat_to_cexpr(term.nat, self.nat_env).render()
        if isinstance(term, T.PlaceTerm):
            return self._place_lvalue(term.place)
        if isinstance(term, T.BinaryOp):
            return f"({self._expr(term.lhs)} {term.op} {self._expr(term.rhs)})"
        if isinstance(term, T.UnaryOp):
            return f"({term.op}{self._expr(term.operand)})"
        if isinstance(term, T.Borrow):
            return self._place_lvalue(term.place)
        raise DescendCodegenError(f"cannot generate CUDA for expression {term}")

    def _place_lvalue(self, place: PlaceExpr) -> str:
        parts = place.parts()
        root = parts[0]
        assert isinstance(root, PVar)
        if root.name in self.scalars and root.name not in self.buffers:
            if len([p for p in parts[1:] if not isinstance(p, PDeref)]) == 0:
                return root.name
            raise DescendCodegenError(f"cannot index scalar `{root.name}`")
        if root.name not in self.buffers:
            raise DescendCodegenError(f"unknown variable `{root.name}` in code generation")
        info = self.buffers[root.name]

        current: Union[LogicalArray, LogicalPair] = LogicalArray.root(info.shape)
        for part in parts[1:]:
            if isinstance(part, PDeref):
                continue
            if isinstance(part, PView):
                if isinstance(current, LogicalPair):
                    raise DescendCodegenError("`split` must be followed by `.fst`/`.snd`")
                bound = bind_view(part.ref, resolver=lambda nat: nat_to_cexpr(nat, self.nat_env))
                current = current.apply_view(bound)
                continue
            if isinstance(part, PProj):
                if isinstance(current, LogicalPair):
                    current = current.project(part.index)
                    continue
                raise DescendCodegenError("tuple projections are not supported in kernels")
            if isinstance(current, LogicalPair):
                raise DescendCodegenError("`split` must be followed by `.fst`/`.snd`")
            if isinstance(part, PSelect):
                coords = self.binder_coords.get(part.exec_var)
                if coords is None:
                    raise DescendCodegenError(
                        f"`{part.exec_var}` is not a scheduled execution resource"
                    )
                current = current.select(coords)
                continue
            if isinstance(part, PIdx):
                if isinstance(part.index, Nat):
                    index: CExpr = nat_to_cexpr(part.index, self.nat_env)
                else:
                    index = csym(self._expr(part.index))
                current = current.index(index)
                continue
            raise DescendCodegenError(f"unsupported place part {part}")

        if isinstance(current, LogicalPair):
            raise DescendCodegenError("`split` must be followed by `.fst`/`.snd`")
        if not current.is_scalar():
            raise DescendCodegenError(
                f"place `{place}` does not denote a single element; arrays cannot be "
                "copied wholesale in generated code"
            )
        offset = current.flat_offset(())
        return f"{info.c_name}[{as_cexpr(offset).render()}]"


def _alloc_shape(ty: DataType) -> Tuple[Nat, ...]:
    if isinstance(ty, (ArrayType, ArrayViewType)):
        return ty.shape()
    raise DescendCodegenError(f"cannot allocate non-array type `{ty}` in shared/private memory")


def _literal(term: T.Lit) -> str:
    if isinstance(term.ty, ScalarType):
        if term.ty.name == "f64":
            text = repr(float(term.value))
            return text if "." in text or "e" in text else text + ".0"
        if term.ty.name == "f32":
            return f"{float(term.value)}f"
        if term.ty.name == "bool":
            return "true" if term.value else "false"
    return str(term.value)


def generate_kernel(fun_def: T.FunDef, nat_env: Optional[Dict[str, int]] = None) -> str:
    """Generate the CUDA source of one GPU Descend function."""
    return KernelGenerator(fun_def, nat_env).generate()
