"""Code generation: Descend → CUDA C++.

Mirrors Section 5 of the paper: GPU functions become ``__global__`` CUDA
kernels, host functions become C++ functions using the CUDA runtime API,
``sched`` disappears (its binders become block/thread indices), views are
compiled into raw index arithmetic by processing the applied views in
reverse order, and static information such as memory annotations is dropped.

* :mod:`repro.descend.codegen.index_expr` — symbolic C index expressions (the
  value domain plugged into the view-indexing engine),
* :mod:`repro.descend.codegen.kernel_gen` — kernel (GPU function) generation,
* :mod:`repro.descend.codegen.host_gen` — host function generation,
* :mod:`repro.descend.codegen.compiler` — whole-module assembly.
"""

from repro.descend.codegen.compiler import CudaModule, generate_cuda
from repro.descend.codegen.index_expr import CExpr, csym, cconst

__all__ = ["CudaModule", "generate_cuda", "CExpr", "csym", "cconst"]
