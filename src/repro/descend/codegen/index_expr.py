"""Symbolic C index expressions.

The view-indexing engine (:mod:`repro.descend.views.indexing`) is agnostic to
its value domain: it only needs ``+``, ``-``, ``*``, ``//`` and ``%``.  The
code generator instantiates it with :class:`CExpr` values, so the exact same
view semantics that the interpreter executes are *emitted* as raw CUDA index
arithmetic (the paper's reverse-order view lowering).

Light algebraic simplification keeps the emitted indices readable:
``x * 1 = x``, ``x + 0 = x``, ``0 * x = 0`` and constant folding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.descend.nat import Nat, NatBinOp, NatConst, NatVar
from repro.errors import DescendCodegenError


class CExpr:
    """Base class of symbolic C expressions."""

    precedence = 100

    def render(self) -> str:
        raise NotImplementedError

    # -- operator overloading so CExpr can flow through the view engine ---------
    def __add__(self, other):
        return _binary("+", self, as_cexpr(other))

    def __radd__(self, other):
        return _binary("+", as_cexpr(other), self)

    def __sub__(self, other):
        return _binary("-", self, as_cexpr(other))

    def __rsub__(self, other):
        return _binary("-", as_cexpr(other), self)

    def __mul__(self, other):
        return _binary("*", self, as_cexpr(other))

    def __rmul__(self, other):
        return _binary("*", as_cexpr(other), self)

    def __floordiv__(self, other):
        return _binary("/", self, as_cexpr(other))

    def __rfloordiv__(self, other):
        return _binary("/", as_cexpr(other), self)

    def __mod__(self, other):
        return _binary("%", self, as_cexpr(other))

    def __rmod__(self, other):
        return _binary("%", as_cexpr(other), self)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class CConst(CExpr):
    """An integer constant."""

    value: int

    def render(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CSym(CExpr):
    """A named symbol (``threadIdx.x``, a loop variable, a nat parameter...)."""

    name: str

    def render(self) -> str:
        return self.name


_PRECEDENCE = {"+": 1, "-": 1, "*": 2, "/": 2, "%": 2, "<<": 0}


@dataclass(frozen=True)
class CBinOp(CExpr):
    """A binary operation over index expressions."""

    op: str
    lhs: CExpr
    rhs: CExpr

    @property
    def precedence(self) -> int:  # type: ignore[override]
        return _PRECEDENCE.get(self.op, 1)

    def render(self) -> str:
        lhs = self._render_side(self.lhs, parent_left=True)
        rhs = self._render_side(self.rhs, parent_left=False)
        return f"{lhs} {self.op} {rhs}"

    def _render_side(self, side: CExpr, parent_left: bool) -> str:
        text = side.render()
        if isinstance(side, CBinOp):
            needs_parens = side.precedence < self.precedence or (
                not parent_left and side.precedence == self.precedence and self.op in ("-", "/", "%")
            )
            if needs_parens or side.op in ("<<",):
                return f"({text})"
        return text


def cconst(value: int) -> CConst:
    return CConst(int(value))


def csym(name: str) -> CSym:
    return CSym(name)


def as_cexpr(value: Union[int, CExpr]) -> CExpr:
    if isinstance(value, CExpr):
        return value
    if isinstance(value, (int,)):
        return CConst(int(value))
    raise DescendCodegenError(f"cannot convert {value!r} into a C index expression")


def _binary(op: str, lhs: CExpr, rhs: CExpr) -> CExpr:
    """Build a binary expression with light constant folding and simplification."""
    if isinstance(lhs, CConst) and isinstance(rhs, CConst):
        left, right = lhs.value, rhs.value
        if op == "+":
            return CConst(left + right)
        if op == "-":
            return CConst(left - right)
        if op == "*":
            return CConst(left * right)
        if op == "/" and right != 0:
            return CConst(left // right)
        if op == "%" and right != 0:
            return CConst(left % right)
    if op == "+":
        if isinstance(lhs, CConst) and lhs.value == 0:
            return rhs
        if isinstance(rhs, CConst) and rhs.value == 0:
            return lhs
    if op == "-" and isinstance(rhs, CConst) and rhs.value == 0:
        return lhs
    if op == "*":
        if isinstance(lhs, CConst):
            if lhs.value == 0:
                return CConst(0)
            if lhs.value == 1:
                return rhs
        if isinstance(rhs, CConst):
            if rhs.value == 0:
                return CConst(0)
            if rhs.value == 1:
                return lhs
    if op in ("/", "%") and isinstance(rhs, CConst) and rhs.value == 1:
        return lhs if op == "/" else CConst(0)
    return CBinOp(op, lhs, rhs)


def nat_to_cexpr(nat: Nat, env=None) -> CExpr:
    """Lower a nat expression to a C index expression.

    Nat variables that have concrete bindings in ``env`` become constants,
    others become symbols (loop variables, nat template parameters).  Powers
    of two become shifts (``2^k`` → ``1 << k``).
    """
    env = env or {}
    if isinstance(nat, NatConst):
        return CConst(nat.value)
    if isinstance(nat, NatVar):
        if nat.name in env:
            return CConst(int(env[nat.name]))
        return CSym(nat.name)
    if isinstance(nat, NatBinOp):
        if nat.op == "^":
            base = nat_to_cexpr(nat.lhs, env)
            exponent = nat_to_cexpr(nat.rhs, env)
            if isinstance(base, CConst) and base.value == 2:
                if isinstance(exponent, CConst):
                    return CConst(2 ** exponent.value)
                return CBinOp("<<", CConst(1), exponent)
            if isinstance(base, CConst) and isinstance(exponent, CConst):
                return CConst(base.value ** exponent.value)
            raise DescendCodegenError(
                f"cannot lower power expression {nat} to C (only powers of two are supported)"
            )
        lhs = nat_to_cexpr(nat.lhs, env)
        rhs = nat_to_cexpr(nat.rhs, env)
        return _binary(nat.op, lhs, rhs)
    raise DescendCodegenError(f"cannot lower nat expression {nat!r}")
