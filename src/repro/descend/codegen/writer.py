"""A small indented source writer used by the code generators."""

from __future__ import annotations

from typing import List


class SourceWriter:
    """Accumulates lines of source code with indentation handling."""

    def __init__(self, indent: str = "    ") -> None:
        self._lines: List[str] = []
        self._indent = indent
        self._level = 0

    def line(self, text: str = "") -> "SourceWriter":
        if text:
            self._lines.append(self._indent * self._level + text)
        else:
            self._lines.append("")
        return self

    def open_block(self, header: str) -> "SourceWriter":
        self.line(header + " {")
        self._level += 1
        return self

    def close_block(self, footer: str = "}") -> "SourceWriter":
        self._level = max(0, self._level - 1)
        self.line(footer)
        return self

    def comment(self, text: str) -> "SourceWriter":
        self.line(f"// {text}")
        return self

    def source(self) -> str:
        return "\n".join(self._lines).rstrip() + "\n"
