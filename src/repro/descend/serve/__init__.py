"""The compile-service daemon (``descendc serve``).

One long-running process keeps a hot, store-attached compile session and
serves ``check`` / ``compile`` / ``print`` / ``plan`` / ``cache.stats`` /
``ping`` / ``shutdown`` to local clients over a newline-delimited JSON
protocol (API schema v1, :mod:`repro.descend.api`).  See
:mod:`repro.descend.serve.server` for the execution model (single compile
worker, request coalescing, bounded-queue backpressure, graceful drain).
"""

from __future__ import annotations

from repro.descend.serve.protocol import ServeConfig, coalesce_key
from repro.descend.serve.server import CompileServer, ServerThread

__all__ = ["CompileServer", "ServerThread", "ServeConfig", "coalesce_key"]
