"""Server-side protocol helpers for the compile-service daemon.

The wire schema itself (frame codec, :class:`~repro.descend.api.Request` /
:class:`~repro.descend.api.Response`, error codes) lives in
:mod:`repro.descend.api` — it is shared with :class:`DescendClient`.  This
module adds what only the *server* needs: the coalescing key that detects
identical in-flight work, and the tunables bundle.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.descend.api import COMPILE_OPS, MAX_FRAME_BYTES, Request, encode_frame

#: Defaults for the daemon's tunables (overridable via ``descendc serve``).
DEFAULT_MAX_PENDING = 64
DEFAULT_DRAIN_TIMEOUT_S = 10.0
DEFAULT_READ_TIMEOUT_S = 300.0


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.descend.serve.server.CompileServer` needs.

    ``max_pending`` bounds the compile queue (backpressure: requests past
    the bound get a structured ``overloaded`` error instead of unbounded
    buffering); ``max_frame_bytes`` bounds one protocol line;
    ``drain_timeout_s`` bounds the graceful-shutdown wait for in-flight
    work; ``read_timeout_s`` bounds how long one connection may sit idle
    between frames before the daemon reclaims it (``None`` disables the
    idle kick) — a stalled or leaking client costs one fd for a bounded
    time, never forever.
    """

    socket_path: str
    store_path: Optional[str] = None
    max_pending: int = DEFAULT_MAX_PENDING
    max_frame_bytes: int = MAX_FRAME_BYTES
    drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S
    read_timeout_s: Optional[float] = DEFAULT_READ_TIMEOUT_S
    #: Serve the attached artifact store over HTTP for remote sweep workers
    #: (``0`` binds an ephemeral port; ``None`` disables the endpoint) —
    #: see :mod:`repro.descend.serve.storehttp`.
    store_http_port: Optional[int] = None
    store_http_host: str = "127.0.0.1"


def coalesce_key(request: Request) -> Optional[str]:
    """The digest under which identical in-flight requests coalesce.

    Two requests coalesce when they would run the exact same compile: same
    op, same source-or-path, same function selection and options.  The
    request ``id`` deliberately does not participate — it is per-client
    labelling, not content.  Non-compiling ops (``ping``, ``cache.stats``,
    ``shutdown``) never coalesce; they return ``None``.
    """
    if request.op not in COMPILE_OPS:
        return None
    frame = request.to_wire()
    frame.pop("id", None)
    return hashlib.sha256(encode_frame(frame)).hexdigest()
