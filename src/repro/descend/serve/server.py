"""The compile-service daemon: ``descendc serve``.

A stdlib-``asyncio`` server that keeps one hot, store-attached
:class:`~repro.descend.api.LocalBackend` (and therefore one
:class:`~repro.descend.driver.CompileSession`) alive across any number of
clients, turning every repeated compile in the fleet into a memory- or
store-tier cache hit.  Clients speak the newline-delimited JSON protocol of
API schema v1 (:mod:`repro.descend.api`) over a local ``AF_UNIX`` socket.

Execution model, deliberately boring:

* The event loop only parses frames and shuffles bytes; compile work runs
  on a **single worker thread** (the "single writer"): the shared session
  and the persistent artifact store see strictly serialized mutations, and
  each response's pass timings belong to exactly one request.
* **Coalescing**: identical in-flight compile requests (same op + source +
  options, :func:`~repro.descend.serve.protocol.coalesce_key`) share one
  execution — ten clients compiling the same program concurrently cost one
  compile, and each still gets a response under its own request id.
* **Backpressure**: at most ``max_pending`` requests may be queued for the
  worker; excess requests receive a structured ``overloaded`` error
  immediately instead of growing an unbounded queue.
* **Per-client isolation**: every protocol failure (malformed JSON, wrong
  version, oversized frame) is answered with a structured error on that
  connection only — it never kills the server, and cached failure
  diagnostics are detached copies, so no client can mutate what another
  receives.
* **Graceful drain**: SIGTERM/SIGINT (or the ``shutdown`` op) stops
  accepting work, waits up to ``drain_timeout_s`` for in-flight requests to
  finish and flush their responses, then exits.
* **Partial-failure hardening**: idle connections are reclaimed after
  ``read_timeout_s``; a request's optional ``deadline_ms`` is honored at
  executor-dequeue time (``deadline-exceeded`` instead of a wasted
  compile); ``health`` is answered on the loop so liveness never queues
  behind a wedged worker; and the socket read/write and executor
  submission seams carry :mod:`repro.faults` injection points
  (``serve.conn.read`` / ``serve.conn.write`` / ``serve.exec.submit``)
  so the chaos suite can prove all of the above under injected failure.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, Optional, Set

from repro import faults
from repro.descend.api import (
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_OVERLOADED,
    ERR_OVERSIZED,
    ERR_SHUTTING_DOWN,
    OP_HEALTH,
    OP_PING,
    OP_SHUTDOWN,
    LocalBackend,
    ProtocolError,
    Request,
    Response,
    decode_frame,
    encode_frame,
)
from repro.descend.serve.protocol import ServeConfig, coalesce_key

__all__ = ["CompileServer", "ServerThread", "ServeConfig"]


class CompileServer:
    """One daemon instance: a shared backend behind a local socket."""

    def __init__(self, backend: LocalBackend, config: ServeConfig) -> None:
        self.backend = backend
        self.config = config
        self.requests = 0
        self.coalesced = 0
        self.overloaded = 0
        self.protocol_errors = 0
        self.started_unix = time.time()
        self._pending = 0
        self._inflight: Dict[str, asyncio.Task] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._clients: Set[asyncio.StreamWriter] = set()
        self._stopping = asyncio.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="descend-compile"
        )
        #: Bound ``(host, port)`` of the HTTP store endpoint, once serving.
        self.store_http_address: Optional[tuple] = None
        self._store_endpoint = None

    # -- lifecycle --------------------------------------------------------------
    def request_stop(self) -> None:
        """Begin graceful shutdown (idempotent; callable from the loop only)."""
        self._stopping.set()

    def stop_threadsafe(self) -> None:
        """Begin graceful shutdown from any thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.request_stop)

    @property
    def store_url(self) -> Optional[str]:
        """The HTTP store endpoint's URL, once serving (``None`` otherwise)."""
        if self.store_http_address is None:
            return None
        host, port = self.store_http_address
        return f"http://{host}:{port}"

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "requests": self.requests,
            "coalesced": self.coalesced,
            "overloaded": self.overloaded,
            "protocol_errors": self.protocol_errors,
            "pending": self._pending,
            "clients": len(self._clients),
            "uptime_s": time.time() - self.started_unix,
        }
        if self._store_endpoint is not None:
            stats["store_http"] = {
                "url": self.store_url,
                "requests": self._store_endpoint.requests,
                "errors": self._store_endpoint.errors,
            }
        return stats

    async def run(self, on_ready=None) -> None:
        """Serve until :meth:`request_stop`, then drain and exit."""
        self._loop = asyncio.get_running_loop()
        if self.config.store_path:
            self.backend.attach_store_path(self.config.store_path)
        path = self.config.socket_path
        # A socket path under a directory that does not exist yet (fresh
        # container, tmpfs wiped between runs) is a startup failure the
        # daemon can trivially heal instead of dying on bind().
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._unlink_stale_socket(path)
        server = await asyncio.start_unix_server(
            self._on_client, path=path, limit=self.config.max_frame_bytes
        )
        store_server = None
        if self.config.store_http_port is not None:
            if not self.config.store_path:
                raise ValueError("the HTTP store endpoint requires a store path")
            from repro.descend.serve.storehttp import StoreHttpEndpoint

            # Store work shares the compile executor: the daemon's single
            # writer stays the one serialization point for local compiles
            # *and* remote index swaps.
            self._store_endpoint = StoreHttpEndpoint(
                self.config.store_path, self._executor
            )
            store_server = await asyncio.start_server(
                self._store_endpoint.on_client,
                host=self.config.store_http_host,
                port=self.config.store_http_port,
            )
            bound = store_server.sockets[0].getsockname()
            self.store_http_address = (bound[0], bound[1])
        self._install_signal_handlers()
        try:
            if on_ready is not None:
                on_ready()
            await self._stopping.wait()
        finally:
            server.close()
            await server.wait_closed()
            if store_server is not None:
                store_server.close()
                await store_server.wait_closed()
            await self._drain()
            for writer in list(self._clients):
                self._close_writer(writer)
            self._executor.shutdown(wait=False)
            with contextlib.suppress(OSError):
                os.unlink(path)

    def _install_signal_handlers(self) -> None:
        assert self._loop is not None
        for signum in (signal.SIGTERM, signal.SIGINT):
            # Unavailable off the main thread (ServerThread) and on some
            # platforms; the shutdown op and stop_threadsafe still work.
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                self._loop.add_signal_handler(signum, self.request_stop)

    @staticmethod
    def _unlink_stale_socket(path: str) -> None:
        # A previous daemon that died without cleanup leaves its socket file
        # behind; binding over it requires removing it first.  Only ever
        # remove an actual socket — refuse to delete a regular file.
        import stat

        try:
            mode = os.stat(path).st_mode
        except OSError:
            return
        if stat.S_ISSOCK(mode):
            with contextlib.suppress(OSError):
                os.unlink(path)

    async def _drain(self) -> None:
        """Wait (bounded) for in-flight requests to finish and flush."""
        pending = {task for task in self._tasks if not task.done()}
        if pending:
            await asyncio.wait(pending, timeout=self.config.drain_timeout_s)

    # -- connection handling ----------------------------------------------------
    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._clients.add(writer)
        try:
            while not self._stopping.is_set():
                try:
                    if self.config.read_timeout_s is not None:
                        # Idle-connection bound: a client that stops talking
                        # (or leaked its socket) is reclaimed instead of
                        # holding an fd forever.
                        line = await asyncio.wait_for(
                            reader.readline(), self.config.read_timeout_s
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    break
                except (ValueError, asyncio.LimitOverrunError):
                    # A line longer than the stream limit: the buffer is
                    # poisoned mid-frame, so answer once and drop the client.
                    self.protocol_errors += 1
                    await self._send(
                        writer,
                        Response.failure(
                            "", ERR_OVERSIZED,
                            f"frame exceeds {self.config.max_frame_bytes} bytes",
                        ),
                    )
                    break
                except (ConnectionResetError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                if faults.check("serve.conn.read") is not None:
                    # Injected connection loss mid-read: drop the client the
                    # way a real reset would, without answering.
                    break
                task = asyncio.ensure_future(self._serve_line(line, writer))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                # One request at a time per connection (pipelining stays
                # ordered); concurrency comes from multiple connections.
                await task
        finally:
            self._clients.discard(writer)
            self._close_writer(writer)

    async def _serve_line(self, line: bytes, writer: asyncio.StreamWriter) -> None:
        self.requests += 1
        request_id: Optional[str] = None
        try:
            frame = decode_frame(line, self.config.max_frame_bytes)
            raw_id = frame.get("id")
            request_id = raw_id if isinstance(raw_id, str) else None
            request = Request.from_wire(frame)
        except ProtocolError as exc:
            self.protocol_errors += 1
            await self._send(
                writer, Response.failure("", exc.code, str(exc), id=request_id)
            )
            return
        if self._stopping.is_set():
            await self._send(
                writer,
                Response.failure(
                    request.op, ERR_SHUTTING_DOWN, "server is shutting down",
                    id=request.id,
                ),
            )
            return
        if request.op == OP_PING:
            artifacts: Dict[str, object] = {"pong": True, "pid": os.getpid()}
            artifacts.update(self.stats())
            await self._send(
                writer,
                Response(op=OP_PING, status="ok", id=request.id, artifacts=artifacts),
            )
            return
        if request.op == OP_HEALTH:
            # Liveness must not queue behind compiles: answered on the loop,
            # like ping, so a wedged worker is exactly what health reveals.
            health: Dict[str, object] = self.backend.health()
            health["server"] = self.stats()
            await self._send(
                writer,
                Response(op=OP_HEALTH, status="ok", id=request.id, artifacts=health),
            )
            return
        if request.op == OP_SHUTDOWN:
            await self._send(
                writer,
                Response(
                    op=OP_SHUTDOWN, status="ok", id=request.id,
                    artifacts={"stopping": True},
                ),
            )
            self.request_stop()
            return
        response = await self._execute_coalesced(request)
        await self._send(writer, response)

    async def _execute_coalesced(self, request: Request) -> Response:
        key = coalesce_key(request)
        inflight = self._inflight.get(key) if key is not None else None
        if inflight is not None:
            # Identical request already executing: share its result, but
            # answer under this client's request id.
            self.coalesced += 1
            response = await inflight
            return replace(response, id=request.id)
        if self._pending >= self.config.max_pending:
            self.overloaded += 1
            return Response.failure(
                request.op, ERR_OVERLOADED,
                f"compile queue is full ({self.config.max_pending} pending)",
                id=request.id,
            )
        self._pending += 1
        task = asyncio.ensure_future(self._execute(request))
        if key is not None:
            self._inflight[key] = task
        try:
            return await task
        finally:
            self._pending -= 1
            if key is not None and self._inflight.get(key) is task:
                del self._inflight[key]

    async def _execute(self, request: Request) -> Response:
        assert self._loop is not None
        # An optional per-request deadline: the client says how long the
        # answer is still worth computing.  The executor checks it at
        # dequeue time — a request that waited out its budget behind the
        # single writer is answered `deadline-exceeded` instead of burning
        # the worker on a result nobody is waiting for.
        deadline_ms = request.option("deadline_ms")
        deadline: Optional[float] = None
        if isinstance(deadline_ms, (int, float)) and not isinstance(deadline_ms, bool):
            deadline = time.monotonic() + max(0.0, float(deadline_ms)) / 1000.0

        def work() -> Response:
            if deadline is not None and time.monotonic() > deadline:
                return Response.failure(
                    request.op,
                    ERR_DEADLINE,
                    f"deadline_ms={deadline_ms} expired while queued",
                    id=request.id,
                )
            return self.backend.handle(request)

        try:
            faults.maybe_raise("serve.exec.submit")
            return await self._loop.run_in_executor(self._executor, work)
        except Exception as exc:  # noqa: BLE001 - the server must never die
            return Response.failure(request.op, ERR_INTERNAL, str(exc), id=request.id)

    async def _send(self, writer: asyncio.StreamWriter, response: Response) -> None:
        """Write one response; a vanished client is that client's problem."""
        try:
            rule = faults.check("serve.conn.write")
            if rule is not None:
                # Injected connection loss mid-response: the client sees the
                # socket die without (or with only part of) the answer —
                # exactly the window its reconnect-and-retry path covers.
                if rule.kind == "torn":
                    frame = encode_frame(response.to_wire())
                    writer.write(frame[: len(frame) // 2])
                    await writer.drain()
                self._close_writer(writer)
                return
            writer.write(encode_frame(response.to_wire()))
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    @staticmethod
    def _close_writer(writer: asyncio.StreamWriter) -> None:
        with contextlib.suppress(OSError, RuntimeError):
            writer.close()


class ServerThread:
    """A daemon running on a background thread (tests, in-process load gen).

    ``descendc serve`` runs :class:`CompileServer` on the main thread via
    ``asyncio.run``; this helper gives tests and the serve benchmark the
    same daemon without a subprocess.
    """

    def __init__(self, backend: LocalBackend, config: ServeConfig) -> None:
        self.backend = backend
        self.config = config
        self.server = CompileServer(backend, config)
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="descendc-serve", daemon=True
        )

    def _run(self) -> None:
        asyncio.run(self.server.run(on_ready=self._ready.set))

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("compile server failed to start in time")
        return self

    @property
    def store_url(self) -> Optional[str]:
        """The daemon's HTTP store endpoint URL (``None`` unless enabled)."""
        return self.server.store_url

    def stop(self, timeout: float = 10.0) -> None:
        self.server.stop_threadsafe()
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
