"""The daemon's HTTP store endpoint: the artifact store served over TCP.

``descendc serve --store-http PORT`` exposes the daemon's artifact store
to remote sweep workers as a small versioned HTTP/1.1 protocol, parsed
directly off the asyncio loop (no ``http.server`` thread pool — the loop
already owns connection shuffling, and store work belongs on the daemon's
single-writer executor anyway).  :class:`~repro.descend.store.backend.HttpBackend`
is the matching client.

Wire protocol (version ``v1``, all paths prefixed ``/v1``):

=====================  ======================================================
``GET /v1/stat``       ``{"format", "schema", "rev", "quarantine"}`` — the
                       attachment handshake; a client refuses a store whose
                       format/schema fingerprint differs from its own.
``GET /v1/blob/<d>``   The raw pickle blob (200) or 404.  Idempotent.
``PUT /v1/blob/<d>``   Store a blob under its digest (204).  Idempotent —
                       concurrent writers of one digest write the same bytes.
``DELETE /v1/blob/<d>[?quarantine=1]``
                       Evict a blob; with ``quarantine=1`` it is moved aside
                       server-side instead of deleted (corrupt-pickle path).
``GET /v1/index``      ``{"rev": N, "entries": {...}|null}`` — ``null`` marks
                       a corrupt index the client should rebuild from blobs.
``PUT /v1/index``      Body ``{"expect_rev": N, "entries": {...}}`` — the
                       rev-guarded compare-and-swap: 204 on success, 409 if
                       the rev moved (the client re-reads and retries).
``POST /v1/maintain``  Body ``{"tmp_stale_s", "quarantine_age_s"}`` — run
                       the stray/tmp/quarantine sweeps server-side (gc).
``POST /v1/clear``     Delete every blob (layout and schema stay).
=====================  ======================================================

Every store operation — including blob GETs — runs on the daemon's
single-writer executor, so one machine stays the serialization point for
the whole fleet: a remote index swap can never interleave with a local
compile's store write.  Protocol errors answer 4xx on that connection
only; backend I/O failures answer 500 and the *client's* retry/degradation
machinery decides what that means (a cache miss, never a crashed sweep).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from concurrent.futures import Executor
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.descend.store.backend import MAX_HTTP_BODY_BYTES, LocalDirBackend
from repro.descend.store.cas import ArtifactStore, default_quarantine_age_s
from repro.descend.store.fingerprint import pipeline_fingerprint

__all__ = ["StoreHttpEndpoint"]

#: Bound on one request's header section (count and per-line length come
#: from the stream limit; this stops a slow-loris header stream).
MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class StoreHttpEndpoint:
    """Serves one :class:`LocalDirBackend` over HTTP on the daemon's loop."""

    def __init__(
        self,
        store_path: str,
        executor: Executor,
        max_body_bytes: int = MAX_HTTP_BODY_BYTES,
    ) -> None:
        self.backend = LocalDirBackend(Path(store_path), pipeline_fingerprint())
        self.backend.ensure_ready()
        self._executor = executor
        self._max_body_bytes = max_body_bytes
        self.requests = 0
        self.errors = 0

    # -- connection handling ----------------------------------------------------
    async def on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, body = request
                self.requests += 1
                try:
                    status, ctype, payload = await loop.run_in_executor(
                        self._executor, self._dispatch, method, target, body
                    )
                except Exception as exc:  # noqa: BLE001 - endpoint must never die
                    self.errors += 1
                    status, ctype, payload = _json_response(500, {"error": str(exc)})
                writer.write(_head(status, ctype, len(payload)) + payload)
                await writer.drain()
                if status >= 400 and status != 404 and status != 409:
                    # Protocol-level trouble: the connection state is suspect
                    # (unread body, bad framing); drop it rather than guess.
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
            ValueError,
            OSError,
        ):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancelling an idle keep-alive connection: end the
            # handler quietly (swallowing is deliberate — there is no caller
            # above this task to propagate to, only the loop's noisy logger).
            pass
        finally:
            with contextlib.suppress(OSError, RuntimeError):
                writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ValueError(f"malformed request line: {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        length = 0
        for _ in range(MAX_HEADER_LINES):
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        else:
            raise ValueError("too many request headers")
        if length < 0 or length > self._max_body_bytes:
            raise ValueError(f"request body of {length} bytes exceeds the bound")
        body = await reader.readexactly(length) if length else b""
        return method, target, body

    # -- request dispatch (runs on the single-writer executor) ------------------
    def _dispatch(self, method: str, target: str, body: bytes) -> Tuple[int, str, bytes]:
        path, _, query = target.partition("?")
        parts = [part for part in path.split("/") if part]
        if not parts or parts[0] != "v1":
            return _json_response(404, {"error": "unknown path (expected /v1/...)"})
        tail = parts[1:]
        try:
            if tail == ["stat"]:
                if method != "GET":
                    return _json_response(405, {"error": "stat is GET-only"})
                return _json_response(200, self.backend.stat())
            if tail == ["blobs"]:
                if method != "GET":
                    return _json_response(405, {"error": "blob listing is GET-only"})
                return _json_response(200, self.backend.list_blobs())
            if tail == ["index"]:
                return self._dispatch_index(method, body)
            if len(tail) == 2 and tail[0] == "blob":
                return self._dispatch_blob(method, tail[1], query, body)
            if tail == ["maintain"]:
                if method != "POST":
                    return _json_response(405, {"error": "maintain is POST-only"})
                options = _json_body(body)
                self.backend.maintain(
                    _number(options.get("tmp_stale_s"), ArtifactStore.TMP_STALE_S),
                    _number(
                        options.get("quarantine_age_s"), default_quarantine_age_s()
                    ),
                )
                return _empty_response(204)
            if tail == ["clear"]:
                if method != "POST":
                    return _json_response(405, {"error": "clear is POST-only"})
                self.backend.wipe()
                return _empty_response(204)
        except ValueError as exc:
            return _json_response(400, {"error": str(exc)})
        except OSError as exc:
            self.errors += 1
            return _json_response(500, {"error": str(exc)})
        return _json_response(404, {"error": f"unknown store endpoint {path}"})

    def _dispatch_index(self, method: str, body: bytes) -> Tuple[int, str, bytes]:
        if method == "GET":
            rev, raw = self.backend.index_read()
            return _json_response(200, {"rev": rev, "entries": raw})
        if method == "PUT":
            payload = _json_body(body)
            expect_rev = payload.get("expect_rev")
            entries = payload.get("entries")
            if not isinstance(expect_rev, int) or not isinstance(entries, dict):
                return _json_response(
                    400, {"error": "index swap needs expect_rev (int) and entries (object)"}
                )
            if self.backend.index_swap(expect_rev, entries):
                return _empty_response(204)
            return _json_response(409, {"error": "index rev moved; re-read and retry"})
        return _json_response(405, {"error": "index is GET/PUT-only"})

    def _dispatch_blob(
        self, method: str, digest: str, query: str, body: bytes
    ) -> Tuple[int, str, bytes]:
        if not LocalDirBackend._is_digest(digest):
            return _json_response(400, {"error": f"not a digest: {digest[:80]!r}"})
        if method == "GET":
            blob = self.backend.blob_get(digest)
            if blob is None:
                return _json_response(404, {"error": "no such blob"})
            return 200, "application/octet-stream", blob
        if method == "PUT":
            self.backend.blob_put(digest, body)
            return _empty_response(204)
        if method == "DELETE":
            if "quarantine=1" in query.split("&"):
                self.backend.blob_quarantine(digest)
            else:
                self.backend.blob_delete(digest)
            return _empty_response(204)
        return _json_response(405, {"error": "blobs are GET/PUT/DELETE-only"})


def _head(status: int, ctype: str, length: int) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {ctype}\r\n"
        f"Content-Length: {length}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode("latin-1")


def _json_response(status: int, payload: Dict[str, object]) -> Tuple[int, str, bytes]:
    return status, "application/json", json.dumps(payload, sort_keys=True).encode("utf-8")


def _empty_response(status: int) -> Tuple[int, str, bytes]:
    return status, "application/json", b""


def _number(value: object, default: float) -> float:
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return max(0.0, float(value))
    return default


def _json_body(body: bytes) -> Dict[str, object]:
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ValueError(f"malformed JSON body: {exc}")
    return payload if isinstance(payload, dict) else {}
