"""A programmatic builder API for Descend programs.

The surface parser (:mod:`repro.descend.frontend`) is the most faithful way
to write Descend, but benchmarks, tests and generated programs are often more
convenient to assemble directly as ASTs.  This module provides a compact
builder vocabulary:

>>> from repro.descend.builder import *
>>> scale = fun(
...     "scale_vec",
...     [param("vec", uniq_ref(GPU_GLOBAL, array(F64, 1024)))],
...     gpu_grid_spec("grid", dim_x(32), dim_x(32)),
...     body(
...         sched("X", "block", "grid",
...               sched("X", "thread", "block",
...                     assign(var("vec").view("group", 32).select("block").select("thread"),
...                            mul(read(var("vec").view("group", 32).select("block").select("thread")),
...                                lit_f64(3.0))))),
...     ),
... )
>>> prog = program(scale)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.descend.ast import terms as T
from repro.descend.ast.dims import (
    Dim,
    DimName,
    dim_x,
    dim_xy,
    dim_xyz,
    dim_y,
    dim_z,
    parse_dim_name,
)
from repro.descend.ast.exec_level import (
    CpuThreadLevel,
    ExecSpec,
    GpuBlockLevel,
    GpuGridLevel,
    GpuThreadLevel,
)
from repro.descend.ast.memory import CPU_MEM, GPU_GLOBAL, GPU_LOCAL, GPU_SHARED, Memory
from repro.descend.ast.places import PlaceExpr, PVar
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    BOOL,
    DataType,
    F32,
    F64,
    GenericParam,
    I32,
    I64,
    Kind,
    RefType,
    ScalarType,
    TupleType,
    U32,
    UNIT,
    WhereClause,
    array,
    array2d,
    boxed,
    shared_ref,
    uniq_ref,
    view_of,
)
from repro.descend.ast.views import ViewRef
from repro.descend.nat import Nat, NatLike, as_nat

__all__ = [
    # dims / memories / types re-exported for convenience
    "Dim", "DimName", "dim_x", "dim_y", "dim_z", "dim_xy", "dim_xyz",
    "CPU_MEM", "GPU_GLOBAL", "GPU_SHARED", "GPU_LOCAL",
    "ArrayType", "ArrayViewType", "AtType", "RefType", "TupleType", "ScalarType",
    "BOOL", "F32", "F64", "I32", "I64", "U32", "UNIT",
    "array", "array2d", "view_of", "boxed", "shared_ref", "uniq_ref",
    "GenericParam", "Kind", "WhereClause", "ViewRef",
    # builders
    "var", "read", "lit_i32", "lit_f32", "lit_f64", "lit_bool", "nat_term",
    "add", "sub", "mul", "div", "rem", "lt", "le", "gt", "ge", "eq", "ne", "neg",
    "borrow", "uniq_borrow", "let", "assign", "body", "block", "if_", "for_nat",
    "for_each", "sched", "split_exec", "sync", "alloc_shared", "alloc_local",
    "array_init", "call", "launch", "cpu_heap_new", "gpu_alloc_copy",
    "copy_to_host", "copy_to_gpu",
    "param", "fun", "program", "gpu_grid_spec", "gpu_block_spec", "gpu_thread_spec",
    "cpu_spec", "nat_param", "dty_param", "mem_param",
]


TermLike = Union[T.Term, PlaceExpr, int, float, bool]


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def var(name: str) -> PVar:
    """A place-expression root variable."""
    return PVar(name)


def as_term(value: TermLike) -> T.Term:
    """Coerce builder-friendly Python values into terms."""
    if isinstance(value, T.Term):
        return value
    if isinstance(value, PlaceExpr):
        return T.PlaceTerm(value)
    if isinstance(value, bool):
        return T.Lit(value, BOOL)
    if isinstance(value, int):
        return T.Lit(value, I32)
    if isinstance(value, float):
        return T.Lit(value, F64)
    raise TypeError(f"cannot interpret {value!r} as a Descend term")


def read(place: PlaceExpr) -> T.PlaceTerm:
    return T.PlaceTerm(place)


def lit_i32(value: int) -> T.Lit:
    return T.Lit(int(value), I32)


def lit_f32(value: float) -> T.Lit:
    return T.Lit(float(value), F32)


def lit_f64(value: float) -> T.Lit:
    return T.Lit(float(value), F64)


def lit_bool(value: bool) -> T.Lit:
    return T.Lit(bool(value), BOOL)


def nat_term(value: NatLike) -> T.NatTerm:
    return T.NatTerm(as_nat(value))


def _binop(op: str, lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return T.BinaryOp(op, as_term(lhs), as_term(rhs))


def add(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("+", lhs, rhs)


def sub(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("-", lhs, rhs)


def mul(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("*", lhs, rhs)


def div(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("/", lhs, rhs)


def rem(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("%", lhs, rhs)


def lt(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("<", lhs, rhs)


def le(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("<=", lhs, rhs)


def gt(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop(">", lhs, rhs)


def ge(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop(">=", lhs, rhs)


def eq(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("==", lhs, rhs)


def ne(lhs: TermLike, rhs: TermLike) -> T.BinaryOp:
    return _binop("!=", lhs, rhs)


def neg(operand: TermLike) -> T.UnaryOp:
    return T.UnaryOp("-", as_term(operand))


def borrow(place: PlaceExpr) -> T.Borrow:
    return T.Borrow(False, place)


def uniq_borrow(place: PlaceExpr) -> T.Borrow:
    return T.Borrow(True, place)


def let(name: str, init: TermLike, ty: Optional[DataType] = None) -> T.LetTerm:
    return T.LetTerm(name, ty, as_term(init))


def assign(place: PlaceExpr, value: TermLike) -> T.Assign:
    return T.Assign(place, as_term(value))


def block(*stmts: TermLike) -> T.Block:
    return T.Block(tuple(as_term(s) for s in stmts))


#: Alias for the body of functions/loops (reads nicer at call sites).
body = block


def if_(cond: TermLike, then: T.Block, otherwise: Optional[T.Block] = None) -> T.IfTerm:
    return T.IfTerm(as_term(cond), then, otherwise)


def for_nat(variable: str, lo: NatLike, hi: NatLike, *stmts: TermLike) -> T.ForNat:
    return T.ForNat(variable, as_nat(lo), as_nat(hi), block(*stmts))


def for_each(variable: str, collection: TermLike, *stmts: TermLike) -> T.ForEach:
    return T.ForEach(variable, as_term(collection), block(*stmts))


def _parse_dims(dims: Union[str, Sequence[DimName]]) -> Tuple[DimName, ...]:
    if isinstance(dims, str):
        return tuple(parse_dim_name(char) for char in dims.replace(",", ""))
    return tuple(dims)


def sched(dims: Union[str, Sequence[DimName]], binder: str, exec_name: str, *stmts: TermLike) -> T.Sched:
    return T.Sched(_parse_dims(dims), binder, exec_name, block(*stmts))


def split_exec(
    dim: Union[str, DimName],
    exec_name: str,
    pos: NatLike,
    first: Tuple[str, T.Block],
    second: Tuple[str, T.Block],
) -> T.SplitExec:
    dim_name = parse_dim_name(dim) if isinstance(dim, str) else dim
    return T.SplitExec(
        dim_name,
        exec_name,
        as_nat(pos),
        first[0],
        first[1],
        second[0],
        second[1],
    )


def sync() -> T.Sync:
    return T.Sync()


def alloc_shared(ty: DataType) -> T.Alloc:
    return T.Alloc(GPU_SHARED, ty)


def alloc_local(ty: DataType) -> T.Alloc:
    return T.Alloc(GPU_LOCAL, ty)


def array_init(value: TermLike, size: NatLike) -> T.ArrayInit:
    return T.ArrayInit(as_term(value), as_nat(size))


def call(
    name: str,
    *args: TermLike,
    nat_args: Sequence[NatLike] = (),
    mem_args: Sequence[Memory] = (),
    ty_args: Sequence[DataType] = (),
) -> T.FnApp:
    return T.FnApp(
        name,
        tuple(as_nat(n) for n in nat_args),
        tuple(mem_args),
        tuple(ty_args),
        tuple(as_term(a) for a in args),
    )


def launch(
    name: str,
    grid_dim: Dim,
    block_dim: Dim,
    *args: TermLike,
    nat_args: Sequence[NatLike] = (),
) -> T.KernelLaunch:
    return T.KernelLaunch(
        name,
        grid_dim,
        block_dim,
        tuple(as_nat(n) for n in nat_args),
        tuple(as_term(a) for a in args),
    )


def cpu_heap_new(init: TermLike) -> T.FnApp:
    return call("CpuHeap::new", init)


def gpu_alloc_copy(source: TermLike) -> T.FnApp:
    return call("GpuGlobal::alloc_copy", source)


def copy_to_host(dst: TermLike, src: TermLike) -> T.FnApp:
    return call("copy_mem_to_host", dst, src)


def copy_to_gpu(dst: TermLike, src: TermLike) -> T.FnApp:
    return call("copy_mem_to_gpu", dst, src)


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------


def param(name: str, ty: DataType) -> T.FunParam:
    return T.FunParam(name, ty)


def nat_param(name: str) -> GenericParam:
    return GenericParam(name, Kind.NAT)


def dty_param(name: str) -> GenericParam:
    return GenericParam(name, Kind.DATA_TYPE)


def mem_param(name: str) -> GenericParam:
    return GenericParam(name, Kind.MEMORY)


def gpu_grid_spec(name: str, blocks: Dim, threads: Dim) -> ExecSpec:
    return ExecSpec(name, GpuGridLevel(blocks, threads))


def gpu_block_spec(name: str, threads: Dim) -> ExecSpec:
    return ExecSpec(name, GpuBlockLevel(threads))


def gpu_thread_spec(name: str = "t") -> ExecSpec:
    return ExecSpec(name, GpuThreadLevel())


def cpu_spec(name: str = "t") -> ExecSpec:
    return ExecSpec(name, CpuThreadLevel())


def fun(
    name: str,
    params: Sequence[T.FunParam],
    exec_spec: ExecSpec,
    fn_body: T.Block,
    generics: Sequence[GenericParam] = (),
    ret: DataType = UNIT,
    where: Sequence[WhereClause] = (),
) -> T.FunDef:
    return T.FunDef(
        name=name,
        generics=tuple(generics),
        params=tuple(params),
        exec_spec=exec_spec,
        ret=ret,
        body=fn_body,
        where=tuple(where),
    )


def program(*fun_defs: T.FunDef) -> T.Program:
    return T.Program(tuple(fun_defs))
