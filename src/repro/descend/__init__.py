"""The Descend language: AST, frontend, type system, code generation, interpreter.

The most convenient entry points are in :mod:`repro.descend.compiler`:

>>> from repro.descend.compiler import compile_source
>>> program = compile_source(source_text)      # parse + typecheck
>>> cuda = program.to_cuda()                   # CUDA C++ source strings
>>> result = program.run(device, args)         # execute on the GPU simulator
"""

from repro.descend.nat import Nat, NatConst, NatVar, as_nat
from repro.descend.source import SourceFile, Span

__all__ = [
    "Nat",
    "NatConst",
    "NatVar",
    "as_nat",
    "SourceFile",
    "Span",
]
