"""The Descend language: AST, frontend, type system, code generation, interpreter.

The supported public surface is :mod:`repro.descend.api` — versioned
request/response types, the :class:`~repro.descend.api.LocalBackend`
in-process backend, the :class:`~repro.descend.api.DescendClient` daemon
client, and the canonical compile functions:

>>> from repro.descend.api import compile_source
>>> program = compile_source(source_text)      # parse + typecheck
>>> cuda = program.to_cuda()                   # CUDA C++ source strings
>>> result = program.run(device, args)         # execute on the GPU simulator

(The old ``repro.descend.compiler`` compile functions are deprecated shims
over the facade.)
"""

from repro.descend.nat import Nat, NatConst, NatVar, as_nat
from repro.descend.source import SourceFile, Span

__all__ = [
    "Nat",
    "NatConst",
    "NatVar",
    "as_nat",
    "SourceFile",
    "Span",
    # The supported API surface, loaded lazily to keep bare `import
    # repro.descend` light and cycle-free:
    "api",
    "DescendClient",
    "LocalBackend",
    "Request",
    "Response",
]

_API_NAMES = ("DescendClient", "LocalBackend", "Request", "Response")


def __getattr__(name):
    # PEP 562: `repro.descend.api` pulls in the driver, store and client
    # stack; defer that import until a consumer actually asks for it.
    if name == "api" or name in _API_NAMES:
        import repro.descend.api as api

        if name == "api":
            return api
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
