"""Compiler diagnostics with rustc-style rendering.

The paper shows Descend error messages with caret-underlined spans and
secondary labels (Section 2).  :class:`Diagnostic` captures the structured
form (error code, message, labels, notes) and :func:`render_diagnostic`
produces the textual form.

Error codes used throughout the type checker:

======  =====================================================================
code    meaning
======  =====================================================================
E0001   conflicting memory access (data race prevented)
E0002   barrier not allowed here (sync under a split execution resource)
E0003   mismatched types (memory space of a reference)
E0004   cannot dereference a pointer in the wrong execution context
E0005   mismatched launch configuration / array size
E0006   narrowing violated
E0007   use of moved value
E0008   borrow conflict
E0009   unknown name (variable, function, view, exec resource)
E0010   illegal scheduling (dimension missing or already scheduled)
E0011   type mismatch (general)
E0012   kind / generic-argument mismatch
E0013   shared-memory allocation outside a block
E0014   mutation through a shared reference or non-unique place
E0015   synchronisation missing (conflicting accesses across loop iterations)
======  =====================================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.descend.source import NO_SPAN, SourceFile, Span


@dataclass(frozen=True)
class Label:
    """A span plus the message attached to it."""

    span: Span
    message: str = ""
    primary: bool = True


@dataclass
class Diagnostic:
    """A structured compiler diagnostic."""

    severity: str
    code: str
    message: str
    labels: List[Label] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @classmethod
    def error(
        cls,
        code: str,
        message: str,
        span: Span = NO_SPAN,
        label: str = "",
        notes: Optional[Sequence[str]] = None,
    ) -> "Diagnostic":
        labels = []
        if span is not None:
            labels.append(Label(span=span, message=label, primary=True))
        return cls("error", code, message, labels, list(notes or []))

    @classmethod
    def warning(cls, code: str, message: str, span: Span = NO_SPAN, label: str = "") -> "Diagnostic":
        return cls("warning", code, message, [Label(span=span, message=label, primary=True)], [])

    def with_label(self, span: Span, message: str, primary: bool = False) -> "Diagnostic":
        """Attach a secondary label and return self (builder style)."""
        self.labels.append(Label(span=span, message=message, primary=primary))
        return self

    def with_note(self, note: str) -> "Diagnostic":
        self.notes.append(note)
        return self

    @property
    def primary_span(self) -> Span:
        for label in self.labels:
            if label.primary:
                return label.span
        if self.labels:
            return self.labels[0].span
        return NO_SPAN

    def render(self, source: Optional[SourceFile] = None) -> str:
        return render_diagnostic(self, source)

    def __str__(self) -> str:
        return f"{self.severity}[{self.code}]: {self.message}"


def _render_label(source: SourceFile, label: Label, lines: List[str]) -> None:
    """Append the snippet + caret lines for one label."""
    line_no, col = source.line_col(label.span.start)
    end_line, end_col = source.line_col(max(label.span.start, label.span.end - 1))
    gutter = f"{line_no:>4} | "
    text = source.line_text(line_no)
    lines.append(f"  --> {label.span.file_name}:{line_no}:{col}")
    lines.append("     |")
    lines.append(gutter + text)
    if end_line == line_no:
        width = max(1, end_col - col + 1)
    else:
        width = max(1, len(text) - (col - 1))
    marker = "^" if label.primary else "-"
    underline = " " * (col - 1) + marker * width
    suffix = f" {label.message}" if label.message else ""
    lines.append("     | " + underline + suffix)


def render_diagnostic(diagnostic: Diagnostic, source: Optional[SourceFile] = None) -> str:
    """Render a diagnostic as human readable text.

    When ``source`` is available and the labels carry real spans, the output
    mimics the compiler error listings from the paper with caret underlines.
    Otherwise only the headline, label messages, and notes are printed.
    """
    lines = [f"{diagnostic.severity}[{diagnostic.code}]: {diagnostic.message}"]
    for label in diagnostic.labels:
        span = label.span
        if source is not None and not span.is_synthetic() and span.file_name == source.name:
            _render_label(source, label, lines)
        elif label.message:
            prefix = "  = primary: " if label.primary else "  = note: "
            lines.append(prefix + label.message)
    lines.extend(f"  = note: {note}" for note in diagnostic.notes)
    return "\n".join(lines)


class DiagnosticBag:
    """Collects diagnostics during a compilation phase.

    The type checker reports the first error eagerly (raising), but several
    tools (the CLI, tests) want to accumulate warnings as well — this small
    container keeps both.
    """

    def __init__(self) -> None:
        self._diagnostics: List[Diagnostic] = []

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self._diagnostics.append(diagnostic)
        return diagnostic

    @property
    def diagnostics(self) -> Tuple[Diagnostic, ...]:
        return tuple(self._diagnostics)

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == "error")

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self._diagnostics if d.severity == "warning")

    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self._diagnostics)

    def render_all(self, source: Optional[SourceFile] = None) -> str:
        return "\n\n".join(d.render(source) for d in self._diagnostics)

    def __len__(self) -> int:
        return len(self._diagnostics)

    def __iter__(self):
        return iter(self._diagnostics)
