"""The staged compiler driver: explicit, cached, timed compilation passes.

Compilation used to be a loose pile of one-shot functions — every consumer
(CLI, benchsuite, interpreter, code generator) re-ran ``parse_program`` and
``check_program`` from scratch, and every vectorized launch rebuilt its
device plan.  This module turns "compile" into an architectural layer:

* :class:`CompilerDriver` runs the pipeline as explicit passes

  .. code-block:: text

      source text ──parse──▶ AST ──typeck──▶ CheckedProgram
                                                 │
                             ┌───────────────────┼─────────────────────┐
                         lower.plan          lower.cuda           lower.print
                       (DevicePlan per    (CUDA C++ module)    (surface syntax)
                        GPU function)

  and reports each pass's wall-clock and diagnostics uniformly
  (:class:`PassTiming`).

* :class:`CompileSession` caches every pass artifact by *content hash*:
  source units are keyed by ``sha256(text)``, builder-API programs by the
  (frozen, hashable) AST itself.  Repeated compiles of the same program —
  benchsuite sweeps, ``--scale`` runs, test suites, repeated ``kernel()``
  launches — hit the cache instead of re-checking.  Failed compiles are
  cached too, so cached diagnostics are byte-identical to cold ones.

* Attaching a persistent :class:`~repro.descend.store.cas.ArtifactStore`
  (``session.attach_store(store)``) adds a second cache tier *under* the
  in-memory one: lookups go memory → store → compute, and cold results are
  written back, so the cache survives across processes (CLI invocations,
  CI jobs, benchsuite shards).  Every artifact — device plans included,
  since they are data-driven IR (:mod:`repro.descend.plan`), not closures —
  round-trips byte-identically through pickles; warm processes deserialize
  plans instead of re-lowering them.

Every process has an *active* session (:func:`active_session`); consumers
that want isolation (tests, cold-cache benchmarks) create their own
``CompileSession`` and pass it to a driver, or scope one temporarily with
:func:`session_scope`.

The convenience façades ``compile_source`` / ``compile_program`` /
``compile_file`` in :mod:`repro.descend.compiler` delegate here.
"""

from __future__ import annotations

import copy
import hashlib
import pickle
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.descend.ast import terms as T
from repro.descend.ast.printer import print_program
from repro.descend.frontend import parse_program
from repro.descend.source import SourceFile
from repro.descend.typeck import check_program
from repro.descend.typeck.checker import CheckedProgram
from repro.errors import DescendError

#: Canonical pass names, in pipeline order (lowerings are unordered siblings).
PASS_PARSE = "parse"
PASS_TYPECK = "typeck"
PASS_LOWER_PLAN = "lower.plan"
PASS_LOWER_PLAN_OPT = "lower.plan.opt"
PASS_LOWER_PLAN_CODEGEN = "lower.plan.codegen"
PASS_LOWER_CUDA = "lower.cuda"
PASS_LOWER_PRINT = "lower.print"

PASS_ORDER = (
    PASS_PARSE,
    PASS_TYPECK,
    PASS_LOWER_PLAN,
    PASS_LOWER_PLAN_OPT,
    PASS_LOWER_PLAN_CODEGEN,
    PASS_LOWER_CUDA,
    PASS_LOWER_PRINT,
)


@dataclass(frozen=True)
class PassTiming:
    """Wall-clock record of one pass over one compilation unit.

    ``source`` records which cache tier satisfied the pass: ``"compute"``
    (cold), ``"memory"`` (the in-process session cache) or ``"store"`` (the
    persistent artifact store).  An empty string means "derive it from
    ``cached``" so that hand-built timings stay valid.
    """

    unit: str
    name: str
    wall_s: float
    cached: bool
    detail: str = ""
    source: str = ""

    @property
    def tier(self) -> str:
        """The effective cache tier this pass was served from."""
        if self.source:
            return self.source
        return "memory" if self.cached else "compute"

    def as_dict(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "pass": self.name,
            "wall_s": self.wall_s,
            "cached": self.cached,
            "detail": self.detail,
            "source": self.tier,
        }


#: Sentinel distinguishing "evicted" from a stored ``None`` in :meth:`_touch`.
_MISSING = object()


def _detach_failure(exc: DescendError) -> DescendError:
    """An independent copy of a compile failure.

    Cached failures are stored and re-raised as copies so that no two
    consumers share one mutable exception: mutating a received diagnostic
    (``with_note`` etc.) must not leak into future cached diagnostics, and
    re-raising must not accumulate traceback frames on a shared instance.
    """
    clone = copy.copy(exc)
    clone.diagnostic = copy.deepcopy(getattr(exc, "diagnostic", None))
    clone.__traceback__ = None
    return clone


class CompileSession:
    """A content-addressed cache of compilation passes.

    One session is shared by every consumer that wants to reuse compiles:
    the CLI shares a session across its sub-commands, the benchsuite across
    a sweep, the interpreter across launches.  Keys are content hashes, so
    an *edited* program (different text, different AST) misses the cache and
    recompiles, while a byte-identical one hits.

    Sessions are **thread-safe**: every cache map, the hit/miss and
    per-pass counters, and the persistent-store write-back path are guarded
    by one reentrant lock, so concurrent consumers (the compile-service
    daemon's worker thread next to event-loop stats reads, tests hammering
    one session from a pool) cannot corrupt shared state.  Compute passes
    of a colliding key may still run twice — last write wins, both results
    are identical by construction — but counters never tear and the
    artifact store sees serialized writes from this process.
    """

    #: Caps for the content-addressed stores and the timing log.  Sessions
    #: are long-lived (the CLI and the façades share process-wide ones), so
    #: every store evicts least-recently-used past its cap instead of
    #: growing without bound; an evicted program simply recompiles (or
    #: reloads from the persistent store) on the next ask.
    MAX_UNITS = 1024
    MAX_TIMINGS = 8192

    def __init__(self, label: str = "session", store: Optional[object] = None) -> None:
        self.label = label
        #: One reentrant lock for all shared mutable state (cache maps,
        #: counters, timings) and the single-writer store write-back.
        self._lock = threading.RLock()
        #: Optional persistent tier (an
        #: :class:`~repro.descend.store.cas.ArtifactStore`): misses in the
        #: in-memory maps fall through to it, cold results write back.
        self.store = store
        self._programs: Dict[object, "CompiledProgram"] = {}
        self._failures: Dict[object, DescendError] = {}
        self._plans: Dict[Tuple[object, str], Tuple[Optional[object], Optional[str]]] = {}
        #: Fallback plan cache for programs without a content key (unhashable
        #: ASTs): keyed by id(fun_def), the FunDef retained to pin the id.
        self._plans_by_id: Dict[int, Tuple[object, Tuple[Optional[object], Optional[str]]]] = {}
        #: JIT plan sources (the ``lower.plan.codegen`` pass), same two-map
        #: shape as the plans above.
        self._plan_sources: Dict[
            Tuple[object, str], Tuple[Optional[object], Optional[str]]
        ] = {}
        self._plan_sources_by_id: Dict[
            int, Tuple[object, Tuple[Optional[object], Optional[str]]]
        ] = {}
        self._cuda: Dict[Tuple[object, Optional[Tuple[Tuple[str, int], ...]]], object] = {}
        self._printed: Dict[object, str] = {}
        self._digests: Dict[object, object] = {}
        self.timings: List[PassTiming] = []
        #: Monotonic per-(pass, tier) counters: unlike :attr:`timings`,
        #: which is trimmed past :data:`MAX_TIMINGS`, these never lose
        #: history — sweep pass summaries difference them.
        self.pass_counts: Dict[str, Dict[str, int]] = {}
        self.hits = 0
        self.misses = 0
        self.plan_compiles = 0
        self.plan_source_compiles = 0

    def _store(self, cache: Dict, key: object, value: object) -> None:
        """Insert with LRU eviction (dicts preserve insertion order, and
        every cache hit reinserts its key at the end via :meth:`_touch`)."""
        with self._lock:
            if key not in cache and len(cache) >= self.MAX_UNITS:
                cache.pop(next(iter(cache)))
            cache[key] = value

    def _touch(self, cache: Dict, key: object) -> None:
        """Move a hit key to the most-recently-used end of its cache.

        Tolerates the key having been evicted by a concurrent thread
        between the caller's membership check and this reinsertion.
        """
        with self._lock:
            value = cache.pop(key, _MISSING)
            if value is not _MISSING:
                cache[key] = value

    # -- persistent tier -------------------------------------------------------
    def attach_store(self, store: object) -> "CompileSession":
        """Attach a persistent artifact store as the second cache tier."""
        self.store = store
        return self

    def key_digest(self, key: object) -> Optional[str]:
        """Stable (cross-process) hex digest of a cache key.

        Source keys already carry a content hash; builder-program keys are
        digested through a deterministic pickle of the frozen AST.  Returns
        ``None`` for keys that cannot be digested (those artifacts stay
        in-memory-only).
        """
        with self._lock:
            memo = self._digests.get(key)
        if memo is not None:
            return memo if isinstance(memo, str) else None
        if isinstance(key, tuple) and len(key) == 3 and key[0] == "source":
            _, name, content_hash = key
            digest: Optional[str] = hashlib.sha256(
                f"source\0{name}\0{content_hash}".encode("utf-8")
            ).hexdigest()
        elif isinstance(key, tuple) and len(key) == 2 and key[0] == "program":
            try:
                blob = pickle.dumps(key[1], protocol=4)
            except Exception:
                blob = None
            digest = (
                hashlib.sha256(b"program\0" + blob).hexdigest() if blob is not None else None
            )
        else:
            digest = None
        self._store(self._digests, key, digest if digest is not None else False)
        return digest

    def artifact_digest(self, kind: str, key: object, extra: str = "") -> Optional[str]:
        """The store object name of one ``(kind, unit key, extra)`` artifact."""
        base = self.key_digest(key)
        if base is None:
            return None
        return hashlib.sha256(f"{kind}\0{extra}\0{base}".encode("utf-8")).hexdigest()

    def store_load(self, kind: str, key: object, extra: str = "") -> Optional[object]:
        """Load one artifact from the persistent tier (``None`` on miss)."""
        if self.store is None:
            return None
        digest = self.artifact_digest(kind, key, extra)
        if digest is None:
            return None
        # The store handles cross-process races itself (flock); the session
        # lock serializes this process's threads over the store's own
        # in-memory bookkeeping (pending LRU stamps, counters).
        with self._lock:
            return self.store.load(digest)

    def store_put(
        self, kind: str, key: object, value: object, extra: str = "", label: Optional[str] = None
    ) -> bool:
        """Write one artifact back to the persistent tier (best-effort).

        ``label`` refines the *reported* artifact kind (``cache stats``
        breakdowns) without changing the digest namespace — e.g. the
        ``unit`` envelope splits into ``program`` vs ``failure`` blobs.
        """
        if self.store is None:
            return False
        digest = self.artifact_digest(kind, key, extra)
        if digest is None:
            return False
        # Single writer per process: concurrent threads take turns, so the
        # store's index read-modify-write and its touch batching only ever
        # see one in-process mutator (the flock covers other processes).
        with self._lock:
            return self.store.store(digest, value, kind=label or kind)

    # -- keys ------------------------------------------------------------------
    @staticmethod
    def source_key(text: str, name: str = "<descend>") -> object:
        """Content hash of a source unit (the file name participates because
        it appears in rendered diagnostics)."""
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return ("source", name, digest)

    @staticmethod
    def program_key(program: T.Program) -> Optional[object]:
        """Content key of a builder-API program: the frozen AST itself.

        Structurally equal programs (e.g. two calls of the same builder with
        the same parameters) compare and hash equal, which makes the AST its
        own content address.  Returns ``None`` for unhashable ASTs, which
        are simply compiled uncached.
        """
        try:
            hash(program)
        except TypeError:
            return None
        return ("program", program)

    # -- bookkeeping -----------------------------------------------------------
    def record(self, timing: PassTiming) -> PassTiming:
        with self._lock:
            if len(self.timings) >= self.MAX_TIMINGS:
                del self.timings[: self.MAX_TIMINGS // 2]
            self.timings.append(timing)
            tiers = self.pass_counts.setdefault(timing.name, {})
            tiers[timing.tier] = tiers.get(timing.tier, 0) + 1
            if timing.cached:
                self.hits += 1
            else:
                self.misses += 1
        return timing

    def pass_counts_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Copy of the monotonic ``{pass: {tier: count}}`` counters.

        Difference against :meth:`pass_counts_since`; unlike slicing
        :attr:`timings` (trimmed past :data:`MAX_TIMINGS`, which would
        silently under-count), the counters never lose history.
        """
        with self._lock:
            return {name: dict(tiers) for name, tiers in self.pass_counts.items()}

    def pass_counts_since(
        self, snapshot: Dict[str, Dict[str, int]]
    ) -> Dict[str, Dict[str, int]]:
        """Passes recorded since ``snapshot``, as ``{pass: {tier: count}}``.

        The benchsuite's compile observability: a warm-store sweep must
        show ``lower.plan`` served from the ``store`` tier with zero
        ``compute`` entries — the cross-process plan-reuse guarantee.
        """
        current = self.pass_counts_snapshot()
        delta: Dict[str, Dict[str, int]] = {}
        for name, tiers in current.items():
            before = snapshot.get(name, {})
            changed = {
                tier: count - before.get(tier, 0)
                for tier, count in tiers.items()
                if count - before.get(tier, 0) > 0
            }
            if changed:
                delta[name] = changed
        return delta

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "label": self.label,
            "programs": len(self._programs),
            "failures": len(self._failures),
            "plans": len(self._plans),
            "plan_compiles": self.plan_compiles,
            "plan_sources": len(self._plan_sources),
            "plan_source_compiles": self.plan_source_compiles,
            "cuda_modules": len(self._cuda),
            "hits": self.hits,
            "misses": self.misses,
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def clear(self) -> None:
        with self._lock:
            self._clear_locked()

    def _clear_locked(self) -> None:
        self._programs.clear()
        self._failures.clear()
        self._plans.clear()
        self._plans_by_id.clear()
        self._plan_sources.clear()
        self._plan_sources_by_id.clear()
        self._cuda.clear()
        self._printed.clear()
        self._digests.clear()
        self.timings.clear()
        self.pass_counts.clear()
        self.hits = 0
        self.misses = 0
        self.plan_compiles = 0
        self.plan_source_compiles = 0

    def timings_table(self) -> str:
        """Human-readable pass breakdown (the CLI's ``--timings`` output)."""
        if not self.timings:
            return "no passes recorded"
        header = f"{'unit':<28} {'pass':<12} {'wall':>10}  cached"
        lines = [header, "-" * len(header)]
        lines.extend(
            f"{timing.unit:<28} {timing.name:<12} {timing.wall_s * 1e3:>8.2f}ms"
            f"  {'store' if timing.tier == 'store' else ('yes' if timing.cached else 'no')}"
            for timing in self.timings
        )
        totals: Dict[str, float] = {}
        for timing in self.timings:
            totals[timing.name] = totals.get(timing.name, 0.0) + timing.wall_s
        summary = ", ".join(
            f"{name} {totals[name] * 1e3:.2f}ms" for name in PASS_ORDER if name in totals
        )
        counters = f"cache hits {self.hits}, misses {self.misses}"
        if self.store is not None:
            counters += (
                f"; store hits {self.store.hits}, misses {self.store.misses},"
                f" writes {self.store.writes}"
            )
        lines.append("-" * len(header))
        lines.append(f"total per pass: {summary}  ({counters})")
        return "\n".join(lines)

    # -- cached lowerings --------------------------------------------------------
    def device_plan(
        self,
        program: T.Program,
        fun_name: str,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        """The (cached) device plan of one GPU function (thread-safe)."""
        with self._lock:
            return self._device_plan_locked(program, fun_name, key, unit)

    def _device_plan_locked(
        self,
        program: T.Program,
        fun_name: str,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        """The (cached) device plan of one GPU function.

        Returns ``(plan, fallback_reason)``: exactly one of the two is not
        ``None``.  Failures (:class:`~repro.descend.plan.PlanUnsupported`)
        are cached as well, so repeated launches of an un-lowerable kernel do
        not retry the lowering every time.

        Plans are data-driven IR (:class:`~repro.descend.plan.ir.DevicePlan`)
        and persist as first-class ``plan`` artifacts: a warm store serves
        the finished plan directly — no re-lowering, no ``lower.plan``
        compute pass — and fallback reasons persist alongside.
        """
        from repro.descend.plan import (
            DevicePlan,
            PlanUnsupported,
            lower_device_plan,
            optimize_plan,
        )

        start = time.perf_counter()
        if key is None:
            key = self.program_key(program)
        entry_key = (key, fun_name)
        if key is not None and entry_key in self._plans:
            self._touch(self._plans, entry_key)
            self.record(
                PassTiming(
                    unit, PASS_LOWER_PLAN, time.perf_counter() - start, True, fun_name, "memory"
                )
            )
            return self._plans[entry_key]
        # The linear fun-def scan only happens past the hot cache-hit path.
        fun_def = program.fun(fun_name)
        if key is None:
            cached = self._plans_by_id.get(id(fun_def))
            if cached is not None and cached[0] is fun_def:
                self._touch(self._plans_by_id, id(fun_def))
                self.record(
                    PassTiming(
                        unit, PASS_LOWER_PLAN, time.perf_counter() - start, True, fun_name, "memory"
                    )
                )
                return cached[1]
        persisted = self.store_load("plan", key, extra=fun_name) if key is not None else None
        if isinstance(persisted, tuple) and len(persisted) == 2:
            status, payload = persisted
            entry: Optional[Tuple[Optional[object], Optional[str]]] = None
            if status == "fallback" and isinstance(payload, str):
                entry = (None, payload)
            elif status == "ok" and isinstance(payload, DevicePlan):
                entry = (payload, None)
            # Any other shape is a corrupt/stale artifact: degrade to a cold
            # lowering instead of crashing the consumer later.
            if entry is not None:
                self.record(
                    PassTiming(
                        unit, PASS_LOWER_PLAN, time.perf_counter() - start, True, fun_name, "store"
                    )
                )
                self._store(self._plans, entry_key, entry)
                return entry
        lower_start = time.perf_counter()
        self.plan_compiles += 1
        try:
            plan = lower_device_plan(fun_def)
        except PlanUnsupported as exc:
            entry = (None, str(exc))
            self.record(
                PassTiming(
                    unit, PASS_LOWER_PLAN, time.perf_counter() - lower_start, False, fun_name
                )
            )
        else:
            self.record(
                PassTiming(
                    unit, PASS_LOWER_PLAN, time.perf_counter() - lower_start, False, fun_name
                )
            )
            opt_start = time.perf_counter()
            plan, opt_detail = optimize_plan(plan)
            self.record(
                PassTiming(
                    unit,
                    PASS_LOWER_PLAN_OPT,
                    time.perf_counter() - opt_start,
                    False,
                    f"{fun_name} {opt_detail}",
                )
            )
            entry = (plan, None)
        if key is not None:
            self._store(self._plans, entry_key, entry)
            record = ("ok", entry[0]) if entry[1] is None else ("fallback", entry[1])
            self.store_put("plan", key, record, extra=fun_name)
        else:
            self._store(self._plans_by_id, id(fun_def), (fun_def, entry))
        return entry

    def plan_source(
        self,
        program: T.Program,
        fun_name: str,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        """The (cached) JIT plan source of one GPU function (thread-safe)."""
        with self._lock:
            return self._plan_source_locked(program, fun_name, key, unit)

    def _plan_source_locked(
        self,
        program: T.Program,
        fun_name: str,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        """The (cached) JIT plan source of one GPU function.

        Returns ``(plan_source, fallback_reason)``: exactly one of the two
        is not ``None``.  The ``lower.plan.codegen`` pass compiles the
        optimized plan IR (resolved through :meth:`_device_plan_locked`, so
        a cached plan is reused) into a :class:`~repro.descend.plan.codegen.
        PlanSource`; both successes and :class:`CodegenUnsupported` fallback
        reasons persist as first-class ``plan-src`` artifacts, so a warm
        store serves jit launches with zero codegen compute passes.
        """
        from repro.descend.plan import CodegenUnsupported, PlanSource, generate_plan_source

        start = time.perf_counter()
        if key is None:
            key = self.program_key(program)
        entry_key = (key, fun_name)
        if key is not None and entry_key in self._plan_sources:
            self._touch(self._plan_sources, entry_key)
            self.record(
                PassTiming(
                    unit,
                    PASS_LOWER_PLAN_CODEGEN,
                    time.perf_counter() - start,
                    True,
                    fun_name,
                    "memory",
                )
            )
            return self._plan_sources[entry_key]
        fun_def = program.fun(fun_name)
        if key is None:
            cached = self._plan_sources_by_id.get(id(fun_def))
            if cached is not None and cached[0] is fun_def:
                self._touch(self._plan_sources_by_id, id(fun_def))
                self.record(
                    PassTiming(
                        unit,
                        PASS_LOWER_PLAN_CODEGEN,
                        time.perf_counter() - start,
                        True,
                        fun_name,
                        "memory",
                    )
                )
                return cached[1]
        persisted = self.store_load("plan-src", key, extra=fun_name) if key is not None else None
        if isinstance(persisted, tuple) and len(persisted) == 2:
            status, payload = persisted
            entry: Optional[Tuple[Optional[object], Optional[str]]] = None
            if status == "fallback" and isinstance(payload, str):
                entry = (None, payload)
            elif status == "ok" and isinstance(payload, PlanSource):
                entry = (payload, None)
            # Corrupt/stale artifacts degrade to a cold codegen, not a crash.
            if entry is not None:
                self.record(
                    PassTiming(
                        unit,
                        PASS_LOWER_PLAN_CODEGEN,
                        time.perf_counter() - start,
                        True,
                        fun_name,
                        "store",
                    )
                )
                self._store(self._plan_sources, entry_key, entry)
                return entry
        # Codegen input: the optimized plan, through its own cache tiers.
        plan, plan_reason = self._device_plan_locked(program, fun_name, key, unit)
        codegen_start = time.perf_counter()
        self.plan_source_compiles += 1
        if plan is None:
            entry = (None, plan_reason)
        else:
            try:
                entry = (generate_plan_source(plan), None)
            except CodegenUnsupported as exc:
                entry = (None, str(exc))
        self.record(
            PassTiming(
                unit,
                PASS_LOWER_PLAN_CODEGEN,
                time.perf_counter() - codegen_start,
                False,
                fun_name,
            )
        )
        if key is not None:
            self._store(self._plan_sources, entry_key, entry)
            record = ("ok", entry[0]) if entry[1] is None else ("fallback", entry[1])
            self.store_put("plan-src", key, record, extra=fun_name)
        else:
            self._store(self._plan_sources_by_id, id(fun_def), (fun_def, entry))
        return entry

    def cuda_module(
        self,
        program: T.Program,
        nat_env: Optional[Dict[str, int]] = None,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        """The (cached) CUDA C++ translation of a program (thread-safe)."""
        with self._lock:
            return self._cuda_module_locked(program, nat_env, key, unit)

    def _cuda_module_locked(
        self,
        program: T.Program,
        nat_env: Optional[Dict[str, int]] = None,
        key: Optional[object] = None,
        unit: str = "<program>",
    ):
        from repro.descend.codegen import generate_cuda

        start = time.perf_counter()
        if key is None:
            key = self.program_key(program)
        env_key = tuple(sorted(nat_env.items())) if nat_env else None
        entry_key = (key, env_key)
        if key is not None and entry_key in self._cuda:
            self._touch(self._cuda, entry_key)
            self.record(
                PassTiming(unit, PASS_LOWER_CUDA, time.perf_counter() - start, True, "", "memory")
            )
            return self._cuda[entry_key]
        if key is not None:
            persisted = self.store_load("cuda", key, extra=repr(env_key))
            # Duck-typed shape check: a wrong-typed (corrupt) artifact must
            # degrade to a cold lowering, not crash the consumer later.
            if persisted is not None and hasattr(persisted, "full_source"):
                self.record(
                    PassTiming(
                        unit, PASS_LOWER_CUDA, time.perf_counter() - start, True, "", "store"
                    )
                )
                self._store(self._cuda, entry_key, persisted)
                return persisted
        module = generate_cuda(program, nat_env)
        self.record(PassTiming(unit, PASS_LOWER_CUDA, time.perf_counter() - start, False))
        if key is not None:
            self._store(self._cuda, entry_key, module)
            self.store_put("cuda", key, module, extra=repr(env_key))
        return module

    def printed_source(
        self, program: T.Program, key: Optional[object] = None, unit: str = "<program>"
    ) -> str:
        """The (cached) pretty-printed surface syntax of a program (thread-safe)."""
        with self._lock:
            return self._printed_source_locked(program, key, unit)

    def _printed_source_locked(
        self, program: T.Program, key: Optional[object] = None, unit: str = "<program>"
    ) -> str:
        start = time.perf_counter()
        if key is None:
            key = self.program_key(program)
        if key is not None and key in self._printed:
            self._touch(self._printed, key)
            self.record(
                PassTiming(unit, PASS_LOWER_PRINT, time.perf_counter() - start, True, "", "memory")
            )
            return self._printed[key]
        if key is not None:
            persisted = self.store_load("print", key)
            if isinstance(persisted, str):
                self.record(
                    PassTiming(
                        unit, PASS_LOWER_PRINT, time.perf_counter() - start, True, "", "store"
                    )
                )
                self._store(self._printed, key, persisted)
                return persisted
        text = print_program(program)
        self.record(PassTiming(unit, PASS_LOWER_PRINT, time.perf_counter() - start, False))
        if key is not None:
            self._store(self._printed, key, text)
            self.store_put("print", key, text)
        return text


@dataclass
class CompiledProgram:
    """A parsed and type-checked Descend program with its back-ends attached.

    Produced by :class:`CompilerDriver` (or the façades in
    :mod:`repro.descend.compiler`).  All lowerings route through the
    session's content-addressed caches, so e.g. two ``kernel()`` handles of
    the same program share one device plan.
    """

    program: T.Program
    checked: CheckedProgram
    source: Optional[SourceFile] = None
    unit: str = "<program>"
    key: Optional[object] = None
    session: Optional[CompileSession] = None

    def cache_key(self) -> Optional[object]:
        if self.key is not None:
            return self.key
        self.key = CompileSession.program_key(self.program)
        return self.key

    def _session(self) -> CompileSession:
        return self.session if self.session is not None else active_session()

    # -- code generation ------------------------------------------------------------
    def to_cuda(self, nat_env: Optional[Dict[str, int]] = None):
        """Translate the program to CUDA C++ source (cached per nat env)."""
        return self._session().cuda_module(self.program, nat_env, self.cache_key(), self.unit)

    def to_source(self) -> str:
        """Pretty-print the program back to Descend surface syntax (cached)."""
        return self._session().printed_source(self.program, self.cache_key(), self.unit)

    # -- execution ---------------------------------------------------------------------
    def kernel(self, name: str):
        """A launchable handle for one GPU function (device plans cached)."""
        from repro.descend.interp.device import DescendKernel

        return DescendKernel(self.program, name, session=self._session(), compiled=self)

    def device_plan(self, name: str):
        """The vectorized device plan for one GPU function (or its fallback reason)."""
        return self._session().device_plan(self.program, name, self.cache_key(), self.unit)

    def plan_source(self, name: str):
        """The JIT plan source for one GPU function (or its fallback reason)."""
        return self._session().plan_source(self.program, name, self.cache_key(), self.unit)

    def run_host(
        self,
        fun_name: str,
        args: Optional[Dict[str, object]] = None,
        device=None,
        nat_args: Optional[Dict[str, int]] = None,
    ):
        """Run a CPU (host) function, including the kernels it launches."""
        from repro.descend.interp.host import HostInterpreter

        interpreter = HostInterpreter(self.program, device, compiled=self)
        return interpreter.run(fun_name, args, nat_args)

    # -- introspection ------------------------------------------------------------------
    @property
    def function_names(self):
        return tuple(f.name for f in self.program.fun_defs)

    def gpu_function_names(self):
        return tuple(f.name for f in self.program.gpu_functions())


class CompilerDriver:
    """Runs the staged pipeline against one :class:`CompileSession`."""

    def __init__(self, session: Optional[CompileSession] = None) -> None:
        self._session = session

    @property
    def session(self) -> CompileSession:
        return self._session if self._session is not None else active_session()

    # -- entry points -----------------------------------------------------------
    def compile_source(self, text: str, name: str = "<descend>") -> CompiledProgram:
        """Parse and type check Descend source text (cached by content hash)."""
        session = self.session
        start = time.perf_counter()
        key = session.source_key(text, name)
        cached = self._lookup(session, key, name, PASS_PARSE, start)
        if cached is not None:
            return cached

        source = SourceFile(text, name)
        start = time.perf_counter()
        try:
            program = parse_program(text, name)
        except DescendError as exc:
            session.record(PassTiming(name, PASS_PARSE, time.perf_counter() - start, False))
            detached = _detach_failure(exc)
            session._store(session._failures, key, detached)
            session.store_put("unit", key, ("fail", detached), label="failure")
            raise
        session.record(PassTiming(name, PASS_PARSE, time.perf_counter() - start, False))
        return self._typecheck(session, program, source, key, name)

    def compile_program(self, program: T.Program) -> CompiledProgram:
        """Type check a program built with the builder API (cached by AST)."""
        session = self.session
        start = time.perf_counter()
        key = session.program_key(program)
        unit = self._unit_label(program)
        if key is not None:
            cached = self._lookup(session, key, unit, PASS_TYPECK, start)
            if cached is not None:
                return cached
        return self._typecheck(session, program, None, key, unit)

    def compile_file(self, path: str) -> CompiledProgram:
        """Parse and type check a ``.descend`` file."""
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        return self.compile_source(text, name=path)

    # -- passes ------------------------------------------------------------------
    def _lookup(
        self,
        session: CompileSession,
        key: object,
        unit: str,
        pass_name: str,
        start: float,
    ) -> Optional[CompiledProgram]:
        # Atomic check-touch-read over the session maps: a concurrent
        # eviction between membership test and read must not KeyError.
        with session._lock:
            return self._lookup_locked(session, key, unit, pass_name, start)

    def _lookup_locked(
        self,
        session: CompileSession,
        key: object,
        unit: str,
        pass_name: str,
        start: float,
    ) -> Optional[CompiledProgram]:
        if key in session._failures:
            session._touch(session._failures, key)
            session.record(
                PassTiming(unit, pass_name, time.perf_counter() - start, True, "failure", "memory")
            )
            raise _detach_failure(session._failures[key])
        compiled = session._programs.get(key)
        if compiled is not None:
            session._touch(session._programs, key)
            session.record(
                PassTiming(unit, pass_name, time.perf_counter() - start, True, "", "memory")
            )
            return compiled
        # In-memory miss: fall through to the persistent artifact store.  A
        # unit envelope is ("ok", CompiledProgram) or ("fail", DescendError);
        # anything else (corrupt, wrong shape) is ignored — cold compile.
        envelope = session.store_load("unit", key)
        if isinstance(envelope, tuple) and len(envelope) == 2:
            status, payload = envelope
            if status == "fail" and isinstance(payload, DescendError):
                session._store(session._failures, key, payload)
                session.record(
                    PassTiming(
                        unit, pass_name, time.perf_counter() - start, True, "failure", "store"
                    )
                )
                raise _detach_failure(payload)
            if status == "ok" and isinstance(payload, CompiledProgram):
                payload.session = session
                payload.key = key
                session._store(session._programs, key, payload)
                session.record(
                    PassTiming(unit, pass_name, time.perf_counter() - start, True, "", "store")
                )
                return payload
        return None

    def _typecheck(
        self,
        session: CompileSession,
        program: T.Program,
        source: Optional[SourceFile],
        key: Optional[object],
        unit: str,
    ) -> CompiledProgram:
        start = time.perf_counter()
        try:
            checked = check_program(program, source)
        except DescendError as exc:
            session.record(PassTiming(unit, PASS_TYPECK, time.perf_counter() - start, False))
            if key is not None:
                detached = _detach_failure(exc)
                session._store(session._failures, key, detached)
                session.store_put("unit", key, ("fail", detached), label="failure")
            raise
        session.record(PassTiming(unit, PASS_TYPECK, time.perf_counter() - start, False))
        compiled = CompiledProgram(
            program=program,
            checked=checked,
            source=source,
            unit=unit,
            key=key,
            session=session,
        )
        if key is not None:
            session._store(session._programs, key, compiled)
            # Persist a session-free copy: the loading process re-binds the
            # session (and key) when it pulls the program back out.
            session.store_put(
                "unit", key, ("ok", replace(compiled, key=None, session=None)), label="program"
            )
        return compiled

    @staticmethod
    def _unit_label(program: T.Program) -> str:
        names = [f.name for f in program.fun_defs]
        return names[0] if names else "<empty>"


# ---------------------------------------------------------------------------
# The process-wide active session
# ---------------------------------------------------------------------------

_ACTIVE_SESSION = CompileSession(label="default")


def active_session() -> CompileSession:
    """The session shared by consumers that do not bring their own."""
    return _ACTIVE_SESSION


def set_active_session(session: CompileSession) -> CompileSession:
    """Replace the process-wide session; returns the previous one."""
    global _ACTIVE_SESSION
    previous = _ACTIVE_SESSION
    _ACTIVE_SESSION = session
    return previous


@contextmanager
def session_scope(session: Optional[CompileSession] = None):
    """Temporarily install ``session`` (or a fresh one) as the active session."""
    scoped = session if session is not None else CompileSession(label="scoped")
    previous = set_active_session(scoped)
    try:
        yield scoped
    finally:
        set_active_session(previous)
