"""``repro.descend.api`` — the one public surface of the Descend compiler.

Every consumer — the ``descendc`` CLI, the compile-service daemon
(:mod:`repro.descend.serve`), the benchsuite, tests, future remote sweep
workers — speaks this module instead of reaching into scattered entry
points.  It has three layers, innermost first:

* **Functions.**  :func:`compile_source` / :func:`compile_program` /
  :func:`compile_file` are the canonical programmatic entry points (the
  old ``repro.descend.compiler`` module-level functions are deprecated
  shims over these).  They return rich in-process objects
  (:class:`~repro.descend.driver.CompiledProgram`).

* **Requests.**  :class:`Request` / :class:`Response` are the *versioned*
  (``v = 1``) operation schema: ``check`` / ``compile`` / ``print`` /
  ``plan`` / ``cache.stats`` / ``ping`` / ``health`` / ``shutdown``, each
  carrying
  source-or-path plus options in, and status, JSON-safe artifacts,
  rendered diagnostics and pass timings/tiers out.  The schema is what
  travels over the daemon's newline-delimited JSON protocol, and
  :func:`encode_frame` / :func:`decode_frame` are its wire codec.

* **Backends.**  :class:`LocalBackend` executes requests in-process
  against one (thread-safe, store-attachable)
  :class:`~repro.descend.driver.CompileSession`;
  :class:`DescendClient` executes them against a running
  ``descendc serve`` daemon over its local socket.  Both expose the same
  ``handle(request) -> response`` shape, so a consumer written against
  the request schema works unchanged in-process and remote — and the
  daemon *is* a ``LocalBackend`` behind a socket, which is why its
  diagnostics and artifacts are byte-identical to in-process compiles.
"""

from __future__ import annotations

import json
import os
import random
import socket
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.descend.driver import (
    CompiledProgram,
    CompilerDriver,
    CompileSession,
)
from repro.descend.source import SourceFile
from repro.errors import DescendError, DescendSyntaxError, DescendTypeError

__all__ = [
    "API_VERSION",
    "OPS",
    "ProtocolError",
    "Request",
    "Response",
    "RetryPolicy",
    "LocalBackend",
    "DescendClient",
    "encode_frame",
    "decode_frame",
    "render_failure",
    "compile_source",
    "compile_program",
    "compile_file",
]

#: Version of the request/response schema.  Bump on incompatible changes;
#: a daemon rejects frames whose ``"v"`` it does not speak with a
#: structured ``unsupported-version`` error instead of guessing.
API_VERSION = 1

#: The operations of schema v1.
OP_CHECK = "check"
OP_COMPILE = "compile"
OP_PRINT = "print"
OP_PLAN = "plan"
OP_CACHE_STATS = "cache.stats"
OP_PING = "ping"
OP_HEALTH = "health"
OP_SHUTDOWN = "shutdown"

OPS = (
    OP_CHECK, OP_COMPILE, OP_PRINT, OP_PLAN, OP_CACHE_STATS, OP_PING, OP_HEALTH,
    OP_SHUTDOWN,
)

#: Operations that compile something and therefore need ``source`` or ``path``.
COMPILE_OPS = (OP_CHECK, OP_COMPILE, OP_PRINT, OP_PLAN)

#: Operations a client may safely re-send after a dropped connection or a
#: transient failure: everything except ``shutdown`` is a pure read (or a
#: content-addressed compile, which is referentially transparent).  A
#: retried ``shutdown`` could kill a *different* daemon that reclaimed the
#: socket between attempts, so it never retries.
IDEMPOTENT_OPS = tuple(op for op in OPS if op != OP_SHUTDOWN)

#: Hard cap on one wire frame (request or response), matched by the server's
#: stream limit.  Large enough for any Figure 8 artifact, small enough that a
#: hostile client cannot balloon the daemon's memory with one line.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Machine-readable error codes of schema v1 (the ``error.code`` field).
ERR_MALFORMED = "malformed-frame"
ERR_OVERSIZED = "oversized-frame"
ERR_UNSUPPORTED_VERSION = "unsupported-version"
ERR_UNKNOWN_OP = "unknown-op"
ERR_BAD_REQUEST = "bad-request"
ERR_SYNTAX = "syntax-error"
ERR_TYPE = "type-error"
ERR_COMPILE = "compile-error"
ERR_IO = "io-error"
ERR_OVERLOADED = "overloaded"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_INTERNAL = "internal-error"
ERR_RETRIES_EXHAUSTED = "retries-exhausted"
ERR_DEADLINE = "deadline-exceeded"

#: Structured error codes a client may retry: the condition clears on its
#: own (a momentarily full compile queue), unlike e.g. a type error, which
#: is deterministic, or ``shutting-down``, which only resolves by the
#: daemon exiting.  Connection-level failures (``OSError``, torn frames)
#: are retried separately by :class:`DescendClient`.
RETRYABLE_CODES = (ERR_OVERLOADED,)


class ProtocolError(Exception):
    """A request that cannot be executed as asked: carries a wire error code.

    Raised by the wire codec (malformed / wrong-version frames) and by
    request validation (missing source, unknown op, unknown GPU function);
    backends and the daemon translate it into a structured error
    :class:`Response` instead of letting it escape.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


@dataclass(frozen=True)
class Request:
    """One operation of API schema v1.

    Exactly one of ``source`` (inline program text) or ``path`` (a file the
    executing backend reads) must be set for the compile-ish ops
    (:data:`COMPILE_OPS`); ``ping`` / ``health`` / ``cache.stats`` /
    ``shutdown`` take neither.  ``options`` is the per-op option bag — schema v1 defines
    ``{"no_opt": bool, "jit": bool}`` for ``plan`` (``jit`` renders the
    generated Python of the ``lower.plan.codegen`` pass instead of the IR
    disassembly); unknown keys are ignored for forward compatibility.
    """

    op: str
    source: Optional[str] = None
    path: Optional[str] = None
    name: Optional[str] = None
    fun: Optional[str] = None
    options: Mapping[str, object] = field(default_factory=dict)
    id: Optional[str] = None

    def option(self, key: str, default: object = None) -> object:
        return self.options.get(key, default)

    def to_wire(self) -> Dict[str, object]:
        frame: Dict[str, object] = {"v": API_VERSION, "op": self.op}
        if self.id is not None:
            frame["id"] = self.id
        for key in ("source", "path", "name", "fun"):
            value = getattr(self, key)
            if value is not None:
                frame[key] = value
        if self.options:
            frame["options"] = dict(self.options)
        return frame

    @classmethod
    def from_wire(cls, frame: object) -> "Request":
        """Validate one decoded request frame (raises :class:`ProtocolError`)."""
        if not isinstance(frame, dict):
            raise ProtocolError(ERR_MALFORMED, "request frame must be a JSON object")
        version = frame.get("v")
        if version != API_VERSION:
            raise ProtocolError(
                ERR_UNSUPPORTED_VERSION,
                f"unsupported API version {version!r}; this server speaks v{API_VERSION}",
            )
        op = frame.get("op")
        if not isinstance(op, str) or op not in OPS:
            raise ProtocolError(ERR_UNKNOWN_OP, f"unknown op {op!r}; expected one of {OPS}")
        fields: Dict[str, object] = {"op": op}
        for key in ("source", "path", "name", "fun", "id"):
            value = frame.get(key)
            if value is not None and not isinstance(value, str):
                raise ProtocolError(ERR_BAD_REQUEST, f"request field {key!r} must be a string")
            fields[key] = value
        options = frame.get("options", {})
        if not isinstance(options, dict):
            raise ProtocolError(ERR_BAD_REQUEST, "request field 'options' must be an object")
        fields["options"] = options
        request = cls(**fields)
        if request.op in COMPILE_OPS:
            if (request.source is None) == (request.path is None):
                raise ProtocolError(
                    ERR_BAD_REQUEST,
                    f"op {op!r} requires exactly one of 'source' or 'path'",
                )
        return request


@dataclass(frozen=True)
class Response:
    """The result of one :class:`Request`.

    ``status`` is ``"ok"`` or ``"error"``.  ``artifacts`` holds the
    JSON-safe op outputs (``cuda`` text, ``ir`` dumps, function lists,
    stats); ``diagnostics`` the rendered compiler diagnostics (byte-identical
    to what an in-process compile renders); ``passes`` the
    :class:`~repro.descend.driver.PassTiming` rows this request recorded and
    ``pass_tiers`` their ``{pass: {tier: count}}`` aggregation — a warm
    daemon answering from the store shows no ``compute`` tier at all.
    """

    op: str
    status: str
    id: Optional[str] = None
    artifacts: Dict[str, object] = field(default_factory=dict)
    diagnostics: Tuple[str, ...] = ()
    passes: Tuple[Dict[str, object], ...] = ()
    pass_tiers: Dict[str, Dict[str, int]] = field(default_factory=dict)
    error: Optional[Dict[str, str]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def error_code(self) -> str:
        return (self.error or {}).get("code", "")

    @property
    def error_message(self) -> str:
        return (self.error or {}).get("message", "")

    def to_wire(self) -> Dict[str, object]:
        return {
            "v": API_VERSION,
            "id": self.id,
            "op": self.op,
            "status": self.status,
            "artifacts": self.artifacts,
            "diagnostics": list(self.diagnostics),
            "passes": list(self.passes),
            "pass_tiers": self.pass_tiers,
            "error": self.error,
        }

    @classmethod
    def from_wire(cls, frame: object) -> "Response":
        if not isinstance(frame, dict):
            raise ProtocolError(ERR_MALFORMED, "response frame must be a JSON object")
        version = frame.get("v")
        if version != API_VERSION:
            raise ProtocolError(
                ERR_UNSUPPORTED_VERSION, f"unsupported response version {version!r}"
            )
        status = frame.get("status")
        if status not in ("ok", "error"):
            raise ProtocolError(ERR_MALFORMED, f"invalid response status {status!r}")
        error = frame.get("error")
        if error is not None and not isinstance(error, dict):
            raise ProtocolError(ERR_MALFORMED, "response field 'error' must be an object")
        return cls(
            op=str(frame.get("op", "")),
            status=status,
            id=frame.get("id") if isinstance(frame.get("id"), str) else None,
            artifacts=frame.get("artifacts") if isinstance(frame.get("artifacts"), dict) else {},
            diagnostics=tuple(
                d for d in frame.get("diagnostics", ()) if isinstance(d, str)
            ),
            passes=tuple(p for p in frame.get("passes", ()) if isinstance(p, dict)),
            pass_tiers=frame.get("pass_tiers")
            if isinstance(frame.get("pass_tiers"), dict)
            else {},
            error=error,
        )

    @classmethod
    def failure(
        cls,
        op: str,
        code: str,
        message: str,
        id: Optional[str] = None,
        diagnostics: Tuple[str, ...] = (),
        passes: Tuple[Dict[str, object], ...] = (),
        pass_tiers: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> "Response":
        return cls(
            op=op,
            status="error",
            id=id,
            diagnostics=diagnostics,
            passes=passes,
            pass_tiers=pass_tiers or {},
            error={"code": code, "message": message},
        )


# ---------------------------------------------------------------------------
# Wire codec: newline-delimited JSON frames
# ---------------------------------------------------------------------------


def encode_frame(frame: Mapping[str, object]) -> bytes:
    """One wire frame: compact, key-sorted JSON plus the newline delimiter."""
    return json.dumps(frame, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes, max_bytes: int = MAX_FRAME_BYTES) -> Dict[str, object]:
    """Decode one received line (raises :class:`ProtocolError`, never crashes)."""
    if len(line) > max_bytes:
        raise ProtocolError(ERR_OVERSIZED, f"frame exceeds {max_bytes} bytes")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(ERR_MALFORMED, f"frame is not valid JSON: {exc}") from None
    if not isinstance(frame, dict):
        raise ProtocolError(ERR_MALFORMED, "frame must be a JSON object")
    return frame


def render_failure(exc: DescendError, source: Optional[SourceFile]) -> Optional[str]:
    """The rendered (rustc-style) form of a compile failure, if it has one.

    This is the *single* rendering path shared by the CLI, the in-process
    backend and the daemon, which is what makes their diagnostics
    byte-identical.
    """
    diagnostic = getattr(exc, "diagnostic", None)
    if diagnostic is None:
        return None
    return diagnostic.render(source)


def _error_code(exc: DescendError) -> str:
    if isinstance(exc, DescendSyntaxError):
        return ERR_SYNTAX
    if isinstance(exc, DescendTypeError):
        return ERR_TYPE
    return ERR_COMPILE


# ---------------------------------------------------------------------------
# In-process backend
# ---------------------------------------------------------------------------


class LocalBackend:
    """Executes API requests in-process against one :class:`CompileSession`.

    The backend serializes request execution with an internal lock: the
    session's caches stay consistent, the persistent store sees one writer
    per process, and each response's pass timings are attributable to
    exactly one request.  The compile-service daemon wraps one instance in
    a single-worker executor; the CLI holds one across its sub-commands.
    """

    def __init__(
        self, session: Optional[CompileSession] = None, label: str = "api"
    ) -> None:
        self.session = session if session is not None else CompileSession(label=label)
        self.driver = CompilerDriver(self.session)
        self._lock = threading.RLock()
        self.requests = 0
        self.started_unix = time.time()

    # -- store wiring -----------------------------------------------------------
    def attach_store(self, store: Optional[object]) -> "LocalBackend":
        """Attach (or with ``None`` detach) the persistent artifact store."""
        self.session.store = store
        return self

    def attach_store_path(self, path: Optional[str]) -> "LocalBackend":
        if not path:
            return self.attach_store(None)
        from repro.descend.store import ArtifactStore

        return self.attach_store(ArtifactStore(path))

    # -- the request entry point ------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Execute one request; never raises for request-shaped failures."""
        with self._lock:
            self.requests += 1
            session = self.session
            snapshot = session.pass_counts_snapshot()
            mark = len(session.timings)
            unit, text = None, None
            try:
                unit, text = self._load_input(request)
                artifacts = self._dispatch(request, unit, text)
            except ProtocolError as exc:
                return Response.failure(
                    request.op,
                    exc.code,
                    str(exc),
                    id=request.id,
                    passes=self._passes_since(mark),
                    pass_tiers=session.pass_counts_since(snapshot),
                )
            except DescendError as exc:
                source = SourceFile(text, unit) if text is not None else None
                rendered = render_failure(exc, source)
                return Response.failure(
                    request.op,
                    _error_code(exc),
                    str(exc),
                    id=request.id,
                    diagnostics=(rendered,) if rendered is not None else (),
                    passes=self._passes_since(mark),
                    pass_tiers=session.pass_counts_since(snapshot),
                )
            except OSError as exc:
                return Response.failure(request.op, ERR_IO, str(exc), id=request.id)
            return Response(
                op=request.op,
                status="ok",
                id=request.id,
                artifacts=artifacts,
                passes=self._passes_since(mark),
                pass_tiers=session.pass_counts_since(snapshot),
            )

    def health(self) -> Dict[str, object]:
        """The backend's liveness/degradation summary (the ``health`` op).

        Always answers — a store whose index lock is wedged degrades to a
        ``store_error`` field instead of failing the health probe, because
        the probe's job is precisely to surface that state.
        """
        info: Dict[str, object] = {
            "healthy": True,
            "pid": os.getpid(),
            "requests": self.requests,
            "uptime_s": time.time() - self.started_unix,
            "session": self.session.label,
        }
        store = getattr(self.session, "store", None)
        if store is not None:
            try:
                info["store"] = store.stats()
            except OSError as exc:
                info["healthy"] = False
                info["store_error"] = str(exc)
        from repro import faults

        fault_report = faults.report()
        if fault_report is not None:
            info["faults"] = fault_report
        return info

    def _passes_since(self, mark: int) -> Tuple[Dict[str, object], ...]:
        # The timings list is trimmed in bulk past MAX_TIMINGS; if that
        # happened mid-request the detailed rows are best-effort (the
        # monotonic pass_tiers counters never lose history).
        timings = self.session.timings
        return tuple(t.as_dict() for t in timings[min(mark, len(timings)):])

    def _load_input(self, request: Request) -> Tuple[Optional[str], Optional[str]]:
        if request.op not in COMPILE_OPS:
            return None, None
        if request.path is not None:
            with open(request.path, "r", encoding="utf-8") as handle:
                return request.path, handle.read()
        if request.source is None:
            raise ProtocolError(
                ERR_BAD_REQUEST, f"op {request.op!r} requires 'source' or 'path'"
            )
        return request.name or "<descend>", request.source

    def _dispatch(
        self, request: Request, unit: Optional[str], text: Optional[str]
    ) -> Dict[str, object]:
        op = request.op
        if op == OP_PING:
            return {
                "pong": True,
                "pid": os.getpid(),
                "requests": self.requests,
                "uptime_s": time.time() - self.started_unix,
                "session": self.session.label,
            }
        if op == OP_CACHE_STATS:
            return {"session": self.session.stats()}
        if op == OP_HEALTH:
            return self.health()
        if op == OP_SHUTDOWN:
            # The daemon intercepts this op to drain and stop; in-process it
            # is a plain acknowledgement.
            return {"stopping": True}
        compiled = self.driver.compile_source(text, name=unit)
        if op == OP_CHECK:
            return {"functions": list(compiled.function_names)}
        if op == OP_COMPILE:
            return {"cuda": compiled.to_cuda().full_source()}
        if op == OP_PRINT:
            return {"source": compiled.to_source()}
        if op == OP_PLAN:
            no_opt = bool(request.option("no_opt", False))
            if bool(request.option("jit", False)):
                return {"ir": plan_source_text(compiled, unit, request.fun, no_opt)}
            return {"ir": plan_text(compiled, unit, request.fun, no_opt)}
        raise ProtocolError(ERR_UNKNOWN_OP, f"unknown op {op!r}")  # pragma: no cover


def plan_text(
    compiled: CompiledProgram, unit: str, fun: Optional[str], no_opt: bool
) -> str:
    """The ``plan`` op's disassembly text (also the CLI's ``plan`` output).

    ``no_opt`` re-lowers raw (bypassing cache and the ``lower.plan.opt``
    pipeline); functions the plan compiler cannot lower render their
    fallback reason as a comment.
    """
    from repro.descend.plan import PlanUnsupported, disassemble, lower_device_plan

    gpu_names = compiled.gpu_function_names()
    if fun:
        if fun not in gpu_names:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"`{fun}` is not a GPU function of {unit} "
                f"(GPU functions: {', '.join(gpu_names) or 'none'})",
            )
        gpu_names = (fun,)
    chunks = []
    for name in gpu_names:
        if no_opt:
            try:
                plan, reason = lower_device_plan(compiled.program.fun(name)), None
            except PlanUnsupported as exc:
                plan, reason = None, str(exc)
        else:
            plan, reason = compiled.device_plan(name)
        if plan is None:
            chunks.append(f"// {name}: falls back to the reference engine: {reason}\n")
        else:
            chunks.append(disassemble(plan))
    return "\n".join(chunks)


def plan_source_text(
    compiled: CompiledProgram, unit: str, fun: Optional[str], no_opt: bool
) -> str:
    """The ``plan`` op's generated-Python text (the CLI's ``plan --jit``).

    Mirrors :func:`plan_text` with the ``lower.plan.codegen`` output in
    place of the IR disassembly: functions codegen (or the plan lowering)
    cannot compile render their fallback reason as a comment.  ``no_opt``
    runs codegen over the raw (unoptimized) plan, bypassing the caches.
    """
    from repro.descend.plan import (
        CodegenUnsupported,
        PlanUnsupported,
        generate_plan_source,
        lower_device_plan,
    )

    gpu_names = compiled.gpu_function_names()
    if fun:
        if fun not in gpu_names:
            raise ProtocolError(
                ERR_BAD_REQUEST,
                f"`{fun}` is not a GPU function of {unit} "
                f"(GPU functions: {', '.join(gpu_names) or 'none'})",
            )
        gpu_names = (fun,)
    chunks = []
    for name in gpu_names:
        if no_opt:
            try:
                src, reason = generate_plan_source(lower_device_plan(compiled.program.fun(name))), None
            except (PlanUnsupported, CodegenUnsupported) as exc:
                src, reason = None, str(exc)
        else:
            src, reason = compiled.plan_source(name)
        if src is None:
            chunks.append(f"# {name}: no jit source ({reason})\n")
        else:
            chunks.append(src.source)
    return "\n".join(chunks)


# ---------------------------------------------------------------------------
# Socket client
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How a :class:`DescendClient` behaves under partial failure.

    ``max_attempts`` bounds the total tries per op (1 = no retries);
    delays grow exponentially from ``base_delay_s`` capped at
    ``max_delay_s``, each scaled by *deterministic* jitter drawn from a
    PRNG seeded with ``seed`` — two clients with the same policy replay
    the same backoff schedule, which is what makes chaos runs exactly
    reproducible.  ``deadline_s`` is the per-op wall-clock budget across
    all attempts; when the next backoff would overrun it the client stops
    early with a structured ``deadline-exceeded`` error.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: Optional[float] = None
    seed: int = 0

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """The backoff before attempt ``attempt + 1`` (first attempt is 1)."""
        bounded = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
        return bounded * (0.5 + 0.5 * rng.random())


#: Retry nothing: the policy of probes that implement their own loop.
NO_RETRY = RetryPolicy(max_attempts=1)


class DescendClient:
    """A blocking client of a running ``descendc serve`` daemon.

    Speaks the newline-delimited JSON protocol over the daemon's local
    (``AF_UNIX``) socket and exposes the same ``handle(request)`` shape as
    :class:`LocalBackend`, plus one convenience method per op.  One client
    holds one connection; it is not itself thread-safe — give each client
    thread its own instance (connections are cheap, the daemon multiplexes).

    Failure behavior: idempotent ops (:data:`IDEMPOTENT_OPS`) reconnect
    and retry per ``retry`` (a :class:`RetryPolicy`) on connection-level
    failures and on the retryable structured codes
    (:data:`RETRYABLE_CODES`); when attempts run out the client returns a
    structured ``retries-exhausted`` (or ``deadline-exceeded``)
    :class:`Response` naming the last underlying failure, so callers deal
    in exactly one error channel.  Non-idempotent ops (``shutdown``) fail
    fast by raising, exactly like the pre-retry client.
    """

    def __init__(
        self,
        socket_path: str,
        timeout: float = 60.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._next_id = 0
        self._retry_rng = random.Random(f"descend-client:{self.retry.seed}")

    # -- connection lifecycle ---------------------------------------------------
    def connect(self) -> "DescendClient":
        if self._sock is None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.socket_path)
            except OSError:
                sock.close()
                raise
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.05) -> bool:
        """Poll until the daemon answers ``ping`` (startup handshake)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.connect()
                if self._attempt(Request(op=OP_PING, id="ready")).ok:
                    return True
            except (OSError, ProtocolError):
                self.close()
            if time.monotonic() >= deadline:
                return False
            time.sleep(interval)

    def close(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "DescendClient":
        return self.connect()

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- the request entry point ------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Send one request; block for its response, retrying per policy."""
        if request.id is None:
            self._next_id += 1
            request = replace(request, id=f"c{self._next_id}")
        policy = self.retry
        deadline = (
            time.monotonic() + policy.deadline_s
            if policy.deadline_s is not None
            else None
        )
        retryable_op = request.op in IDEMPOTENT_OPS
        attempts = 0
        last_failure = ""
        while True:
            attempts += 1
            try:
                response = self._attempt(request)
            except (OSError, ProtocolError) as exc:
                # The connection is suspect (refused, reset, torn frame):
                # drop it so the next attempt reconnects from scratch.
                self.close()
                if not retryable_op:
                    raise
                last_failure = f"{type(exc).__name__}: {exc}"
            else:
                if response.ok or response.error_code not in RETRYABLE_CODES:
                    return response
                last_failure = f"{response.error_code}: {response.error_message}"
            if attempts >= max(1, policy.max_attempts):
                return Response.failure(
                    request.op,
                    ERR_RETRIES_EXHAUSTED,
                    f"gave up on {request.op!r} after {attempts} attempt(s); "
                    f"last failure: {last_failure}",
                    id=request.id,
                )
            delay = policy.delay_for(attempts, self._retry_rng)
            if deadline is not None and time.monotonic() + delay > deadline:
                return Response.failure(
                    request.op,
                    ERR_DEADLINE,
                    f"op deadline of {policy.deadline_s}s exhausted after "
                    f"{attempts} attempt(s); last failure: {last_failure}",
                    id=request.id,
                )
            time.sleep(delay)

    request = handle  # the traditional client-side name

    def _attempt(self, request: Request) -> Response:
        """One send/receive round trip, no retries (raises on I/O failure)."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(encode_frame(request.to_wire()))
        line = self._rfile.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ProtocolError(ERR_IO, "server closed the connection")
        return Response.from_wire(decode_frame(line))

    # -- convenience ops --------------------------------------------------------
    def ping(self) -> Response:
        return self.handle(Request(op=OP_PING))

    def health(self) -> Response:
        return self.handle(Request(op=OP_HEALTH))

    def check(self, source: Optional[str] = None, path: Optional[str] = None,
              name: Optional[str] = None) -> Response:
        return self.handle(Request(op=OP_CHECK, source=source, path=path, name=name))

    def compile(self, source: Optional[str] = None, path: Optional[str] = None,
                name: Optional[str] = None) -> Response:
        return self.handle(Request(op=OP_COMPILE, source=source, path=path, name=name))

    def print_source(self, source: Optional[str] = None, path: Optional[str] = None,
                     name: Optional[str] = None) -> Response:
        return self.handle(Request(op=OP_PRINT, source=source, path=path, name=name))

    def plan(self, source: Optional[str] = None, path: Optional[str] = None,
             name: Optional[str] = None, fun: Optional[str] = None,
             no_opt: bool = False, jit: bool = False) -> Response:
        options: Dict[str, object] = {}
        if no_opt:
            options["no_opt"] = True
        if jit:
            options["jit"] = True
        return self.handle(
            Request(op=OP_PLAN, source=source, path=path, name=name, fun=fun, options=options)
        )

    def cache_stats(self) -> Response:
        return self.handle(Request(op=OP_CACHE_STATS))

    def shutdown(self) -> Response:
        return self.handle(Request(op=OP_SHUTDOWN))


# ---------------------------------------------------------------------------
# Canonical programmatic entry points
# ---------------------------------------------------------------------------

_DRIVER = CompilerDriver()  # bound to the process's active session at call time


def compile_source(text: str, name: str = "<descend>") -> CompiledProgram:
    """Parse and type check Descend source text (cached by content hash)."""
    return _DRIVER.compile_source(text, name)


def compile_program(program) -> CompiledProgram:
    """Type check a program built with the builder API (cached by AST)."""
    return _DRIVER.compile_program(program)


def compile_file(path: str) -> CompiledProgram:
    """Parse and type check a ``.descend`` file."""
    return _DRIVER.compile_file(path)
