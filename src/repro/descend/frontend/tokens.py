"""Token definitions for the Descend lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.descend.source import Span


class TokenKind(enum.Enum):
    """Kinds of tokens produced by the lexer."""

    IDENT = "identifier"
    INT = "integer"
    FLOAT = "float"
    # punctuation
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    LANGLE = "<"
    RANGLE = ">"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    COLONCOLON = "::"
    DOT = "."
    DOTDOT = ".."
    AT = "@"
    # operators
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    CARET = "^"
    AMP = "&"
    AMPAMP = "&&"
    PIPEPIPE = "||"
    BANG = "!"
    EQ = "="
    EQEQ = "=="
    NEQ = "!="
    LEQ = "<="
    GEQ = ">="
    ARROW = "->"
    FATARROW = "=>"
    EOF = "end of input"

    def __str__(self) -> str:
        return self.value


#: Words with special meaning; they still lex as IDENT and are recognised by
#: the parser, except for the ones that start statements.
KEYWORDS = frozenset(
    {
        "fn",
        "let",
        "for",
        "in",
        "if",
        "else",
        "sched",
        "split",
        "at",
        "sync",
        "uniq",
        "view",
        "where",
        "true",
        "false",
        "alloc",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexed token."""

    kind: TokenKind
    text: str
    span: Span

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.IDENT and self.text == word

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
