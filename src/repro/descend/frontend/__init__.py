"""The Descend surface-syntax frontend: lexer and recursive-descent parser.

The accepted syntax follows the paper's listings; ``parse_program`` turns a
source string into the same AST the builder API produces, so parsed programs
flow through the identical type checking / code generation / interpretation
pipeline.
"""

from repro.descend.frontend.lexer import Lexer, tokenize
from repro.descend.frontend.parser import Parser, parse_program
from repro.descend.frontend.tokens import Token, TokenKind

__all__ = ["Lexer", "tokenize", "Parser", "parse_program", "Token", "TokenKind"]
