"""A recursive-descent parser for the Descend surface syntax.

The accepted grammar covers the language as used in the paper's listings:
function definitions with execution-resource annotations, ``sched`` /
``split`` / ``sync``, views with ``::<...>`` arguments, selects
``p[[exec]]``, references ``&uniq mem T``, nested array types, kernel
launches ``f::<<<X<1>, X<n>>>>(...)``, and ``for`` loops over nat ranges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.descend.ast import terms as T
from repro.descend.ast.dims import Dim, DimName, dim_from_spec, parse_dim_name
from repro.descend.ast.exec_level import (
    CpuThreadLevel,
    ExecSpec,
    GpuBlockLevel,
    GpuGridLevel,
    GpuThreadLevel,
)
from repro.descend.ast.memory import memory_from_name
from repro.descend.ast.places import PDeref, PIdx, PProj, PSelect, PVar, PView, PlaceExpr
from repro.descend.ast.types import (
    ArrayType,
    ArrayViewType,
    AtType,
    BOOL,
    DataType,
    F64,
    GenericParam,
    I32,
    Kind,
    RefType,
    ScalarType,
    TupleType,
    TyVar,
    UNIT,
    is_scalar_name,
    scalar_from_name,
)
from repro.descend.ast.views import ViewRef
from repro.descend.diagnostics import Diagnostic
from repro.descend.frontend.lexer import Lexer
from repro.descend.frontend.tokens import Token, TokenKind
from repro.descend.nat import Nat, NatBinOp, NatConst, NatVar
from repro.descend.source import NO_SPAN, SourceFile, Span
from repro.errors import DescendSyntaxError

_MEMORY_ROOTS = ("cpu", "gpu")
_KINDS = {"nat": Kind.NAT, "mem": Kind.MEMORY, "dty": Kind.DATA_TYPE}


class Parser:
    """Parses a token stream into a Descend program."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.tokens = Lexer(source).tokenize()
        self.pos = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def at(self, kind: TokenKind, offset: int = 0) -> bool:
        return self.peek(offset).kind == kind

    def at_keyword(self, word: str, offset: int = 0) -> bool:
        return self.peek(offset).is_keyword(word)

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != TokenKind.EOF:
            self.pos += 1
        return token

    def expect(self, kind: TokenKind, context: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            hint = f" while parsing {context}" if context else ""
            raise self.error(f"expected `{kind}`, found `{token.text or token.kind}`{hint}", token.span)
        return self.advance()

    def expect_keyword(self, word: str, context: str = "") -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            hint = f" while parsing {context}" if context else ""
            raise self.error(f"expected `{word}`, found `{token.text or token.kind}`{hint}", token.span)
        return self.advance()

    def error(self, message: str, span: Span) -> DescendSyntaxError:
        return DescendSyntaxError(message, Diagnostic.error("E0000", message, span))

    # ------------------------------------------------------------------
    # program structure
    # ------------------------------------------------------------------

    def parse_program(self) -> T.Program:
        fun_defs: List[T.FunDef] = []
        while not self.at(TokenKind.EOF):
            if self.at_keyword("fn"):
                fun_defs.append(self.parse_fun_def())
            else:
                raise self.error(
                    f"expected `fn`, found `{self.peek().text}`", self.peek().span
                )
        return T.Program(tuple(fun_defs))

    def parse_fun_def(self) -> T.FunDef:
        start = self.expect_keyword("fn").span
        name = self.expect(TokenKind.IDENT, "function name").text
        generics = self._parse_generics()
        self.expect(TokenKind.LPAREN, "parameter list")
        params: List[T.FunParam] = []
        while not self.at(TokenKind.RPAREN):
            param_name = self.expect(TokenKind.IDENT, "parameter").text
            self.expect(TokenKind.COLON, "parameter type")
            param_ty = self.parse_type()
            params.append(T.FunParam(param_name, param_ty))
            if not self.at(TokenKind.RPAREN):
                self.expect(TokenKind.COMMA, "parameter list")
        self.expect(TokenKind.RPAREN)
        self.expect(TokenKind.MINUS, "execution annotation")
        self.expect(TokenKind.LBRACKET, "execution annotation")
        exec_name = self.expect(TokenKind.IDENT, "execution resource name").text
        self.expect(TokenKind.COLON, "execution annotation")
        level = self._parse_exec_level()
        self.expect(TokenKind.RBRACKET, "execution annotation")
        self.expect(TokenKind.ARROW, "return type")
        ret = self.parse_type()
        body = self.parse_block()
        return T.FunDef(
            name=name,
            generics=tuple(generics),
            params=tuple(params),
            exec_spec=ExecSpec(exec_name, level),
            ret=ret,
            body=body,
            span=start,
        )

    def _parse_generics(self) -> List[GenericParam]:
        generics: List[GenericParam] = []
        if not self.at(TokenKind.LANGLE):
            return generics
        self.advance()
        while not self.at(TokenKind.RANGLE):
            name = self.expect(TokenKind.IDENT, "generic parameter").text
            self.expect(TokenKind.COLON, "generic parameter kind")
            kind_name = self.expect(TokenKind.IDENT, "generic parameter kind").text
            if kind_name not in _KINDS:
                raise self.error(f"unknown kind `{kind_name}`", self.peek().span)
            generics.append(GenericParam(name, _KINDS[kind_name]))
            if not self.at(TokenKind.RANGLE):
                self.expect(TokenKind.COMMA, "generic parameters")
        self.expect(TokenKind.RANGLE)
        return generics

    def _parse_dotted_name(self) -> str:
        first = self.expect(TokenKind.IDENT).text
        if self.at(TokenKind.DOT) and self.peek(1).kind == TokenKind.IDENT:
            self.advance()
            second = self.expect(TokenKind.IDENT).text
            return f"{first}.{second}"
        return first

    def _parse_exec_level(self):
        name = self._parse_dotted_name().lower()
        if name == "cpu.thread":
            return CpuThreadLevel()
        if name == "gpu.thread":
            return GpuThreadLevel()
        if name == "gpu.grid":
            self.expect(TokenKind.LANGLE, "grid shape")
            blocks = self._parse_dim()
            self.expect(TokenKind.COMMA, "grid shape")
            threads = self._parse_dim()
            self.expect(TokenKind.RANGLE, "grid shape")
            return GpuGridLevel(blocks, threads)
        if name == "gpu.block":
            self.expect(TokenKind.LANGLE, "block shape")
            threads = self._parse_dim()
            self.expect(TokenKind.RANGLE, "block shape")
            return GpuBlockLevel(threads)
        raise self.error(f"unknown execution level `{name}`", self.peek().span)

    def _parse_dim(self) -> Dim:
        spec = self.expect(TokenKind.IDENT, "dimension specification").text
        self.expect(TokenKind.LANGLE, "dimension sizes")
        sizes: List[Nat] = [self.parse_nat()]
        while self.at(TokenKind.COMMA):
            self.advance()
            sizes.append(self.parse_nat())
        self.expect(TokenKind.RANGLE, "dimension sizes")
        return dim_from_spec(spec, sizes)

    # ------------------------------------------------------------------
    # types and nats
    # ------------------------------------------------------------------

    def parse_type(self) -> DataType:
        ty = self._parse_type_prefix()
        if self.at(TokenKind.AT):
            self.advance()
            mem = memory_from_name(self._parse_dotted_name())
            return AtType(ty, mem)
        return ty

    def _parse_type_prefix(self) -> DataType:
        token = self.peek()
        if token.kind == TokenKind.AMP:
            self.advance()
            uniq = False
            if self.at_keyword("uniq"):
                self.advance()
                uniq = True
            mem = memory_from_name(self._parse_dotted_name())
            referent = self.parse_type()
            return RefType(uniq, mem, referent)
        if token.kind == TokenKind.LBRACKET:
            return self._parse_array_type()
        if token.kind == TokenKind.LPAREN:
            self.advance()
            if self.at(TokenKind.RPAREN):
                self.advance()
                return UNIT
            elems = [self.parse_type()]
            while self.at(TokenKind.COMMA):
                self.advance()
                elems.append(self.parse_type())
            self.expect(TokenKind.RPAREN, "tuple type")
            if len(elems) == 1:
                return elems[0]
            return TupleType(tuple(elems))
        if token.kind == TokenKind.IDENT:
            name = self.advance().text
            if is_scalar_name(name):
                return scalar_from_name(name)
            return TyVar(name)
        raise self.error(f"expected a type, found `{token.text}`", token.span)

    def _parse_array_type(self) -> DataType:
        self.expect(TokenKind.LBRACKET)
        inner = self.parse_type()
        if self.at(TokenKind.SEMI):
            self.advance()
            size = self.parse_nat()
            self.expect(TokenKind.RBRACKET, "array type")
            return ArrayType(inner, size)
        if self.at(TokenKind.RBRACKET):
            # `[[T; n]]`: view type written as a doubly bracketed array
            self.advance()
            if isinstance(inner, ArrayType):
                return ArrayViewType(inner.elem, inner.size)
            if isinstance(inner, ArrayViewType):
                return inner
            raise self.error("`[[...]]` must contain an array type", self.peek().span)
        raise self.error("expected `;` or `]` in array type", self.peek().span)

    def parse_nat(self) -> Nat:
        return self._parse_nat_additive()

    def _parse_nat_additive(self) -> Nat:
        left = self._parse_nat_multiplicative()
        while self.at(TokenKind.PLUS) or self.at(TokenKind.MINUS):
            op = self.advance().text
            right = self._parse_nat_multiplicative()
            left = NatBinOp(op, left, right)
        return left

    def _parse_nat_multiplicative(self) -> Nat:
        left = self._parse_nat_power()
        while self.at(TokenKind.STAR) or self.at(TokenKind.SLASH) or self.at(TokenKind.PERCENT):
            op = self.advance().text
            right = self._parse_nat_power()
            left = NatBinOp(op, left, right)
        return left

    def _parse_nat_power(self) -> Nat:
        left = self._parse_nat_atom()
        if self.at(TokenKind.CARET):
            self.advance()
            right = self._parse_nat_power()
            return NatBinOp("^", left, right)
        return left

    def _parse_nat_atom(self) -> Nat:
        token = self.peek()
        if token.kind == TokenKind.INT:
            self.advance()
            return NatConst(int(token.text))
        if token.kind == TokenKind.IDENT:
            self.advance()
            return NatVar(token.text)
        if token.kind == TokenKind.LPAREN:
            self.advance()
            nat = self.parse_nat()
            self.expect(TokenKind.RPAREN, "nat expression")
            return nat
        raise self.error(f"expected a natural number, found `{token.text}`", token.span)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_block(self) -> T.Block:
        start = self.expect(TokenKind.LBRACE, "block").span
        stmts: List[T.Term] = []
        while not self.at(TokenKind.RBRACE):
            stmts.append(self.parse_stmt())
            while self.at(TokenKind.SEMI):
                self.advance()
        self.expect(TokenKind.RBRACE, "block")
        return T.Block(tuple(stmts), span=start)

    def parse_stmt(self) -> T.Term:
        token = self.peek()
        if token.is_keyword("let"):
            return self._parse_let()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("sched"):
            return self._parse_sched()
        if token.is_keyword("split"):
            return self._parse_split()
        if token.is_keyword("sync"):
            span = self.advance().span
            return T.Sync(span=span)
        if token.kind == TokenKind.LBRACE:
            return self.parse_block()
        expr = self.parse_expr()
        if self.at(TokenKind.EQ):
            eq = self.advance()
            if not isinstance(expr, T.PlaceTerm):
                raise self.error("left-hand side of assignment must be a place expression", eq.span)
            value = self.parse_expr()
            return T.Assign(expr.place, value, span=token.span)
        return expr

    def _parse_let(self) -> T.Term:
        start = self.expect_keyword("let").span
        name = self.expect(TokenKind.IDENT, "let binding").text
        ty: Optional[DataType] = None
        if self.at(TokenKind.COLON):
            self.advance()
            ty = self.parse_type()
        self.expect(TokenKind.EQ, "let binding")
        init = self.parse_expr()
        return T.LetTerm(name, ty, init, span=start)

    def _parse_for(self) -> T.Term:
        start = self.expect_keyword("for").span
        variable = self.expect(TokenKind.IDENT, "loop variable").text
        self.expect_keyword("in", "for loop")
        if self.at(TokenKind.LBRACKET):
            self.advance()
            lo = self.parse_nat()
            self.expect(TokenKind.DOTDOT, "nat range")
            hi = self.parse_nat()
            self.expect(TokenKind.RBRACKET, "nat range")
            body = self.parse_block()
            return T.ForNat(variable, lo, hi, body, span=start)
        collection = self.parse_expr()
        body = self.parse_block()
        return T.ForEach(variable, collection, body, span=start)

    def _parse_if(self) -> T.Term:
        start = self.expect_keyword("if").span
        cond = self.parse_expr()
        then = self.parse_block()
        otherwise = None
        if self.at_keyword("else"):
            self.advance()
            otherwise = self.parse_block()
        return T.IfTerm(cond, then, otherwise, span=start)

    def _parse_sched(self) -> T.Term:
        start = self.expect_keyword("sched").span
        self.expect(TokenKind.LPAREN, "sched dimensions")
        dims: List[DimName] = [parse_dim_name(self.expect(TokenKind.IDENT).text)]
        while self.at(TokenKind.COMMA):
            self.advance()
            dims.append(parse_dim_name(self.expect(TokenKind.IDENT).text))
        self.expect(TokenKind.RPAREN, "sched dimensions")
        binder = self.expect(TokenKind.IDENT, "sched binder").text
        self.expect_keyword("in", "sched")
        exec_name = self.expect(TokenKind.IDENT, "sched execution resource").text
        body = self.parse_block()
        return T.Sched(tuple(dims), binder, exec_name, body, span=start)

    def _parse_split(self) -> T.Term:
        start = self.expect_keyword("split").span
        self.expect(TokenKind.LPAREN, "split dimension")
        dim = parse_dim_name(self.expect(TokenKind.IDENT).text)
        self.expect(TokenKind.RPAREN, "split dimension")
        exec_name = self.expect(TokenKind.IDENT, "split execution resource").text
        self.expect_keyword("at", "split position")
        pos = self.parse_nat()
        self.expect(TokenKind.LBRACE, "split branches")
        first_binder = self.expect(TokenKind.IDENT, "split branch").text
        self.expect(TokenKind.FATARROW, "split branch")
        first_body = self.parse_block()
        self.expect(TokenKind.COMMA, "split branches")
        second_binder = self.expect(TokenKind.IDENT, "split branch").text
        self.expect(TokenKind.FATARROW, "split branch")
        second_body = self.parse_block()
        if self.at(TokenKind.COMMA):
            self.advance()
        self.expect(TokenKind.RBRACE, "split branches")
        return T.SplitExec(
            dim, exec_name, pos, first_binder, first_body, second_binder, second_body, span=start
        )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def parse_expr(self) -> T.Term:
        return self._parse_or()

    def _parse_or(self) -> T.Term:
        left = self._parse_and()
        while self.at(TokenKind.PIPEPIPE):
            span = self.advance().span
            left = T.BinaryOp("||", left, self._parse_and(), span=span)
        return left

    def _parse_and(self) -> T.Term:
        left = self._parse_comparison()
        while self.at(TokenKind.AMPAMP):
            span = self.advance().span
            left = T.BinaryOp("&&", left, self._parse_comparison(), span=span)
        return left

    _COMPARISONS = {
        TokenKind.LANGLE: "<",
        TokenKind.RANGLE: ">",
        TokenKind.LEQ: "<=",
        TokenKind.GEQ: ">=",
        TokenKind.EQEQ: "==",
        TokenKind.NEQ: "!=",
    }

    def _parse_comparison(self) -> T.Term:
        left = self._parse_additive()
        if self.peek().kind in self._COMPARISONS:
            op = self._COMPARISONS[self.peek().kind]
            span = self.advance().span
            return T.BinaryOp(op, left, self._parse_additive(), span=span)
        return left

    def _parse_additive(self) -> T.Term:
        left = self._parse_multiplicative()
        while self.at(TokenKind.PLUS) or self.at(TokenKind.MINUS):
            op = self.advance()
            left = T.BinaryOp(op.text, left, self._parse_multiplicative(), span=op.span)
        return left

    def _parse_multiplicative(self) -> T.Term:
        left = self._parse_unary()
        while self.at(TokenKind.STAR) or self.at(TokenKind.SLASH) or self.at(TokenKind.PERCENT):
            op = self.advance()
            left = T.BinaryOp(op.text, left, self._parse_unary(), span=op.span)
        return left

    def _parse_unary(self) -> T.Term:
        token = self.peek()
        if token.kind == TokenKind.MINUS:
            self.advance()
            return T.UnaryOp("-", self._parse_unary(), span=token.span)
        if token.kind == TokenKind.BANG:
            self.advance()
            return T.UnaryOp("!", self._parse_unary(), span=token.span)
        if token.kind == TokenKind.AMP:
            self.advance()
            uniq = False
            if self.at_keyword("uniq"):
                self.advance()
                uniq = True
            place = self._expect_place(self._parse_unary())
            return T.Borrow(uniq, place, span=token.span)
        if token.kind == TokenKind.STAR:
            self.advance()
            inner = self._parse_unary()
            place = self._expect_place(inner)
            deref = PDeref(place, span=token.span)
            return T.PlaceTerm(self._parse_place_suffixes(deref), span=token.span)
        return self._parse_postfix()

    def _expect_place(self, term: T.Term) -> PlaceExpr:
        if isinstance(term, T.PlaceTerm):
            return term.place
        raise self.error("expected a place expression", self.peek().span)

    def _parse_postfix(self) -> T.Term:
        token = self.peek()
        if token.kind == TokenKind.INT:
            self.advance()
            return T.Lit(int(token.text), I32, span=token.span)
        if token.kind == TokenKind.FLOAT:
            self.advance()
            return T.Lit(float(token.text), F64, span=token.span)
        if token.is_keyword("true"):
            self.advance()
            return T.Lit(True, BOOL, span=token.span)
        if token.is_keyword("false"):
            self.advance()
            return T.Lit(False, BOOL, span=token.span)
        if token.kind == TokenKind.LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(TokenKind.RPAREN, "parenthesised expression")
            return expr
        if token.is_keyword("alloc"):
            return self._parse_alloc()
        if token.kind == TokenKind.IDENT:
            return self._parse_name_expression()
        raise self.error(f"unexpected token `{token.text}` in expression", token.span)

    def _parse_alloc(self) -> T.Term:
        start = self.expect_keyword("alloc").span
        self.expect(TokenKind.COLONCOLON, "alloc")
        self.expect(TokenKind.LANGLE, "alloc")
        mem = memory_from_name(self._parse_dotted_name())
        self.expect(TokenKind.COMMA, "alloc")
        ty = self.parse_type()
        self.expect(TokenKind.RANGLE, "alloc")
        self.expect(TokenKind.LPAREN, "alloc")
        self.expect(TokenKind.RPAREN, "alloc")
        return T.Alloc(mem, ty, span=start)

    def _parse_name_expression(self) -> T.Term:
        start = self.peek().span
        name = self.expect(TokenKind.IDENT).text

        # multi-segment function names such as `CpuHeap::new`
        while self.at(TokenKind.COLONCOLON) and self.peek(1).kind == TokenKind.IDENT:
            self.advance()
            name += "::" + self.expect(TokenKind.IDENT).text

        nat_args: Tuple[Nat, ...] = ()
        mem_args: tuple = ()
        ty_args: tuple = ()
        if self.at(TokenKind.COLONCOLON):
            # `::<...>` generic arguments or `::<<<...>>>` launch
            if (
                self.peek(1).kind == TokenKind.LANGLE
                and self.peek(2).kind == TokenKind.LANGLE
                and self.peek(3).kind == TokenKind.LANGLE
            ):
                self.advance()
                return self._parse_launch(name, nat_args, start)
            self.advance()
            nat_args, mem_args, ty_args = self._parse_generic_args()
            if self.at(TokenKind.LANGLE) and self.peek(1).kind == TokenKind.LANGLE and self.peek(2).kind == TokenKind.LANGLE:
                return self._parse_launch(name, nat_args, start)

        if self.at(TokenKind.LPAREN):
            self.advance()
            args: List[T.Term] = []
            while not self.at(TokenKind.RPAREN):
                args.append(self.parse_expr())
                if not self.at(TokenKind.RPAREN):
                    self.expect(TokenKind.COMMA, "call arguments")
            self.expect(TokenKind.RPAREN, "call arguments")
            return T.FnApp(name, nat_args, mem_args, ty_args, tuple(args), span=start)

        if nat_args or mem_args or ty_args:
            raise self.error("generic arguments must be followed by a call", start)

        place = self._parse_place_suffixes(PVar(name, span=start))
        return T.PlaceTerm(place, span=start)

    def _parse_generic_args(self) -> Tuple[Tuple[Nat, ...], tuple, tuple]:
        self.expect(TokenKind.LANGLE, "generic arguments")
        nat_args: List[Nat] = []
        mem_args: List = []
        ty_args: List = []
        while not self.at(TokenKind.RANGLE):
            token = self.peek()
            if token.kind == TokenKind.IDENT and token.text in _MEMORY_ROOTS and self.peek(1).kind == TokenKind.DOT:
                mem_args.append(memory_from_name(self._parse_dotted_name()))
            elif token.kind in (TokenKind.LBRACKET, TokenKind.AMP) or (
                token.kind == TokenKind.IDENT and is_scalar_name(token.text)
            ):
                ty_args.append(self.parse_type())
            else:
                nat_args.append(self.parse_nat())
            if not self.at(TokenKind.RANGLE):
                self.expect(TokenKind.COMMA, "generic arguments")
        self.expect(TokenKind.RANGLE, "generic arguments")
        return tuple(nat_args), tuple(mem_args), tuple(ty_args)

    def _parse_launch(self, name: str, nat_args: Tuple[Nat, ...], start: Span) -> T.Term:
        for _ in range(3):
            self.expect(TokenKind.LANGLE, "kernel launch")
        grid_dim = self._parse_dim()
        self.expect(TokenKind.COMMA, "kernel launch")
        block_dim = self._parse_dim()
        for _ in range(3):
            self.expect(TokenKind.RANGLE, "kernel launch")
        self.expect(TokenKind.LPAREN, "kernel launch arguments")
        args: List[T.Term] = []
        while not self.at(TokenKind.RPAREN):
            args.append(self.parse_expr())
            if not self.at(TokenKind.RPAREN):
                self.expect(TokenKind.COMMA, "kernel launch arguments")
        self.expect(TokenKind.RPAREN, "kernel launch arguments")
        return T.KernelLaunch(name, grid_dim, block_dim, nat_args, tuple(args), span=start)

    # -- place suffixes -----------------------------------------------------------
    def _parse_place_suffixes(self, place: PlaceExpr) -> PlaceExpr:
        while True:
            if self.at(TokenKind.DOT):
                place = self._parse_dot_suffix(place)
                continue
            if self.at(TokenKind.LBRACKET):
                if self.peek(1).kind == TokenKind.LBRACKET:
                    self.advance()
                    self.advance()
                    exec_var = self.expect(TokenKind.IDENT, "select").text
                    self.expect(TokenKind.RBRACKET, "select")
                    self.expect(TokenKind.RBRACKET, "select")
                    place = PSelect(place, exec_var)
                    continue
                self.advance()
                index = self.parse_nat()
                self.expect(TokenKind.RBRACKET, "index")
                place = PIdx(place, index)
                continue
            return place

    def _parse_dot_suffix(self, place: PlaceExpr) -> PlaceExpr:
        self.expect(TokenKind.DOT)
        name = self.expect(TokenKind.IDENT, "view or projection").text
        if name == "fst":
            return PProj(place, 0)
        if name == "snd":
            return PProj(place, 1)
        nat_args: List[Nat] = []
        view_args: List[ViewRef] = []
        if self.at(TokenKind.COLONCOLON):
            self.advance()
            self.expect(TokenKind.LANGLE, "view arguments")
            while not self.at(TokenKind.RANGLE):
                nat_args.append(self.parse_nat())
                if not self.at(TokenKind.RANGLE):
                    self.expect(TokenKind.COMMA, "view arguments")
            self.expect(TokenKind.RANGLE, "view arguments")
        if self.at(TokenKind.LPAREN):
            self.advance()
            while not self.at(TokenKind.RPAREN):
                view_args.append(self._parse_view_ref())
                if not self.at(TokenKind.RPAREN):
                    self.expect(TokenKind.COMMA, "view arguments")
            self.expect(TokenKind.RPAREN, "view arguments")
        return PView(place, ViewRef(name, tuple(nat_args), tuple(view_args)))

    def _parse_view_ref(self) -> ViewRef:
        name = self.expect(TokenKind.IDENT, "view").text
        nat_args: List[Nat] = []
        view_args: List[ViewRef] = []
        if self.at(TokenKind.COLONCOLON):
            self.advance()
            self.expect(TokenKind.LANGLE, "view arguments")
            while not self.at(TokenKind.RANGLE):
                nat_args.append(self.parse_nat())
                if not self.at(TokenKind.RANGLE):
                    self.expect(TokenKind.COMMA, "view arguments")
            self.expect(TokenKind.RANGLE, "view arguments")
        if self.at(TokenKind.LPAREN):
            self.advance()
            while not self.at(TokenKind.RPAREN):
                view_args.append(self._parse_view_ref())
                if not self.at(TokenKind.RPAREN):
                    self.expect(TokenKind.COMMA, "view arguments")
            self.expect(TokenKind.RPAREN, "view arguments")
        return ViewRef(name, tuple(nat_args), tuple(view_args))


def parse_program(text: str, name: str = "<descend>") -> T.Program:
    """Parse Descend source text into a program AST."""
    return Parser(SourceFile(text, name)).parse_program()
