"""The Descend lexer."""

from __future__ import annotations

from typing import List

from repro.descend.diagnostics import Diagnostic
from repro.descend.frontend.tokens import Token, TokenKind
from repro.descend.source import SourceFile
from repro.errors import DescendSyntaxError

_TWO_CHAR = {
    "::": TokenKind.COLONCOLON,
    "..": TokenKind.DOTDOT,
    "&&": TokenKind.AMPAMP,
    "||": TokenKind.PIPEPIPE,
    "==": TokenKind.EQEQ,
    "!=": TokenKind.NEQ,
    "<=": TokenKind.LEQ,
    ">=": TokenKind.GEQ,
    "->": TokenKind.ARROW,
    "=>": TokenKind.FATARROW,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "^": TokenKind.CARET,
    "&": TokenKind.AMP,
    "!": TokenKind.BANG,
    "=": TokenKind.EQ,
}


class Lexer:
    """Turns Descend source text into a token stream."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.text = source.text
        self.pos = 0

    def error(self, message: str, start: int) -> DescendSyntaxError:
        span = self.source.span(start, max(start + 1, self.pos))
        return DescendSyntaxError(message, Diagnostic.error("E0000", message, span))

    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                tokens.append(Token(TokenKind.EOF, "", self.source.span(self.pos, self.pos)))
                return tokens
            tokens.append(self._next_token())

    # -- helpers -----------------------------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
                continue
            if char == "/" and self.text[self.pos : self.pos + 2] == "//":
                newline = self.text.find("\n", self.pos)
                self.pos = len(self.text) if newline == -1 else newline + 1
                continue
            if char == "/" and self.text[self.pos : self.pos + 2] == "/*":
                end = self.text.find("*/", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated block comment", self.pos)
                self.pos = end + 2
                continue
            return

    def _next_token(self) -> Token:
        start = self.pos
        char = self.text[self.pos]

        if char.isdigit():
            return self._number(start)
        if char.isalpha() or char == "_":
            return self._identifier(start)

        two = self.text[self.pos : self.pos + 2]
        if two in _TWO_CHAR:
            # `..` must not eat the dot of a float like `0..4` handled in _number
            self.pos += 2
            return Token(_TWO_CHAR[two], two, self.source.span(start, self.pos))
        if char in _ONE_CHAR:
            self.pos += 1
            return Token(_ONE_CHAR[char], char, self.source.span(start, self.pos))
        raise self.error(f"unexpected character {char!r}", start)

    def _number(self, start: int) -> Token:
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        is_float = False
        if (
            self.pos + 1 < len(self.text)
            and self.text[self.pos] == "."
            and self.text[self.pos + 1].isdigit()
        ):
            is_float = True
            self.pos += 1
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
        text = self.text[start : self.pos]
        kind = TokenKind.FLOAT if is_float else TokenKind.INT
        return Token(kind, text, self.source.span(start, self.pos))

    def _identifier(self, start: int) -> Token:
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] == "_"
        ):
            self.pos += 1
        text = self.text[start : self.pos]
        return Token(TokenKind.IDENT, text, self.source.span(start, self.pos))


def tokenize(text: str, name: str = "<descend>") -> List[Token]:
    """Tokenize a source string."""
    return Lexer(SourceFile(text, name)).tokenize()
