"""Grammar-directed random Descend programs (and their ill-typed mutants).

Programs are described by a :class:`KernelSpec` — a frozen, picklable value
made of nested tuples — and realized into a real
:class:`~repro.descend.ast.terms.Program` by :func:`build_program`.  Keeping
the *spec* (not the AST) as the unit of generation buys three things:

* **Determinism.**  :func:`random_spec` draws every choice from one
  ``random.Random`` seeded with a stable string, so a (seed, index) pair
  names exactly one program forever.
* **Shrinkability.**  The shrinker edits specs structurally (drop a phase,
  drop a statement, simplify an expression, halve a dimension) and rebuilds;
  it never has to pattern-match ASTs.
* **Intent.**  Specs are correct by construction: every output array is
  written through exactly one (bijective) view chain, shared-memory
  cross-thread reads only happen behind a barrier, and syncs stay at
  non-divergent block level — the shapes the type checker is supposed to
  accept.  The :data:`MUTATIONS` then perturb exactly one of those
  invariants, producing the shapes it is supposed to reject.

The grammar deliberately stays inside the printable/parsable subset of the
surface syntax (nat-only indices), so every generated program round-trips
through ``print_program`` → ``parse_program`` — the harness checks that too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Tuple

from repro.descend.builder import (
    F64,
    GPU_GLOBAL,
    add,
    alloc_shared,
    array,
    assign,
    block,
    body,
    dim_x,
    eq,
    for_nat,
    fun,
    ge,
    gpu_grid_spec,
    gt,
    if_,
    le,
    let,
    lit_f64,
    lt,
    mul,
    ne,
    param,
    program,
    read,
    sched,
    shared_ref,
    split_exec,
    sub,
    sync,
    uniq_borrow,
    uniq_ref,
    var,
)
from repro.descend.ast import terms as T

#: Bijective per-thread element chains an output array may be written through.
#: ``transpose`` is only valid when ``ept == 1`` (it needs the flat
#: ``num_blocks x block_size`` shape).
WRITE_CHAINS = ("direct", "rev_chunk", "rev_all", "transpose")

#: The spec-level perturbations of mutation mode, each breaking exactly one
#: well-typedness invariant (the comment names the rejection it aims for).
MUTATIONS = (
    "drop_sync",        # remove every barrier               -> E0001 (conflict)
    "rev_race",         # same-phase read via a second chain -> E0001 (conflict)
    "unnarrowed_borrow",  # uniq borrow of a whole output    -> E0006 (narrowing)
    "skip_block_select",  # select thread without block      -> E0006 (narrowing)
    "sync_in_split",    # barrier inside a split branch      -> E0002 (barrier)
    "bad_view_dim",     # group size that does not divide n  -> view size error
)

_BIN_OPS = {"add": add, "sub": sub, "mul": mul}
_CMP_OPS = {"lt": lt, "le": le, "gt": gt, "ge": ge, "eq": eq, "ne": ne}


@dataclass(frozen=True)
class KernelSpec:
    """One random kernel program, as plain data.

    ``phases`` is a tuple of block-level phase tuples:

    * ``("phase", stmts)`` — one ``sched`` over the block's threads,
    * ``("sync",)`` — a block-level barrier,
    * ``("single", a, b)`` — a single-thread pass (``split`` at 1) mapping
      ``tmp[i] = tmp[i] * a + b`` over the shared buffer,
    * ``("bloop", k, stmts)`` — a block-level ``for k`` whose body is a
      barrier followed by one thread phase.

    Thread statements inside a phase:

    * ``("let", name, expr)`` — bind a register,
    * ``("if_reg", cond, name, expr)`` — divergent register update,
    * ``("wout", k, expr)`` — write output ``k`` through its designated chain,
    * ``("wout_if", k, cond, expr)`` — the same behind a divergent ``if``,
    * ``("wtmp", expr)`` — write the thread's shared-memory slot.

    Expressions are nested tuples: ``("lit", v)``, ``("in", i, rchain)``,
    ``("tmp", tchain)``, ``("reg", name)``, ``(op, a, b)`` with
    ``op in {add, sub, mul}``; conditions are ``(cmp, a, b)``.
    """

    num_blocks: int
    block_size: int
    ept: int
    num_inputs: int
    out_chains: Tuple[str, ...]
    use_tmp: bool
    phases: Tuple[tuple, ...]
    mutation: str = ""

    @property
    def n(self) -> int:
        return self.num_blocks * self.block_size * self.ept

    @property
    def chunk(self) -> int:
        return self.block_size * self.ept


# ---------------------------------------------------------------------------
# Places
# ---------------------------------------------------------------------------


def _element_place(root: str, chain: str, spec: KernelSpec):
    """The per-thread element of ``root`` through one bijective chain.

    When ``ept > 1`` the place indexes with the nat variable ``j`` — the
    enclosing phase wraps its statements in ``for j in 0..ept``.
    """
    base = var(root)
    if chain == "transpose":
        return (
            base.view("group", spec.num_blocks)
            .view("transpose")
            .select("block")
            .select("thread")
        )
    if chain == "rev_all":
        base = base.view("rev")
    place = base.view("group", spec.chunk).select("block")
    if chain == "rev_chunk":
        place = place.view("rev")
    if spec.ept == 1:
        return place.select("thread")
    return place.view("group", spec.ept).select("thread").idx("j")


def _read_place(root: str, rchain: tuple, spec: KernelSpec):
    """A (possibly overlapping) read place of a shared input array."""
    kind = rchain[0]
    if kind == "chain":
        return _element_place(root, rchain[1], spec)
    if kind == "bcast":
        # every thread of the block reads the same chunk element
        return var(root).view("group", spec.chunk).select("block").idx(rchain[1] % spec.chunk)
    if kind == "flat":
        # every thread of the grid reads the same array element
        return var(root).idx(rchain[1] % spec.n)
    raise ValueError(f"unknown read chain {rchain!r}")


def _tmp_place(tchain: tuple, spec: KernelSpec):
    """A read place of the block's shared buffer."""
    kind = tchain[0]
    if kind == "t_self":
        return var("tmp").select("thread")
    if kind == "t_rev":
        return var("tmp").view("rev").select("thread")
    if kind == "t_idx":
        return var("tmp").idx(tchain[1] % spec.block_size)
    raise ValueError(f"unknown tmp chain {tchain!r}")


def _out_place(k: int, spec: KernelSpec):
    """The designated write place of output ``k`` (mutations hook in here)."""
    root = f"out{k}"
    if k == 0 and spec.mutation == "skip_block_select":
        return var(root).view("group", spec.block_size).select("thread")
    if k == 0 and spec.mutation == "bad_view_dim":
        return var(root).view("group", spec.chunk + 1).select("block").select("thread")
    return _element_place(root, spec.out_chains[k], spec)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def _expr_term(expr: tuple, spec: KernelSpec):
    kind = expr[0]
    if kind == "lit":
        return lit_f64(expr[1])
    if kind == "in":
        return read(_read_place(f"in{expr[1] % spec.num_inputs}", expr[2], spec))
    if kind == "tmp":
        return read(_tmp_place(expr[1], spec))
    if kind == "reg":
        return read(var(expr[1]))
    return _BIN_OPS[kind](_expr_term(expr[1], spec), _expr_term(expr[2], spec))


def _cond_term(cond: tuple, spec: KernelSpec):
    return _CMP_OPS[cond[0]](_expr_term(cond[1], spec), _expr_term(cond[2], spec))


def _thread_stmt(stmt: tuple, spec: KernelSpec):
    kind = stmt[0]
    if kind == "let":
        return let(stmt[1], _expr_term(stmt[2], spec))
    if kind == "if_reg":
        return if_(
            _cond_term(stmt[1], spec),
            block(assign(var(stmt[2]), _expr_term(stmt[3], spec))),
        )
    if kind == "wout":
        value = _expr_term(stmt[2], spec)
        if stmt[1] == 0 and spec.mutation == "rev_race":
            other = "rev_chunk" if spec.out_chains[0] != "rev_chunk" else "direct"
            value = read(_element_place("out0", other, spec))
        return assign(_out_place(stmt[1], spec), value)
    if kind == "wout_if":
        return if_(
            _cond_term(stmt[1], spec),
            block(assign(_out_place(stmt[2], spec), _expr_term(stmt[3], spec))),
        )
    if kind == "wtmp":
        return assign(var("tmp").select("thread"), _expr_term(stmt[1], spec))
    raise ValueError(f"unknown thread statement {stmt!r}")


def _thread_phase(stmts: tuple, spec: KernelSpec):
    """One ``sched`` over the block's threads (per-element loop when ept > 1)."""
    built = [_thread_stmt(s, spec) for s in stmts]
    if spec.ept > 1:
        return sched("X", "thread", "block", for_nat("j", 0, spec.ept, *built))
    return sched("X", "thread", "block", *built)


def _single_pass(a: float, b: float, spec: KernelSpec):
    """``split`` at 1: one thread maps ``tmp[i] = tmp[i] * a + b`` serially."""
    loop = for_nat(
        "i",
        0,
        spec.block_size,
        assign(
            var("tmp").idx("i"),
            add(mul(read(var("tmp").idx("i")), lit_f64(a)), lit_f64(b)),
        ),
    )
    return split_exec(
        "X",
        "block",
        1,
        ("first", block(sched("X", "t", "first", loop))),
        ("rest", block()),
    )


def build_program(spec: KernelSpec) -> T.Program:
    """Realize a spec into a Descend program (applying its mutation, if any)."""
    drop_sync = spec.mutation == "drop_sync"
    stmts = []
    if spec.use_tmp:
        stmts.append(let("tmp", alloc_shared(array(F64, spec.block_size))))
    if spec.mutation == "unnarrowed_borrow":
        stmts.append(let("bad_borrow", uniq_borrow(var("out0").deref())))
    for phase in spec.phases:
        kind = phase[0]
        if kind == "sync":
            if not drop_sync:
                stmts.append(sync())
        elif kind == "phase":
            stmts.append(_thread_phase(phase[1], spec))
        elif kind == "single":
            stmts.append(_single_pass(phase[1], phase[2], spec))
        elif kind == "bloop":
            inner = [] if drop_sync else [sync()]
            inner.append(_thread_phase(phase[2], spec))
            stmts.append(for_nat("k", 0, phase[1], *inner))
        else:
            raise ValueError(f"unknown phase {phase!r}")
    if spec.mutation == "sync_in_split":
        stmts.append(
            split_exec(
                "X",
                "block",
                max(1, spec.block_size // 2),
                ("first", block(sync())),
                ("rest", block()),
            )
        )
    params = [
        param(f"in{i}", shared_ref(GPU_GLOBAL, array(F64, spec.n)))
        for i in range(spec.num_inputs)
    ]
    params.extend(
        param(f"out{k}", uniq_ref(GPU_GLOBAL, array(F64, spec.n)))
        for k in range(len(spec.out_chains))
    )
    kernel = fun(
        "fuzzed",
        params,
        gpu_grid_spec("grid", dim_x(spec.num_blocks), dim_x(spec.block_size)),
        body(sched("X", "block", "grid", *stmts)),
    )
    return program(kernel)


# ---------------------------------------------------------------------------
# Random generation
# ---------------------------------------------------------------------------


def _random_lit(rng: random.Random) -> tuple:
    # quarter-grid values: exactly representable, and comparisons against
    # the (also quarter-grid) input data genuinely go both ways.  Nonnegative
    # only: a negative literal prints as `-x`, which parses back as a unary
    # negation and re-prints parenthesized — not a printing fixpoint.
    return ("lit", rng.randrange(0, 9) * 0.25)


def _random_read(rng: random.Random, spec_inputs: int, ept: int) -> tuple:
    i = rng.randrange(spec_inputs)
    roll = rng.random()
    if roll < 0.55:
        chains = [c for c in WRITE_CHAINS if c != "transpose" or ept == 1]
        return ("in", i, ("chain", rng.choice(chains)))
    if roll < 0.8:
        return ("in", i, ("bcast", rng.randrange(64)))
    return ("in", i, ("flat", rng.randrange(1024)))


def _random_expr(
    rng: random.Random,
    num_inputs: int,
    ept: int,
    depth: int,
    regs: Tuple[str, ...] = (),
    allow_tmp: bool = False,
) -> tuple:
    if depth <= 0 or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.45:
            return _random_read(rng, num_inputs, ept)
        if allow_tmp and roll < 0.65:
            tchains = [("t_self",), ("t_rev",), ("t_idx", rng.randrange(64))]
            return ("tmp", rng.choice(tchains))
        if regs and roll < 0.8:
            return ("reg", rng.choice(regs))
        return _random_lit(rng)
    op = rng.choice(("add", "sub", "mul"))
    return (
        op,
        _random_expr(rng, num_inputs, ept, depth - 1, regs, allow_tmp),
        _random_expr(rng, num_inputs, ept, depth - 1, regs, allow_tmp),
    )


def _random_cond(
    rng: random.Random,
    num_inputs: int,
    ept: int,
    regs: Tuple[str, ...],
    allow_tmp: bool,
) -> tuple:
    cmp = rng.choice(tuple(_CMP_OPS))
    return (
        cmp,
        _random_expr(rng, num_inputs, ept, 1, regs, allow_tmp),
        _random_expr(rng, num_inputs, ept, 1, regs, allow_tmp),
    )


def random_spec(rng: random.Random, max_dims: int = 16, mutate: bool = False) -> KernelSpec:
    """Draw one spec.  With ``mutate`` the spec carries one random mutation."""
    num_blocks = rng.choice((1, 2, 4))
    sizes = [d for d in (2, 4, 8, 16, 32) if d <= max(2, max_dims)]
    block_size = rng.choice(sizes)
    ept = rng.choice((1, 1, 1, 2, 4))
    num_inputs = rng.randint(1, 2)
    num_outputs = rng.randint(1, 2)
    use_tmp = rng.random() < 0.5
    chains = [c for c in WRITE_CHAINS if c != "transpose" or ept == 1]
    out_chains = tuple(rng.choice(chains) for _ in range(num_outputs))

    phases = []
    if use_tmp:
        phases.append(
            ("phase", (("wtmp", _random_expr(rng, num_inputs, ept, rng.randint(0, 2))),))
        )
        phases.append(("sync",))
        if rng.random() < 0.3:
            phases.append(
                ("single", rng.randrange(0, 5) * 0.25, rng.randrange(0, 5) * 0.25)
            )
            phases.append(("sync",))

    for k in range(num_outputs):
        regs: Tuple[str, ...] = ()
        stmts = []
        if rng.random() < 0.6:
            name = f"r{k}"
            stmts.append(
                ("let", name, _random_expr(rng, num_inputs, ept, 1, (), use_tmp))
            )
            regs = (name,)
            if rng.random() < 0.5:
                stmts.append(
                    (
                        "if_reg",
                        _random_cond(rng, num_inputs, ept, regs, use_tmp),
                        name,
                        _random_expr(rng, num_inputs, ept, 1, regs, use_tmp),
                    )
                )
        value = _random_expr(rng, num_inputs, ept, rng.randint(1, 3), regs, use_tmp)
        if rng.random() < 0.25:
            stmts.append(
                ("wout_if", _random_cond(rng, num_inputs, ept, regs, use_tmp), k, value)
            )
            # the divergent write leaves untouched elements; also write a
            # baseline first so the output is fully initialized
            stmts.insert(len(stmts) - 1, ("wout", k, _random_lit(rng)))
        else:
            stmts.append(("wout", k, value))
        if rng.random() < 0.15 and not use_tmp:
            phases.append(("bloop", rng.randint(1, 3), tuple(stmts)))
        else:
            phases.append(("phase", tuple(stmts)))

    spec = KernelSpec(
        num_blocks=num_blocks,
        block_size=block_size,
        ept=ept,
        num_inputs=num_inputs,
        out_chains=out_chains,
        use_tmp=use_tmp,
        phases=tuple(phases),
        mutation="",
    )
    if mutate:
        applicable = [m for m in MUTATIONS if m != "drop_sync" or use_tmp]
        spec = replace(spec, mutation=rng.choice(applicable))
    return spec


def case_rng(seed: int, index: int) -> random.Random:
    """The PRNG of one (seed, index) case — a stable string seed, so the
    stream is identical across processes and platforms (the PR 7 fault
    harness established this discipline)."""
    return random.Random(f"fuzz:{seed}:{index}")


def spec_for_case(seed: int, index: int, max_dims: int = 16) -> KernelSpec:
    """The spec of one (seed, index) case; every 4th case is a mutant."""
    rng = case_rng(seed, index)
    mutate = rng.random() < 0.25
    return random_spec(rng, max_dims=max_dims, mutate=mutate)
