"""The fuzz corpus: seed programs and persisted minimized repros.

Two halves:

* **Seeds** — small instances of every real workload family, printed to
  canonical ``.descend`` source.  Every fuzz run checks the seeds first:
  they pin the harness against known-good programs (and known-rejected ones,
  for diagnostic stability) before any random case runs.

* **Repros** — when a property violation survives shrinking, the minimized
  source plus its provenance (seed, index, property, mutation) persists as a
  ``fuzz-repro`` artifact in the content-addressed store.  The digest is
  content-derived (sha256 over the canonical JSON of the identifying
  fields), so re-finding the same minimized failure re-writes the same
  object — runs are idempotent — and ``descendc fuzz --replay`` re-checks
  every persisted repro against the current compiler.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Tuple

from repro.descend.ast.printer import print_program

#: Artifact kind of a persisted minimized repro.
REPRO_KIND = "fuzz-repro"


def seed_sources() -> Dict[str, str]:
    """Small, fast instances of every workload family, as printed source."""
    from repro.descend_programs import histogram, reduce, scan, stencil, transpose, vector

    builders = {
        "scale_vec": lambda: vector.build_scale_program(n=64, block_size=16),
        "saxpy": lambda: vector.build_saxpy_program(n=64, block_size=16),
        "reduce": lambda: reduce.build_reduce_program(n=64, block_size=16),
        "scan": lambda: scan.build_scan_program(n=64, block_size=8, elems_per_thread=2),
        "transpose": lambda: transpose.build_transpose_program(n=16, tile=4, rows=2),
        "histogram": lambda: histogram.build_histogram_program(n=64, bins=8, num_blocks=2),
        "stencil": lambda: stencil.build_stencil_program(n=64, block_size=16),
    }
    return {name: print_program(build()) for name, build in sorted(builders.items())}


def rejected_seed_sources() -> Dict[str, str]:
    """The Section 2 ill-typed programs — diagnostic-stability seeds."""
    from repro.descend_programs.unsafe import UNSAFE_PROGRAMS

    return {
        name: print_program(build())
        for name, (build, _code) in sorted(UNSAFE_PROGRAMS.items())
    }


# ---------------------------------------------------------------------------
# Repro artifacts
# ---------------------------------------------------------------------------


def repro_digest(repro: Dict[str, object]) -> str:
    """Content digest of one repro (identifying fields only, canonical JSON)."""
    identity = {
        "seed": repro.get("seed"),
        "index": repro.get("index"),
        "property": repro.get("property"),
        "source": repro.get("source"),
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(b"fuzz-repro\0" + blob).hexdigest()


def persist_repro(store, repro: Dict[str, object]) -> Optional[str]:
    """Write one repro to the store; returns its digest (None if not stored)."""
    digest = repro_digest(repro)
    if store is None:
        return None
    return digest if store.store(digest, dict(repro), kind=REPRO_KIND) else None


def load_repros(store) -> List[Tuple[str, Dict[str, object]]]:
    """Every well-formed persisted repro, sorted by digest (deterministic)."""
    repros: List[Tuple[str, Dict[str, object]]] = []
    for digest in store.digests(kind=REPRO_KIND):
        value = store.load(digest)
        if isinstance(value, dict) and isinstance(value.get("source"), str):
            repros.append((digest, value))
    return repros
