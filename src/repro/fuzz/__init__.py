"""Seed-driven property-based differential fuzzing for the Descend compiler.

Three layers, mirroring the tentpole design:

* :mod:`repro.fuzz.generate` — a grammar-directed random program builder
  over the AST builder API.  Specs (:class:`~repro.fuzz.generate.KernelSpec`)
  are plain frozen data, so generation is deterministic per seed and the
  shrinker can manipulate programs structurally.  A mutation mode perturbs a
  well-typed spec (drop a sync, widen a borrow, swap a select) into likely
  ill-typed variants.

* :mod:`repro.fuzz.harness` — the differential oracle.  For every program it
  checks the cross-cutting properties: deterministic and cache-stable typeck
  verdicts, byte-identical diagnostics cold vs. cached, print→parse
  round-tripping, and — for well-typed programs — identical buffers, cycles
  and empty race reports across the reference / vectorized / jit engines and
  across raw vs. optimized plans (well-typed ⇒ race-free ∧ engine parity).

* :mod:`repro.fuzz.shrink` / :mod:`repro.fuzz.corpus` — greedy spec-level
  minimization of failing cases, and persistence of minimized repros as
  ``fuzz-repro`` artifacts in the content-addressed store (replayable with
  ``descendc fuzz --replay``).

The one-call entry point is :func:`run_fuzz` (what ``descendc fuzz`` runs).
"""

from repro.fuzz.generate import KernelSpec, MUTATIONS, build_program, random_spec
from repro.fuzz.harness import CaseResult, check_source, check_spec
from repro.fuzz.runner import run_fuzz, run_replay
from repro.fuzz.shrink import shrink_spec

__all__ = [
    "KernelSpec",
    "MUTATIONS",
    "build_program",
    "random_spec",
    "CaseResult",
    "check_source",
    "check_spec",
    "shrink_spec",
    "run_fuzz",
    "run_replay",
]
