"""The fuzz campaign driver: seeds → random cases → shrink → persist.

:func:`run_fuzz` is what ``descendc fuzz`` and the CI smoke job execute; it
returns one JSON-safe report dict whose contents are a pure function of
``(seed, count, max_dims)`` — the determinism acceptance criterion is that
two runs of the same arguments produce byte-identical reports (modulo the
store digests, which are themselves content-derived and thus also stable).

:func:`run_replay` re-checks every persisted ``fuzz-repro`` artifact against
the current compiler and reports which still reproduce.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.fuzz.corpus import (
    load_repros,
    persist_repro,
    rejected_seed_sources,
    seed_sources,
)
from repro.fuzz.generate import build_program, spec_for_case
from repro.fuzz.harness import CaseResult, check_source, check_spec
from repro.fuzz.shrink import shrink_spec
from repro.descend.ast.printer import print_program


def run_fuzz(
    seed: int = 0,
    count: int = 100,
    max_dims: int = 16,
    store=None,
    shrink: bool = True,
    include_seeds: bool = True,
    check: Callable[..., CaseResult] = check_spec,
    progress: Optional[Callable[[int, CaseResult], None]] = None,
) -> Dict[str, object]:
    """Run one deterministic fuzz campaign; returns the report dict."""
    report: Dict[str, object] = {
        "seed": seed,
        "count": count,
        "max_dims": max_dims,
        "cases": 0,
        "well_typed": 0,
        "rejected": 0,
        "mutants": 0,
        "mutants_rejected": 0,
        "error_codes": {},
        "fallbacks": {},
        "seed_programs": {},
        "violations": [],
        "repros": [],
    }
    error_codes: Dict[str, int] = report["error_codes"]  # type: ignore[assignment]
    fallbacks: Dict[str, int] = report["fallbacks"]  # type: ignore[assignment]

    if include_seeds:
        seeds: Dict[str, object] = report["seed_programs"]  # type: ignore[assignment]
        for name, source in seed_sources().items():
            result = check_source(source, index=0)
            seeds[name] = {"verdict": result.verdict, "ok": result.ok}
            _note_violations(report, f"seed:{name}", result)
        for name, source in rejected_seed_sources().items():
            result = check_source(source, index=0)
            seeds[f"unsafe:{name}"] = {
                "verdict": result.verdict,
                "code": result.error_code,
                "ok": result.ok,
            }
            _note_violations(report, f"seed:unsafe:{name}", result)

    for index in range(count):
        spec = spec_for_case(seed, index, max_dims=max_dims)
        result = check(spec, index)
        report["cases"] += 1  # type: ignore[operator]
        if spec.mutation:
            report["mutants"] += 1  # type: ignore[operator]
        if result.verdict == "well-typed":
            report["well_typed"] += 1  # type: ignore[operator]
        else:
            report["rejected"] += 1  # type: ignore[operator]
            if spec.mutation:
                report["mutants_rejected"] += 1  # type: ignore[operator]
            code = result.error_code or "<uncoded>"
            error_codes[code] = error_codes.get(code, 0) + 1
        for key in result.fallbacks:
            fallbacks[key] = fallbacks.get(key, 0) + 1
        if result.violations:
            props = result.failing_properties()
            shrunk = (
                shrink_spec(spec, props, index, check) if shrink else spec
            )
            shrunk_source = print_program(build_program(shrunk))
            repro = {
                "seed": seed,
                "index": index,
                "property": props[0],
                "properties": list(props),
                "mutation": spec.mutation,
                "source": shrunk_source,
                "detail": result.violations[0].detail,
            }
            digest = persist_repro(store, repro)
            report["repros"].append(  # type: ignore[union-attr]
                {
                    "index": index,
                    "property": props[0],
                    "digest": digest or "",
                    "source": shrunk_source,
                }
            )
            _note_violations(report, str(index), result)
        if progress is not None:
            progress(index, result)

    report["ok"] = not report["violations"]
    return report


def _note_violations(report: Dict[str, object], case: str, result: CaseResult) -> None:
    for violation in result.violations:
        report["violations"].append(  # type: ignore[union-attr]
            {"case": case, "property": violation.prop, "detail": violation.detail}
        )


def run_replay(
    store, check: Callable[..., CaseResult] = check_source
) -> Dict[str, object]:
    """Re-check every persisted repro; reports which still reproduce."""
    entries = []
    for digest, repro in load_repros(store):
        index = repro.get("index")
        result = check(repro["source"], index if isinstance(index, int) else 0)
        entries.append(
            {
                "digest": digest,
                "index": repro.get("index"),
                "property": repro.get("property", ""),
                "mutation": repro.get("mutation", ""),
                "verdict": result.verdict,
                "reproduced": not result.ok,
                "failing": list(result.failing_properties()),
            }
        )
    return {
        "repros": entries,
        "checked": len(entries),
        "reproduced": sum(1 for e in entries if e["reproduced"]),
    }
