"""The differential oracle: every property one fuzz case must satisfy.

Properties, numbered the way the reports name them:

* ``print-parse-roundtrip`` — the printed program parses back and re-prints
  byte-identically, and the builder-AST verdict agrees with the source
  verdict (the surface syntax is a faithful serialization).
* ``verdict-determinism`` — two cold compiles (fresh sessions) agree on
  accept/reject, the error code, and the *bytes* of the rendered diagnostic.
* ``diagnostic-cache-stability`` — within one session, the cached verdict
  (second compile) renders byte-identically to the cold one.
* ``execution-mode-honored`` — when a plan (and jit source) exist, asking
  for an engine runs that engine; no silent fallback.
* ``engine-parity`` — reference / vectorized / jit agree on cycles,
  barriers, race reports, and every output buffer.
* ``well-typed-race-free`` — the paper's theorem, checked mechanically: a
  program the type checker accepts produces an *empty* race report on every
  engine.
* ``raw-vs-optimized-plan`` — executing the raw (unoptimized) plan and the
  optimized plan gives identical cycles, barriers, and buffers.

:func:`check_spec` runs all of them on one generated spec;
:func:`check_source` runs the source-level subset (everything except the
builder-AST agreement) on a ``.descend`` text — the entry point replay and
the corpus seeds use, so a persisted repro re-checks exactly like a fresh
case.  Everything is deterministic: input buffers derive from the case
index, sessions are scoped fresh, and no wall-clock or PRNG state leaks in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.descend import api
from repro.descend.ast.printer import print_program
from repro.descend.ast.types import ArrayType, RefType
from repro.descend.driver import session_scope
from repro.descend.interp.device import DescendKernel
from repro.descend.source import SourceFile
from repro.errors import DescendError
from repro.fuzz.generate import KernelSpec, build_program
from repro.gpusim import GpuDevice

ENGINES = ("reference", "vectorized", "jit")

#: The property names, in check order (reports aggregate by these).
PROPERTIES = (
    "print-parse-roundtrip",
    "verdict-determinism",
    "diagnostic-cache-stability",
    "execution-mode-honored",
    "engine-parity",
    "well-typed-race-free",
    "raw-vs-optimized-plan",
)

#: Unit name every fuzz compile uses: it appears in rendered diagnostics, so
#: keeping it constant keeps diagnostics byte-comparable across runs.
UNIT_NAME = "<fuzz>"


@dataclass
class Violation:
    prop: str
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {"property": self.prop, "detail": self.detail}


@dataclass
class CaseResult:
    """Everything one case produced (the fuzz report aggregates these)."""

    source: str
    verdict: str  # "well-typed" | "rejected"
    error_code: str = ""
    diagnostic: str = ""
    violations: List[Violation] = field(default_factory=list)
    fallbacks: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def failing_properties(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(v.prop for v in self.violations))


# ---------------------------------------------------------------------------
# Compilation verdicts
# ---------------------------------------------------------------------------


def _verdict_of_source(source: str) -> Tuple[str, str, str, Optional[object]]:
    """``(verdict, code, rendered, compiled)`` of one cold compile."""
    with session_scope():
        try:
            compiled = api.compile_source(source, UNIT_NAME)
        except DescendError as exc:
            rendered = api.render_failure(exc, SourceFile(source, UNIT_NAME)) or str(exc)
            code = getattr(getattr(exc, "diagnostic", None), "code", "") or ""
            return ("rejected", code, rendered, None)
        return ("well-typed", "", "", compiled)


def _cached_rejection(source: str) -> Tuple[str, str]:
    """Cold vs cached rendering of a rejection inside *one* session."""
    renders = []
    with session_scope():
        for _ in range(2):
            try:
                api.compile_source(source, UNIT_NAME)
                renders.append("")
            except DescendError as exc:
                renders.append(
                    api.render_failure(exc, SourceFile(source, UNIT_NAME)) or str(exc)
                )
    return renders[0], renders[1]


# ---------------------------------------------------------------------------
# Deterministic input data
# ---------------------------------------------------------------------------


def _param_shape(p) -> Tuple[int, ...]:
    """Concrete array shape of a kernel parameter (empty tuple = scalar)."""
    ty = p.ty
    if isinstance(ty, RefType):
        ty = ty.referent
    shape = []
    while isinstance(ty, ArrayType):
        shape.append(int(ty.size.evaluate({})))
        ty = ty.elem
    return tuple(shape)


def _case_args(fun_def, device: GpuDevice, index: int) -> Dict[str, object]:
    """Per-parameter buffers, derived only from (parameter position, index).

    Values live on the quarter grid like the generator's literals, so the
    generated ``==`` / ``!=`` comparisons genuinely split the threads.
    """
    args: Dict[str, object] = {}
    for i, p in enumerate(fun_def.params):
        shape = _param_shape(p)
        if not shape:
            args[p.name] = 1.5
            continue
        count = int(np.prod(shape))
        flat = ((np.arange(count, dtype=np.float64) * (3 + 2 * i) + index) % 17) * 0.25
        args[p.name] = device.to_device(flat.reshape(shape))
    return args


def _buffers(device: GpuDevice, args: Dict[str, object]) -> Dict[str, np.ndarray]:
    return {
        name: device.to_host(buf).copy()
        for name, buf in args.items()
        if not isinstance(buf, float)
    }


def _race_key(report) -> tuple:
    def access(acc) -> tuple:
        return (acc.buffer_label, acc.offset, acc.block, acc.thread, acc.epoch, acc.is_write)

    # order-insensitive: the reference engine may report the pair swapped
    return tuple(sorted((access(report.first), access(report.second))))


# ---------------------------------------------------------------------------
# Differential execution
# ---------------------------------------------------------------------------


def _check_execution(compiled, index: int, result: CaseResult) -> None:
    """Engine parity, race freedom, and raw-vs-optimized plan agreement."""
    from repro.descend.plan import PlanUnsupported, lower_device_plan

    for fun_def in compiled.program.gpu_functions():
        name = fun_def.name
        plan, plan_reason = compiled.device_plan(name)
        plan_src, src_reason = compiled.plan_source(name)
        if plan is None:
            result.fallbacks[f"{name}:plan"] = str(plan_reason)
        if plan_src is None:
            result.fallbacks[f"{name}:jit"] = str(src_reason)

        runs = {}
        for engine in ENGINES:
            device = GpuDevice()
            args = _case_args(fun_def, device, index)
            kernel = compiled.kernel(name)
            launch = kernel.launch(device, args, detect_races=True, execution_mode=engine)
            expect_honored = (
                engine == "reference"
                or (engine == "vectorized" and plan is not None)
                or (engine == "jit" and plan_src is not None)
            )
            if expect_honored and launch.execution_mode != engine:
                result.violations.append(
                    Violation(
                        "execution-mode-honored",
                        f"{name}: asked for {engine}, ran {launch.execution_mode} "
                        f"({kernel.fallback_reason})",
                    )
                )
            races = sorted(_race_key(r) for r in launch.races)
            if races:
                result.violations.append(
                    Violation(
                        "well-typed-race-free",
                        f"{name}: {engine} engine reported {len(races)} race(s) "
                        f"on a well-typed program",
                    )
                )
            runs[engine] = (launch.cycles, launch.barriers, races, _buffers(device, args))

        ref_cycles, ref_barriers, ref_races, ref_buffers = runs["reference"]
        for engine in ENGINES[1:]:
            cycles, barriers, races, buffers = runs[engine]
            if cycles != ref_cycles or barriers != ref_barriers:
                result.violations.append(
                    Violation(
                        "engine-parity",
                        f"{name}: {engine} cost ({cycles}, {barriers}) != "
                        f"reference ({ref_cycles}, {ref_barriers})",
                    )
                )
            if races != ref_races:
                result.violations.append(
                    Violation(
                        "engine-parity",
                        f"{name}: {engine} race report differs from reference",
                    )
                )
            for buf, values in ref_buffers.items():
                if not np.array_equal(buffers[buf], values):
                    result.violations.append(
                        Violation(
                            "engine-parity",
                            f"{name}: {engine} buffer `{buf}` differs from reference",
                        )
                    )

        # raw vs optimized plan: inject each into a kernel handle and compare
        if plan is not None:
            try:
                raw = lower_device_plan(fun_def)
            except PlanUnsupported:
                raw = None
            if raw is not None:
                injected = {}
                for label, injected_plan in (("raw", raw), ("optimized", plan)):
                    device = GpuDevice()
                    args = _case_args(fun_def, device, index)
                    kernel = DescendKernel(compiled.program, name)
                    kernel._plan_entry = (injected_plan, None)
                    launch = kernel.launch(
                        device, args, detect_races=True, execution_mode="vectorized"
                    )
                    injected[label] = (
                        launch.cycles,
                        launch.barriers,
                        _buffers(device, args),
                    )
                raw_run, opt_run = injected["raw"], injected["optimized"]
                if raw_run[0] != opt_run[0] or raw_run[1] != opt_run[1]:
                    result.violations.append(
                        Violation(
                            "raw-vs-optimized-plan",
                            f"{name}: cost ({raw_run[0]}, {raw_run[1]}) raw vs "
                            f"({opt_run[0]}, {opt_run[1]}) optimized",
                        )
                    )
                for buf, values in raw_run[2].items():
                    if not np.array_equal(opt_run[2][buf], values):
                        result.violations.append(
                            Violation(
                                "raw-vs-optimized-plan",
                                f"{name}: buffer `{buf}` differs raw vs optimized",
                            )
                        )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_source(source: str, index: int = 0) -> CaseResult:
    """Run every source-level property on one ``.descend`` text."""
    verdict1, code1, rendered1, compiled = _verdict_of_source(source)
    result = CaseResult(
        source=source, verdict=verdict1, error_code=code1, diagnostic=rendered1
    )

    # verdict-determinism: an independent cold compile must agree byte-for-byte
    verdict2, code2, rendered2, compiled2 = _verdict_of_source(source)
    if (verdict1, code1, rendered1) != (verdict2, code2, rendered2):
        result.violations.append(
            Violation(
                "verdict-determinism",
                f"cold compiles disagree: ({verdict1}, {code1}) vs ({verdict2}, {code2})",
            )
        )
        return result

    if verdict1 == "rejected":
        cold, cached = _cached_rejection(source)
        if cold != cached:
            result.violations.append(
                Violation(
                    "diagnostic-cache-stability",
                    "cached diagnostic differs from cold diagnostic",
                )
            )
        return result

    # print-parse-roundtrip (source level): re-printing the parsed program
    # must be a fixpoint, so the printed form is a canonical serialization
    reprinted = print_program(compiled.program)
    if reprinted != source:
        reparsed_verdict, reparsed_code, _, recompiled = _verdict_of_source(reprinted)
        if reparsed_verdict != verdict1 or recompiled is None:
            result.violations.append(
                Violation(
                    "print-parse-roundtrip",
                    f"re-printed source changed verdict to {reparsed_verdict} "
                    f"({reparsed_code})",
                )
            )
            return result

    _check_execution(compiled, index, result)
    return result


def check_spec(spec: KernelSpec, index: int = 0) -> CaseResult:
    """Run every property on one generated spec (AST + source levels)."""
    program_ast = build_program(spec)
    source = print_program(program_ast)

    # builder-AST verdict, for agreement with the source verdict
    with session_scope():
        try:
            api.compile_program(program_ast)
            ast_verdict, ast_code = "well-typed", ""
        except DescendError as exc:
            ast_verdict = "rejected"
            ast_code = getattr(getattr(exc, "diagnostic", None), "code", "") or ""

    result = check_source(source, index)
    if result.verdict != ast_verdict or result.error_code != ast_code:
        result.violations.append(
            Violation(
                "print-parse-roundtrip",
                f"builder AST is {ast_verdict} ({ast_code}) but its printed "
                f"source is {result.verdict} ({result.error_code})",
            )
        )

    if result.verdict == "well-typed":
        # the printed source must round-trip exactly: parse(print(ast))
        # prints back to the same bytes
        verdict, _, _, recompiled = _verdict_of_source(source)
        if recompiled is not None:
            reprinted = print_program(recompiled.program)
            if reprinted != source:
                result.violations.append(
                    Violation(
                        "print-parse-roundtrip",
                        "print(parse(print(ast))) differs from print(ast)",
                    )
                )
    return result
