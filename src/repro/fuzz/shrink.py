"""Greedy spec-level minimization of failing fuzz cases.

The shrinker never touches ASTs: it edits the :class:`KernelSpec` (drop a
phase, drop a statement, halve a dimension, replace a binary expression by
one of its operands) and keeps an edit only if the *same property* still
fails on the rebuilt program.  Candidate order is deterministic, so the
minimized repro of a (seed, index) case is itself reproducible.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Tuple

from repro.fuzz.generate import KernelSpec

_BIN_HEADS = ("add", "sub", "mul")

#: Upper bound on candidate evaluations per shrink: every evaluation compiles
#: and runs the program, so runaway shrinks must stay bounded.
MAX_STEPS = 150


def _binop_positions(node: object, path: Tuple[int, ...] = ()) -> Iterator[Tuple[Tuple[int, ...], tuple]]:
    """Every ``(path, subtree)`` whose head is a binary arithmetic op."""
    if not isinstance(node, tuple):
        return
    if node and node[0] in _BIN_HEADS:
        yield path, node
    for i, child in enumerate(node):
        yield from _binop_positions(child, path + (i,))


def _set_at(node: tuple, path: Tuple[int, ...], value: object) -> tuple:
    if not path:
        return value  # type: ignore[return-value]
    i = path[0]
    return node[:i] + (_set_at(node[i], path[1:], value),) + node[i + 1 :]


def _candidates(spec: KernelSpec) -> Iterator[KernelSpec]:
    """Strictly-simpler variants of ``spec``, biggest reductions first."""
    # dimensions
    if spec.ept > 1:
        yield replace(spec, ept=1)
    if spec.block_size > 2:
        yield replace(spec, block_size=spec.block_size // 2)
    if spec.num_blocks > 1:
        yield replace(spec, num_blocks=max(1, spec.num_blocks // 2))
    if spec.num_inputs > 1:
        yield replace(spec, num_inputs=1)
    # drop whole phases
    for i in range(len(spec.phases)):
        yield replace(spec, phases=spec.phases[:i] + spec.phases[i + 1 :])
    # drop single statements inside phases
    for i, phase in enumerate(spec.phases):
        if phase[0] not in ("phase", "bloop"):
            continue
        stmts_index = 1 if phase[0] == "phase" else 2
        stmts = phase[stmts_index]
        if len(stmts) <= 1:
            continue
        for j in range(len(stmts)):
            new_phase = _set_at(phase, (stmts_index,), stmts[:j] + stmts[j + 1 :])
            yield replace(
                spec, phases=spec.phases[:i] + (new_phase,) + spec.phases[i + 1 :]
            )
    # replace binary expressions by their operands
    for i, phase in enumerate(spec.phases):
        for path, node in _binop_positions(phase):
            for child in (node[1], node[2]):
                new_phase = _set_at(phase, path, child)
                yield replace(
                    spec, phases=spec.phases[:i] + (new_phase,) + spec.phases[i + 1 :]
                )


def shrink_spec(
    spec: KernelSpec,
    properties: Tuple[str, ...],
    index: int,
    check: Callable[[KernelSpec, int], object],
    max_steps: int = MAX_STEPS,
) -> KernelSpec:
    """The smallest spec (greedily) on which one of ``properties`` still fails.

    ``check`` is the harness entry point (``check_spec``-shaped); a candidate
    that raises is treated as not reproducing and discarded.
    """
    target = set(properties)

    def still_fails(candidate: KernelSpec) -> bool:
        try:
            result = check(candidate, index)
        except Exception:
            return False
        return bool(target & set(result.failing_properties()))

    current = spec
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for candidate in _candidates(current):
            steps += 1
            if steps > max_steps:
                break
            if still_fails(candidate):
                current = candidate
                improved = True
                break
    return current
