"""``descendc`` — the command-line interface of the Descend reproduction.

Sub-commands:

``descendc check file.descend``
    Parse and type check; print the first diagnostic (with source snippet) if
    the program violates Descend's safety rules.

``descendc compile file.descend [-o out.cu]``
    Type check and emit the CUDA C++ translation.

``descendc print file.descend``
    Parse, type check, and pretty-print the program back to surface syntax.

``descendc plan file.descend [--fun NAME] [--no-opt]``
    Disassemble the device-plan IR of the program's GPU functions (the
    serializable op programs the vectorized engine executes).  ``--no-opt``
    shows the raw lowering before the ``lower.plan.opt`` passes; functions
    the plan compiler cannot lower print their fallback reason instead.

``descendc figure8 [--sizes small ...] [--engine vectorized] [--scale N]``
    Run the benchmark harness reproducing Figure 8 of the paper.

``descendc bench [--quick] [--descend] [--compile] [--scales 1 4 8] [--jobs N]``
    Benchmark the reference vs the warp-vectorized execution engine on the
    Figure 8 workloads (CUDA-lite kernels by default, the Descend programs
    through the device-plan compiler with ``--descend``), assert cycle-count
    parity, and write a ``BENCH_*.json`` report (the CI bench-smoke
    artifacts).  ``--jobs N`` shards the sweep across N worker processes
    (serial stays the default and the parity oracle); ``--compile``
    benchmarks the *compiler* instead: the staged driver's per-pass timings,
    cold vs session-cached (``BENCH_compile_time.json``).

``descendc cache stats|clear|gc [--store PATH]``
    Inspect, empty, or garbage-collect the persistent artifact store.

All sub-commands share one :class:`~repro.descend.driver.CompileSession`:
repeated compiles of the same file hit the content-addressed pass cache.
``--store PATH`` (or the ``REPRO_STORE`` environment variable) attaches a
persistent :class:`~repro.descend.store.ArtifactStore` under the session,
so the cache additionally survives across invocations.  ``--timings``
prints the session's pass breakdown after the command.
"""

from __future__ import annotations

import argparse
import json as _json
import os
import sys
from typing import Optional, Sequence

from repro.descend.compiler import CompilerDriver, CompileSession, set_active_session
from repro.errors import DescendError, DescendSyntaxError, DescendTypeError

#: The session shared by every sub-command of one CLI invocation.
_SESSION = CompileSession(label="cli")
_DRIVER = CompilerDriver(_SESSION)


def _store_path(args: argparse.Namespace) -> Optional[str]:
    """The persistent store path: ``--store`` wins over ``REPRO_STORE``."""
    return getattr(args, "store", None) or os.environ.get("REPRO_STORE") or None


def _open_store(path: str):
    from repro.descend.store import ArtifactStore

    return ArtifactStore(path)


def _load(path: str):
    return _DRIVER.compile_file(path)


def _print_timings(args: argparse.Namespace) -> None:
    if getattr(args, "timings", False):
        print(f"\npass timings ({_SESSION.label} session):", file=sys.stderr)
        print(_SESSION.timings_table(), file=sys.stderr)


def _print_failure(exc: Exception, path: str) -> None:
    diagnostic = getattr(exc, "diagnostic", None)
    if diagnostic is not None:
        source = None
        try:
            from repro.descend.source import SourceFile

            with open(path, "r", encoding="utf-8") as handle:
                source = SourceFile(handle.read(), path)
        except OSError:
            source = None
        print(diagnostic.render(source), file=sys.stderr)
    else:
        print(f"error: {exc}", file=sys.stderr)


def cmd_check(args: argparse.Namespace) -> int:
    try:
        compiled = _load(args.file)
    except (DescendSyntaxError, DescendTypeError) as exc:
        _print_failure(exc, args.file)
        return 1
    names = ", ".join(compiled.function_names)
    print(f"ok: {args.file} type checks ({names})")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    try:
        compiled = _load(args.file)
    except (DescendSyntaxError, DescendTypeError) as exc:
        _print_failure(exc, args.file)
        return 1
    source = compiled.to_cuda().full_source()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def cmd_print(args: argparse.Namespace) -> int:
    try:
        compiled = _load(args.file)
    except (DescendSyntaxError, DescendTypeError) as exc:
        _print_failure(exc, args.file)
        return 1
    print(compiled.to_source())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.descend.plan import PlanUnsupported, disassemble, lower_device_plan

    try:
        compiled = _load(args.file)
    except (DescendSyntaxError, DescendTypeError) as exc:
        _print_failure(exc, args.file)
        return 1
    gpu_names = compiled.gpu_function_names()
    if args.fun:
        if args.fun not in gpu_names:
            print(
                f"error: `{args.fun}` is not a GPU function of {args.file} "
                f"(GPU functions: {', '.join(gpu_names) or 'none'})",
                file=sys.stderr,
            )
            return 2
        gpu_names = (args.fun,)
    chunks = []
    for name in gpu_names:
        if args.no_opt:
            # Raw lowering, bypassing both the session cache and the
            # optimization pipeline: what `lower.plan` produced, verbatim.
            try:
                plan = lower_device_plan(compiled.program.fun(name))
            except PlanUnsupported as exc:
                plan, reason = None, str(exc)
        else:
            plan, reason = compiled.device_plan(name)
        if plan is None:
            chunks.append(f"// {name}: falls back to the reference engine: {reason}\n")
        else:
            chunks.append(disassemble(plan))
    print("\n".join(chunks), end="")
    return 0


def cmd_figure8(args: argparse.Namespace) -> int:
    from repro.benchsuite import figure8

    forwarded = []
    if args.benchmarks:
        forwarded += ["--benchmarks", *args.benchmarks]
    if args.sizes:
        forwarded += ["--sizes", *args.sizes]
    if args.engine:
        forwarded += ["--engine", args.engine]
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.json:
        forwarded.append("--json")
    return figure8.main(forwarded)


def cmd_bench(args: argparse.Namespace) -> int:
    if args.compile:
        if (
            args.descend or args.benchmarks or args.sizes or args.scales
            or args.scale is not None or args.jobs is not None or args.budget is not None
        ):
            print(
                "error: --compile benchmarks the compiler itself and does not take "
                "workload flags (--descend/--benchmarks/--sizes/--scales/--scale/"
                "--jobs/--budget); combine it only with --quick/--repeats/--output/--json",
                file=sys.stderr,
            )
            return 2
        from repro.benchsuite import compilebench

        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        if args.repeats:
            forwarded += ["--repeats", str(args.repeats)]
        if args.output:
            forwarded += ["--output", args.output]
        if args.json:
            forwarded.append("--json")
        return compilebench.main(forwarded)

    from repro.benchsuite import enginebench

    forwarded = []
    if args.benchmarks:
        forwarded += ["--benchmarks", *args.benchmarks]
    if args.sizes:
        forwarded += ["--sizes", *args.sizes]
    if args.quick:
        forwarded.append("--quick")
    if args.descend:
        forwarded.append("--descend")
    if args.scales:
        forwarded += ["--scales", *[str(s) for s in args.scales]]
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.repeats:
        forwarded += ["--repeats", str(args.repeats)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.budget is not None:
        forwarded += ["--budget", str(args.budget)]
    store = _store_path(args)
    if store:
        forwarded += ["--store", store]
    if args.output:
        forwarded += ["--output", args.output]
    if args.json:
        forwarded.append("--json")
    return enginebench.main(forwarded)


def cmd_cache(args: argparse.Namespace) -> int:
    path = _store_path(args)
    if not path:
        print(
            "error: no store selected; pass --store PATH or set REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    try:
        store = _open_store(path)
    except OSError as exc:
        print(f"error: cannot open artifact store {path!r}: {exc}", file=sys.stderr)
        return 2
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(_json.dumps(stats, indent=2))
        else:
            print(f"store {stats['root']} (schema {stats['schema']}, format {stats['format']})")
            print(
                f"  {stats['entries']} artifacts, {stats['total_bytes']} bytes "
                f"(budget {stats['max_bytes']})"
            )
            # Per-kind breakdown (program / failure / cuda / print / plan):
            # where the blobs and the bytes actually go.
            if stats["kinds"]:
                for kind, bucket in sorted(stats["kinds"].items()):
                    print(f"  {kind:<10} {bucket['count']:>5} blobs  {bucket['bytes']:>10} bytes")
            else:
                print("  (empty)")
    elif args.cache_command == "clear":
        store.clear()
        print(f"cleared store {path}")
    elif args.cache_command == "gc":
        summary = store.gc(max_bytes=args.max_bytes)
        if args.json:
            print(_json.dumps(summary, indent=2))
        else:
            print(
                f"gc: {summary['entries']} artifacts, {summary['total_bytes']} bytes "
                f"(budget {summary['max_bytes']})"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="descendc",
        description="Descend (PLDI 2024) reproduction: type check, compile and benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    timings_help = "print the compile session's per-pass timing breakdown"
    store_help = (
        "attach a persistent artifact store at PATH (compiles warm across "
        "invocations; default: the REPRO_STORE environment variable)"
    )

    check = sub.add_parser("check", help="parse and type check a .descend file")
    check.add_argument("file")
    check.add_argument("--timings", action="store_true", help=timings_help)
    check.add_argument("--store", default=None, help=store_help)
    check.set_defaults(func=cmd_check)

    compile_ = sub.add_parser("compile", help="emit CUDA C++ for a .descend file")
    compile_.add_argument("file")
    compile_.add_argument("-o", "--output")
    compile_.add_argument("--timings", action="store_true", help=timings_help)
    compile_.add_argument("--store", default=None, help=store_help)
    compile_.set_defaults(func=cmd_compile)

    print_ = sub.add_parser("print", help="pretty-print a .descend file")
    print_.add_argument("file")
    print_.add_argument("--timings", action="store_true", help=timings_help)
    print_.add_argument("--store", default=None, help=store_help)
    print_.set_defaults(func=cmd_print)

    plan = sub.add_parser(
        "plan", help="disassemble the device-plan IR of a .descend file's GPU functions"
    )
    plan.add_argument("file")
    plan.add_argument("--fun", default=None, help="disassemble only this GPU function")
    plan.add_argument(
        "--no-opt", action="store_true",
        help="show the raw lowering, before the lower.plan.opt passes",
    )
    plan.add_argument("--timings", action="store_true", help=timings_help)
    plan.add_argument("--store", default=None, help=store_help)
    plan.set_defaults(func=cmd_plan)

    cache = sub.add_parser("cache", help="manage the persistent artifact store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="show store contents and counters")
    cache_stats.add_argument("--store", default=None, help=store_help)
    cache_stats.add_argument("--json", action="store_true")
    cache_stats.set_defaults(func=cmd_cache)
    cache_clear = cache_sub.add_parser("clear", help="delete every stored artifact")
    cache_clear.add_argument("--store", default=None, help=store_help)
    cache_clear.set_defaults(func=cmd_cache)
    cache_gc = cache_sub.add_parser(
        "gc", help="reconcile the index with the blobs and enforce the size budget"
    )
    cache_gc.add_argument("--store", default=None, help=store_help)
    cache_gc.add_argument("--max-bytes", type=int, default=None)
    cache_gc.add_argument("--json", action="store_true")
    cache_gc.set_defaults(func=cmd_cache)

    fig8 = sub.add_parser("figure8", help="run the Figure 8 benchmark harness")
    fig8.add_argument("--benchmarks", nargs="*")
    fig8.add_argument("--sizes", nargs="*")
    fig8.add_argument("--engine", choices=("reference", "vectorized"))
    fig8.add_argument(
        "--scale", type=int, default=None,
        help="workload scale factor (overrides REPRO_SCALE without touching the environment)",
    )
    fig8.add_argument("--json", action="store_true")
    fig8.set_defaults(func=cmd_figure8)

    bench = sub.add_parser(
        "bench", help="benchmark the reference vs the vectorized execution engine"
    )
    bench.add_argument("--benchmarks", nargs="*")
    bench.add_argument("--sizes", nargs="*")
    bench.add_argument("--quick", action="store_true", help="CI smoke subset (small sizes)")
    bench.add_argument(
        "--descend", action="store_true",
        help="benchmark the Descend programs (device-plan backend) instead of CUDA-lite",
    )
    bench.add_argument(
        "--compile", action="store_true",
        help="benchmark compile time instead: staged driver passes, cold vs cached "
        "(writes BENCH_compile_time.json)",
    )
    bench.add_argument(
        "--scales", nargs="*", type=int,
        help="workload scales for --descend (default rows: small x 1/4/8 + medium x 8)",
    )
    bench.add_argument("--scale", type=int, default=None, help="workload scale (CUDA-lite variant)")
    bench.add_argument("--repeats", type=int)
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="shard the sweep across N worker processes (default: serial)",
    )
    bench.add_argument(
        "--budget", type=float, default=None,
        help="per-row wall-clock budget (seconds) for the reference-engine column "
        "of the Descend sweep; over-budget rows record it as skipped",
    )
    bench.add_argument("--store", default=None, help=store_help)
    bench.add_argument("--output", help="path of the BENCH_*.json report")
    bench.add_argument("--json", action="store_true")
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Attach (or detach) the persistent artifact store for this invocation;
    # the `cache` sub-commands manage the store directly instead.
    if args.command != "cache":
        path = _store_path(args)
        try:
            _SESSION.store = _open_store(path) if path else None
        except OSError as exc:
            print(f"error: cannot open artifact store {path!r}: {exc}", file=sys.stderr)
            return 2
    # Install the CLI session as the process-wide one so every consumer the
    # sub-commands touch (interpreter launches, benchsuite sweeps) shares it.
    previous = set_active_session(_SESSION)
    try:
        result = args.func(args)
        _print_timings(args)
        return result
    except DescendError as exc:  # pragma: no cover - defensive top-level handler
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        set_active_session(previous)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
