"""``descendc`` — the command-line interface of the Descend reproduction.

Sub-commands:

``descendc check file.descend``
    Parse and type check; print the first diagnostic (with source snippet) if
    the program violates Descend's safety rules.

``descendc compile file.descend [-o out.cu]``
    Type check and emit the CUDA C++ translation.

``descendc print file.descend``
    Parse, type check, and pretty-print the program back to surface syntax.

``descendc plan file.descend [--fun NAME] [--no-opt]``
    Disassemble the device-plan IR of the program's GPU functions (the
    serializable op programs the vectorized engine executes).  ``--no-opt``
    shows the raw lowering before the ``lower.plan.opt`` passes; functions
    the plan compiler cannot lower print their fallback reason instead.

``descendc serve [--socket PATH] [--store PATH]``
    Run the compile-service daemon: one hot, store-attached compile session
    serving ``check``/``compile``/``print``/``plan``/``cache.stats``/
    ``ping``/``shutdown`` to local clients over a newline-delimited JSON
    protocol (API schema v1).  Identical in-flight compiles coalesce, the
    queue is bounded (backpressure), SIGTERM drains gracefully.

``descendc client OP [file] [--socket PATH] [--retries N] [--deadline-ms MS]``
    Run one operation against a running daemon and print the result exactly
    like the corresponding local sub-command would.  Idempotent ops retry
    with bounded backoff on connection drops and ``overloaded`` pushback;
    every structured error maps to a distinct exit status (see
    :data:`EXIT_CODES`).

``descendc figure8 [--sizes small ...] [--engine vectorized] [--scale N]``
    Run the benchmark harness reproducing Figure 8 of the paper.

``descendc bench [--quick] [--descend] [--compile] [--serve] [--jobs N]``
    Benchmark the reference vs the warp-vectorized execution engine on the
    Figure 8 workloads (CUDA-lite kernels by default, the Descend programs
    through the device-plan compiler with ``--descend``), assert cycle-count
    parity, and write a ``BENCH_*.json`` report (the CI bench-smoke
    artifacts).  ``--jobs N`` shards the sweep across N worker processes
    (serial stays the default and the parity oracle); ``--compile``
    benchmarks the *compiler* instead (``BENCH_compile_time.json``);
    ``--serve`` load-tests the compile-service daemon
    (``BENCH_serve_throughput.json``: requests/s, p50/p99, cold vs warm
    store).

``descendc fuzz [--seed N] [--count N] [--max-dims N] [--replay]``
    Run the seed-driven differential fuzzer: generated Descend programs
    (plus the workload seed corpus) checked against the cross-cutting
    properties — verdict determinism, engine parity, race freedom of
    well-typed programs, raw-vs-optimized plan agreement, diagnostic cache
    stability.  Violations shrink to minimized repros persisted in the
    store (kind ``fuzz-repro``); ``--replay`` re-checks every persisted
    repro instead.  Nonzero exit iff a property was violated (or, with
    ``--replay``, a repro still reproduces).

``descendc cache stats|clear|gc [--store PATH]``
    Inspect, empty, or garbage-collect the persistent artifact store.

Every sub-command is a thin consumer of :mod:`repro.descend.api`: requests
go through one process-wide :class:`~repro.descend.api.LocalBackend`
(sharing one compile session across sub-commands and invocations) or, for
``client``, a :class:`~repro.descend.api.DescendClient` speaking to a
daemon.  ``--store PATH`` / ``REPRO_STORE`` and ``--timings`` are accepted
uniformly by every sub-command via shared parent parsers.
"""

from __future__ import annotations

import argparse
import json as _json
import os
import sys
import tempfile
from typing import Optional, Sequence

from repro.descend.api import (
    ERR_BAD_REQUEST,
    ERR_COMPILE,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_IO,
    ERR_MALFORMED,
    ERR_OVERLOADED,
    ERR_OVERSIZED,
    ERR_RETRIES_EXHAUSTED,
    ERR_SHUTTING_DOWN,
    ERR_SYNTAX,
    ERR_TYPE,
    ERR_UNKNOWN_OP,
    ERR_UNSUPPORTED_VERSION,
    OP_CACHE_STATS,
    OP_CHECK,
    OP_COMPILE,
    OP_HEALTH,
    OP_PING,
    OP_PLAN,
    OP_PRINT,
    OP_SHUTDOWN,
    DescendClient,
    LocalBackend,
    ProtocolError,
    Request,
    Response,
    RetryPolicy,
)
from repro.descend.driver import set_active_session
from repro.errors import DescendError

#: The backend shared by every sub-command of one CLI invocation (and, like
#: the old shared session, by repeated ``main()`` calls in one process).
_BACKEND = LocalBackend(label="cli")

#: Every structured error code maps to a distinct nonzero exit status so
#: shell callers can branch on *why* an operation failed without parsing
#: stderr.  1 and 2 keep their historical meanings (diagnosed program
#: error / bad usage); codes this table cannot name fall back to 1.
EXIT_CODES = {
    ERR_TYPE: 1,
    ERR_BAD_REQUEST: 2,
    ERR_SYNTAX: 3,
    ERR_COMPILE: 4,
    ERR_IO: 5,
    ERR_MALFORMED: 6,
    ERR_OVERSIZED: 7,
    ERR_UNSUPPORTED_VERSION: 8,
    ERR_UNKNOWN_OP: 9,
    ERR_OVERLOADED: 10,
    ERR_SHUTTING_DOWN: 11,
    ERR_INTERNAL: 12,
    ERR_RETRIES_EXHAUSTED: 13,
    ERR_DEADLINE: 14,
}


def exit_code(response: Response) -> int:
    """The process exit status for one API response (0 when ok)."""
    if response.ok:
        return 0
    return EXIT_CODES.get(response.error_code, 1)


def _default_socket() -> str:
    """Default daemon socket: ``REPRO_SOCKET`` or a per-user tmp path."""
    env = os.environ.get("REPRO_SOCKET")
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"descendc-{uid}.sock")


def _store_path(args: argparse.Namespace) -> Optional[str]:
    """The persistent store path: ``--store`` wins over ``REPRO_STORE``."""
    return getattr(args, "store", None) or os.environ.get("REPRO_STORE") or None


def _print_timings(args: argparse.Namespace) -> None:
    if getattr(args, "timings", False):
        session = _BACKEND.session
        print(f"\npass timings ({session.label} session):", file=sys.stderr)
        print(session.timings_table(), file=sys.stderr)


def _print_response_failure(response: Response) -> int:
    """Render an error response the way the old one-shot CLI did."""
    for rendered in response.diagnostics:
        print(rendered, file=sys.stderr)
    if not response.diagnostics:
        print(f"error: {response.error_message}", file=sys.stderr)
    return exit_code(response)


def _emit(args: argparse.Namespace, response: Response) -> int:
    """Print one API response exactly like the local sub-commands do.

    Shared by the in-process commands and ``descendc client``, which is
    what keeps daemon output byte-identical to local output.
    """
    if getattr(args, "json", False):
        print(_json.dumps(response.to_wire(), indent=2))
        return exit_code(response)
    if not response.ok:
        return _print_response_failure(response)
    op = response.op
    if op == OP_CHECK:
        names = ", ".join(response.artifacts.get("functions", ()))
        print(f"ok: {args.file} type checks ({names})")
    elif op == OP_COMPILE:
        source = response.artifacts.get("cuda", "")
        output = getattr(args, "output", None)
        if output:
            with open(output, "w", encoding="utf-8") as handle:
                handle.write(source)
            print(f"wrote {output}")
        else:
            print(source)
    elif op == OP_PRINT:
        print(response.artifacts.get("source", ""))
    elif op == OP_PLAN:
        print(response.artifacts.get("ir", ""), end="")
    elif op == OP_CACHE_STATS:
        print(_json.dumps(response.artifacts, indent=2))
    elif op == OP_PING:
        artifacts = response.artifacts
        print(f"pong: pid {artifacts.get('pid')}, {artifacts.get('requests')} requests served")
    elif op == OP_HEALTH:
        print(_json.dumps(response.artifacts, indent=2))
    elif op == OP_SHUTDOWN:
        print("server stopping")
    return 0


def _file_request(op: str, args: argparse.Namespace) -> Request:
    options = {}
    if getattr(args, "no_opt", False):
        options["no_opt"] = True
    if getattr(args, "jit", False):
        options["jit"] = True
    return Request(op=op, path=args.file, fun=getattr(args, "fun", None), options=options)


def cmd_check(args: argparse.Namespace) -> int:
    return _emit(args, _BACKEND.handle(_file_request(OP_CHECK, args)))


def cmd_compile(args: argparse.Namespace) -> int:
    return _emit(args, _BACKEND.handle(_file_request(OP_COMPILE, args)))


def cmd_print(args: argparse.Namespace) -> int:
    return _emit(args, _BACKEND.handle(_file_request(OP_PRINT, args)))


def cmd_plan(args: argparse.Namespace) -> int:
    return _emit(args, _BACKEND.handle(_file_request(OP_PLAN, args)))


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.descend.serve import CompileServer, ServeConfig

    store_path = _store_path(args)
    if args.store_http is not None and not store_path:
        print(
            "error: --store-http serves the attached artifact store; "
            "pass --store PATH or set REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    config = ServeConfig(
        socket_path=args.socket,
        store_path=store_path,
        max_pending=args.max_pending,
        max_frame_bytes=args.max_frame_bytes,
        drain_timeout_s=args.drain_timeout,
        read_timeout_s=args.read_timeout if args.read_timeout > 0 else None,
        store_http_port=args.store_http,
        store_http_host=args.store_http_host,
    )
    server = CompileServer(_BACKEND, config)

    def ready() -> None:
        print(f"descendc serve: listening on {args.socket}", file=sys.stderr, flush=True)
        if server.store_url:
            print(f"descendc serve: store at {server.store_url}", file=sys.stderr, flush=True)

    try:
        asyncio.run(server.run(on_ready=ready))
    except OSError as exc:
        print(f"error: cannot serve on {args.socket!r}: {exc}", file=sys.stderr)
        return 2
    print("descendc serve: drained and stopped", file=sys.stderr)
    return 0


def cmd_sweep_worker(args: argparse.Namespace) -> int:
    from repro.benchsuite.dispatch import run_worker

    host, _, port = args.connect.rpartition(":")
    try:
        port_number = int(port)
    except ValueError:
        print(f"error: --connect wants HOST:PORT, got {args.connect!r}", file=sys.stderr)
        return 2
    try:
        return run_worker((host or "127.0.0.1", port_number), store_url=_store_path(args))
    except OSError as exc:
        print(f"error: cannot reach sweep coordinator at {args.connect!r}: {exc}", file=sys.stderr)
        return EXIT_CODES[ERR_IO]


def cmd_client(args: argparse.Namespace) -> int:
    op = args.op
    needs_file = op in (OP_CHECK, OP_COMPILE, OP_PRINT, OP_PLAN)
    if needs_file and not args.file:
        print(f"error: client op {op!r} requires a file argument", file=sys.stderr)
        return 2
    options = {"no_opt": True} if getattr(args, "no_opt", False) else {}
    if getattr(args, "jit", False):
        options["jit"] = True
    if args.deadline_ms is not None:
        options["deadline_ms"] = args.deadline_ms
    # Send the program text inline (named after the local file): the daemon
    # needs no shared filesystem view, and the compile is cache-identical to
    # a local `descendc <op> <file>` run, which keys units by this name.
    source = None
    if needs_file:
        try:
            with open(args.file, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            print(f"error: cannot read {args.file!r}: {exc}", file=sys.stderr)
            return 2
    request = Request(
        op=op,
        source=source,
        name=args.file if needs_file else None,
        fun=getattr(args, "fun", None),
        options=options,
    )
    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_attempts=max(1, args.retries))
    client = DescendClient(args.socket, timeout=args.timeout, retry=retry)
    # No eager connect: handle() owns connection + retry, so a daemon that
    # is briefly down or restarting is covered by the same backoff policy as
    # a dropped mid-request connection.  Idempotent ops come back as
    # structured responses either way; only non-retryable ops (shutdown)
    # can still raise here.
    try:
        response = client.handle(request)
    except (OSError, ProtocolError) as exc:
        print(f"error: cannot reach daemon at {args.socket!r}: {exc}", file=sys.stderr)
        return EXIT_CODES[ERR_IO]
    finally:
        client.close()
    if getattr(args, "timings", False) and response.pass_tiers:
        print("pass tiers (daemon):", file=sys.stderr)
        for pass_name, tiers in sorted(response.pass_tiers.items()):
            breakdown = ", ".join(f"{tier} {count}" for tier, count in sorted(tiers.items()))
            print(f"  {pass_name:<16} {breakdown}", file=sys.stderr)
    return _emit(args, response)


def cmd_figure8(args: argparse.Namespace) -> int:
    from repro.benchsuite import figure8

    forwarded = []
    if args.benchmarks:
        forwarded += ["--benchmarks", *args.benchmarks]
    if args.sizes:
        forwarded += ["--sizes", *args.sizes]
    if args.engine:
        forwarded += ["--engine", args.engine]
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.json:
        forwarded.append("--json")
    return figure8.main(forwarded)


def cmd_bench(args: argparse.Namespace) -> int:
    workload_flags = (
        args.descend or args.benchmarks or args.sizes or args.scales
        or args.scale is not None or args.jobs is not None or args.budget is not None
    )
    if args.compile and args.serve:
        print("error: --compile and --serve are mutually exclusive", file=sys.stderr)
        return 2
    if args.store_url and args.store:
        print("error: --store and --store-url are mutually exclusive", file=sys.stderr)
        return 2
    if args.compile:
        if workload_flags:
            print(
                "error: --compile benchmarks the compiler itself and does not take "
                "workload flags (--descend/--benchmarks/--sizes/--scales/--scale/"
                "--jobs/--budget); combine it only with --quick/--repeats/--output/--json",
                file=sys.stderr,
            )
            return 2
        from repro.benchsuite import compilebench

        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        if args.repeats:
            forwarded += ["--repeats", str(args.repeats)]
        if args.output:
            forwarded += ["--output", args.output]
        if args.json:
            forwarded.append("--json")
        return compilebench.main(forwarded)

    if args.serve:
        if workload_flags:
            print(
                "error: --serve load-tests the compile-service daemon and does not "
                "take workload flags (--descend/--benchmarks/--sizes/--scales/"
                "--scale/--jobs/--budget); combine it only with "
                "--quick/--requests/--clients/--output/--json",
                file=sys.stderr,
            )
            return 2
        from repro.benchsuite import servebench

        forwarded = []
        if args.quick:
            forwarded.append("--quick")
        if args.requests is not None:
            forwarded += ["--requests", str(args.requests)]
        if args.clients is not None:
            forwarded += ["--clients", str(args.clients)]
        if args.output:
            forwarded += ["--output", args.output]
        if args.json:
            forwarded.append("--json")
        return servebench.main(forwarded)

    from repro.benchsuite import enginebench

    forwarded = []
    if args.benchmarks:
        forwarded += ["--benchmarks", *args.benchmarks]
    if args.sizes:
        forwarded += ["--sizes", *args.sizes]
    if args.quick:
        forwarded.append("--quick")
    if args.descend:
        forwarded.append("--descend")
    if args.scales:
        forwarded += ["--scales", *[str(s) for s in args.scales]]
    if args.scale is not None:
        forwarded += ["--scale", str(args.scale)]
    if args.repeats:
        forwarded += ["--repeats", str(args.repeats)]
    if args.jobs is not None:
        forwarded += ["--jobs", str(args.jobs)]
    if args.budget is not None:
        forwarded += ["--budget", str(args.budget)]
    if args.store_url:
        forwarded += ["--store-url", args.store_url]
    else:
        store = _store_path(args)
        if store:
            forwarded += ["--store", store]
    if args.output:
        forwarded += ["--output", args.output]
    if args.json:
        forwarded.append("--json")
    return enginebench.main(forwarded)


def cmd_fuzz(args: argparse.Namespace) -> int:
    path = _store_path(args)
    if not args.http_backend:
        return _run_fuzz_command(args, path)

    # --http-backend: persist the campaign's artifacts through the HTTP
    # store protocol instead of the local-dir backend — an in-process
    # daemon serves the --store directory on an ephemeral port and the
    # fuzzer attaches to its URL (same store, remote wire path).
    from repro.descend.store import is_store_url

    if not path:
        print(
            "error: --http-backend needs a store; pass --store PATH or set REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    if is_store_url(path):
        print(
            "error: --http-backend serves a local store directory over HTTP; "
            "--store is already a URL",
            file=sys.stderr,
        )
        return 2
    from repro.descend.serve import ServeConfig, ServerThread

    socket_path = os.path.join(
        tempfile.mkdtemp(prefix="descendc-fuzz-http-"), "serve.sock"
    )
    config = ServeConfig(socket_path, store_path=path, store_http_port=0)
    try:
        thread = ServerThread(LocalBackend(label="fuzz-http"), config).start()
    except (OSError, RuntimeError) as exc:
        print(f"error: cannot serve store {path!r} over HTTP: {exc}", file=sys.stderr)
        return 2
    try:
        return _run_fuzz_command(args, thread.store_url)
    finally:
        thread.stop()


def _run_fuzz_command(args: argparse.Namespace, path: Optional[str]) -> int:
    from repro.fuzz import run_fuzz, run_replay

    store = None
    if path:
        try:
            from repro.descend.store import ArtifactStore

            store = ArtifactStore(path)
        except OSError as exc:
            print(f"error: cannot open artifact store {path!r}: {exc}", file=sys.stderr)
            return 2

    if args.replay:
        if store is None:
            print(
                "error: --replay needs a store; pass --store PATH or set REPRO_STORE",
                file=sys.stderr,
            )
            return 2
        report = run_replay(store)
        if args.json:
            print(_json.dumps(report, indent=2, sort_keys=True))
        else:
            print(f"replay: {report['checked']} repro(s), {report['reproduced']} reproduce")
            for entry in report["repros"]:
                status = "REPRODUCES" if entry["reproduced"] else "fixed"
                props = ", ".join(entry["failing"]) or "-"
                print(f"  {entry['digest'][:12]}  {status:<10} {entry['property']} ({props})")
        return 1 if report["reproduced"] else 0

    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        max_dims=args.max_dims,
        store=store,
        shrink=not args.no_shrink,
    )
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    else:
        print(
            f"fuzz: seed {report['seed']}, {report['cases']} case(s): "
            f"{report['well_typed']} well-typed, {report['rejected']} rejected "
            f"({report['mutants_rejected']}/{report['mutants']} mutants)"
        )
        if report["error_codes"]:
            codes = ", ".join(
                f"{code} x{n}" for code, n in sorted(report["error_codes"].items())
            )
            print(f"  rejection codes: {codes}")
        if report["fallbacks"]:
            for key, n in sorted(report["fallbacks"].items()):
                print(f"  fallback: {key} x{n}")
        if report["violations"]:
            print(f"  {len(report['violations'])} property violation(s):")
            for violation in report["violations"]:
                print(
                    f"    case {violation['case']}: {violation['property']}: "
                    f"{violation['detail']}"
                )
            for repro in report["repros"]:
                digest = repro["digest"][:12] if repro["digest"] else "(not stored)"
                print(f"  minimized repro {digest}: {repro['property']}")
        else:
            print("  all properties held")
    return 0 if report["ok"] else 1


def cmd_cache(args: argparse.Namespace) -> int:
    path = _store_path(args)
    if not path:
        print(
            "error: no store selected; pass --store PATH or set REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    try:
        from repro.descend.store import ArtifactStore

        store = ArtifactStore(path)
    except OSError as exc:
        print(f"error: cannot open artifact store {path!r}: {exc}", file=sys.stderr)
        return 2
    try:
        return _run_cache_command(args, store, path)
    except OSError as exc:
        # Remote (URL) stores can fail mid-operation; management commands
        # surface that instead of degrading like the compile path does.
        print(f"error: store operation failed on {path!r}: {exc}", file=sys.stderr)
        return EXIT_CODES[ERR_IO]


def _run_cache_command(args: argparse.Namespace, store, path: str) -> int:
    if args.cache_command == "stats":
        stats = store.stats()
        if args.json:
            print(_json.dumps(stats, indent=2))
        else:
            print(f"store {stats['root']} (schema {stats['schema']}, format {stats['format']})")
            print(
                f"  {stats['entries']} artifacts, {stats['total_bytes']} bytes "
                f"(budget {stats['max_bytes']})"
            )
            # Per-kind breakdown (program / failure / cuda / print / plan /
            # fuzz-repro): where the blobs and the bytes actually go.
            if stats["kinds"]:
                for kind, bucket in sorted(stats["kinds"].items()):
                    print(f"  {kind:<10} {bucket['count']:>5} blobs  {bucket['bytes']:>10} bytes")
            else:
                print("  (empty)")
    elif args.cache_command == "clear":
        store.clear()
        print(f"cleared store {path}")
    elif args.cache_command == "gc":
        summary = store.gc(max_bytes=args.max_bytes, quarantine_age_s=args.quarantine_age)
        if args.json:
            print(_json.dumps(summary, indent=2))
        else:
            print(
                f"gc: {summary['entries']} artifacts, {summary['total_bytes']} bytes "
                f"(budget {summary['max_bytes']})"
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="descendc",
        description="Descend (PLDI 2024) reproduction: type check, compile and benchmark",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared parent parsers: every sub-command accepts --store/--timings
    # uniformly; the plan-shaped ones add --fun/--no-opt.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--timings", action="store_true",
        help="print the compile session's per-pass timing breakdown",
    )
    common.add_argument(
        "--store", default=None,
        help="attach a persistent artifact store at PATH (compiles warm across "
        "invocations; default: the REPRO_STORE environment variable)",
    )
    plan_opts = argparse.ArgumentParser(add_help=False)
    plan_opts.add_argument("--fun", default=None, help="disassemble only this GPU function")
    plan_opts.add_argument(
        "--no-opt", action="store_true", dest="no_opt",
        help="show the raw lowering, before the lower.plan.opt passes",
    )
    plan_opts.add_argument(
        "--jit", action="store_true", dest="jit",
        help="show the generated Python source from the lower.plan.codegen pass",
    )

    check = sub.add_parser(
        "check", parents=[common], help="parse and type check a .descend file"
    )
    check.add_argument("file")
    check.set_defaults(func=cmd_check, json=False)

    compile_ = sub.add_parser(
        "compile", parents=[common], help="emit CUDA C++ for a .descend file"
    )
    compile_.add_argument("file")
    compile_.add_argument("-o", "--output")
    compile_.set_defaults(func=cmd_compile, json=False)

    print_ = sub.add_parser(
        "print", parents=[common], help="pretty-print a .descend file"
    )
    print_.add_argument("file")
    print_.set_defaults(func=cmd_print, json=False)

    plan = sub.add_parser(
        "plan", parents=[common, plan_opts],
        help="disassemble the device-plan IR of a .descend file's GPU functions",
    )
    plan.add_argument("file")
    plan.set_defaults(func=cmd_plan, json=False)

    serve = sub.add_parser(
        "serve", parents=[common],
        help="run the compile-service daemon (API schema v1 over a local socket)",
    )
    serve.add_argument(
        "--socket", default=_default_socket(),
        help="unix socket path to listen on (default: REPRO_SOCKET or a tmp path)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="bound on queued compile requests before clients get `overloaded`",
    )
    serve.add_argument(
        "--max-frame-bytes", type=int, default=8 * 1024 * 1024,
        help="bound on one newline-delimited JSON protocol frame",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0,
        help="graceful-shutdown bound on waiting for in-flight requests (seconds)",
    )
    serve.add_argument(
        "--read-timeout", type=float, default=300.0,
        help="per-connection idle bound between request frames (seconds); "
        "0 disables the idle kick",
    )
    serve.add_argument(
        "--store-http", type=int, default=None, metavar="PORT", dest="store_http",
        help="also serve the attached artifact store over HTTP on this TCP port "
        "(0 picks an ephemeral port) for remote sweep workers and clients",
    )
    serve.add_argument(
        "--store-http-host", default="127.0.0.1", dest="store_http_host",
        help="interface the HTTP store endpoint binds (default: 127.0.0.1)",
    )
    serve.set_defaults(func=cmd_serve)

    sweep_worker = sub.add_parser(
        "sweep-worker", parents=[common],
        help="join a distributed bench sweep as a pull-based worker process",
    )
    sweep_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="address of the sweep coordinator (printed by `descendc bench --jobs N "
        "--store-url URL`, or passed out-of-band for remote machines)",
    )
    sweep_worker.set_defaults(func=cmd_sweep_worker)

    client = sub.add_parser(
        "client", parents=[common, plan_opts],
        help="run one operation against a running compile-service daemon",
    )
    client.add_argument(
        "op",
        choices=(
            OP_CHECK, OP_COMPILE, OP_PRINT, OP_PLAN,
            OP_CACHE_STATS, OP_PING, OP_HEALTH, OP_SHUTDOWN,
        ),
    )
    client.add_argument("file", nargs="?")
    client.add_argument(
        "--socket", default=_default_socket(),
        help="unix socket path of the daemon (default: REPRO_SOCKET or a tmp path)",
    )
    client.add_argument("-o", "--output", help="write the compile op's CUDA here")
    client.add_argument("--timeout", type=float, default=60.0)
    client.add_argument(
        "--retries", type=int, default=None,
        help="attempts per idempotent op before a structured retries-exhausted "
        "error (default 3; 1 disables retrying)",
    )
    client.add_argument(
        "--deadline-ms", type=int, default=None, dest="deadline_ms",
        help="server-side queueing deadline: the daemon answers deadline-exceeded "
        "instead of compiling if the request waited longer than this",
    )
    client.add_argument("--json", action="store_true", help="print the full response frame")
    client.set_defaults(func=cmd_client)

    cache = sub.add_parser("cache", help="manage the persistent artifact store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", parents=[common], help="show store contents and counters"
    )
    cache_stats.add_argument("--json", action="store_true")
    cache_stats.set_defaults(func=cmd_cache)
    cache_clear = cache_sub.add_parser(
        "clear", parents=[common], help="delete every stored artifact"
    )
    cache_clear.set_defaults(func=cmd_cache)
    cache_gc = cache_sub.add_parser(
        "gc", parents=[common],
        help="reconcile the index with the blobs and enforce the size budget",
    )
    cache_gc.add_argument("--max-bytes", type=int, default=None)
    cache_gc.add_argument(
        "--quarantine-age", type=float, default=None, dest="quarantine_age",
        metavar="SECONDS",
        help="age past which quarantined (corrupt) blobs are deleted for good "
        "(default: REPRO_STORE_QUARANTINE_S or 3600)",
    )
    cache_gc.add_argument("--json", action="store_true")
    cache_gc.set_defaults(func=cmd_cache)

    fuzz = sub.add_parser(
        "fuzz", parents=[common],
        help="run the seed-driven differential fuzzer over generated programs",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; (seed, count, max-dims) fully determine the report",
    )
    fuzz.add_argument(
        "--count", type=int, default=100, help="number of random cases to generate"
    )
    fuzz.add_argument(
        "--max-dims", type=int, default=16, dest="max_dims",
        help="upper bound on the generated block size",
    )
    fuzz.add_argument(
        "--replay", action="store_true",
        help="re-check every fuzz-repro artifact in the store instead of fuzzing",
    )
    fuzz.add_argument(
        "--no-shrink", action="store_true", dest="no_shrink",
        help="persist failing cases unminimized (faster on pervasive failures)",
    )
    fuzz.add_argument(
        "--http-backend", action="store_true", dest="http_backend",
        help="persist the campaign's repro artifacts through the HTTP store "
        "protocol (an in-process daemon serves --store on an ephemeral port)",
    )
    fuzz.add_argument("--json", action="store_true", help="print the full report")
    fuzz.set_defaults(func=cmd_fuzz)

    fig8 = sub.add_parser(
        "figure8", parents=[common], help="run the Figure 8 benchmark harness"
    )
    fig8.add_argument("--benchmarks", nargs="*")
    fig8.add_argument("--sizes", nargs="*")
    fig8.add_argument("--engine", choices=("reference", "vectorized", "jit"))
    fig8.add_argument(
        "--scale", type=int, default=None,
        help="workload scale factor (overrides REPRO_SCALE without touching the environment)",
    )
    fig8.add_argument("--json", action="store_true")
    fig8.set_defaults(func=cmd_figure8)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="benchmark the reference vs the vectorized execution engine",
    )
    bench.add_argument("--benchmarks", nargs="*")
    bench.add_argument("--sizes", nargs="*")
    bench.add_argument("--quick", action="store_true", help="CI smoke subset (small sizes)")
    bench.add_argument(
        "--descend", action="store_true",
        help="benchmark the Descend programs (device-plan backend) instead of CUDA-lite",
    )
    bench.add_argument(
        "--compile", action="store_true",
        help="benchmark compile time instead: staged driver passes, cold vs cached "
        "(writes BENCH_compile_time.json)",
    )
    bench.add_argument(
        "--serve", action="store_true",
        help="load-test the compile-service daemon instead: requests/s and p50/p99 "
        "latency, cold vs warm store (writes BENCH_serve_throughput.json)",
    )
    bench.add_argument(
        "--requests", type=int, default=None,
        help="total requests per --serve phase (default 200; --quick: 60)",
    )
    bench.add_argument(
        "--clients", type=int, default=None,
        help="concurrent client connections for --serve (default 4)",
    )
    bench.add_argument(
        "--scales", nargs="*", type=int,
        help="workload scales for --descend (default rows: small x 1/4/8 + medium x 8)",
    )
    bench.add_argument("--scale", type=int, default=None, help="workload scale (CUDA-lite variant)")
    bench.add_argument("--repeats", type=int)
    bench.add_argument(
        "--jobs", type=int, default=None,
        help="shard the sweep across N worker processes (default: serial)",
    )
    bench.add_argument(
        "--budget", type=float, default=None,
        help="per-row wall-clock budget (seconds) for the reference-engine column "
        "of the Descend sweep; over-budget rows record it as skipped",
    )
    bench.add_argument(
        "--store-url", default=None, dest="store_url", metavar="URL",
        help="attach the sweep to a daemon's HTTP store endpoint and dispatch "
        "--jobs N cells to worker processes with pull-based work stealing",
    )
    bench.add_argument("--output", help="path of the BENCH_*.json report")
    bench.add_argument("--json", action="store_true")
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Attach (or detach) the persistent artifact store for this invocation;
    # `cache` manages the store directly, `client` defers to the daemon's,
    # and `sweep-worker` attaches per-cell inside its run loop.
    if args.command not in ("cache", "client", "sweep-worker"):
        path = _store_path(args)
        try:
            _BACKEND.attach_store_path(path)
        except OSError as exc:
            print(f"error: cannot open artifact store {path!r}: {exc}", file=sys.stderr)
            return 2
    # Install the backend's session as the process-wide one so every consumer
    # the sub-commands touch (interpreter launches, benchsuite sweeps,
    # the daemon's worker) shares it.
    previous = set_active_session(_BACKEND.session)
    try:
        result = args.func(args)
        _print_timings(args)
        return result
    except DescendError as exc:  # pragma: no cover - defensive top-level handler
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        set_active_session(previous)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
