"""Distributed sweep dispatch: pull-based work stealing over TCP.

:func:`repro.benchsuite.sweep.run_cells` shards bench cells across local
``spawn``-ed pool workers; this module is its multi-machine sibling.  A
:class:`SweepCoordinator` listens on a TCP port and hands cells to any
worker that connects — locally spawned subprocesses
(:func:`dispatch_cells` starts ``jobs`` of them) or remote ones joined by
hand via ``descendc sweep-worker --connect HOST:PORT``.  All workers warm
from one shared artifact store, normally the daemon's HTTP store endpoint
(``--store-url``), so the warm-store zero-compute property becomes
fleet-wide.

Design points:

* **Pull, don't shard.**  Workers *request* the next cell when idle
  (``{"op": "next"}``) instead of receiving a static slice up front —
  work stealing by construction, so a slow host finishes fewer cells
  instead of straggling the whole sweep.
* **Same wire idiom as the daemon.**  Frames are the newline-delimited
  key-sorted JSON of API schema v1 (:func:`repro.descend.api.encode_frame`),
  and rows travel as their :meth:`~repro.benchsuite.enginebench.EngineBenchRow.as_dict`
  payload, rebuilt with :meth:`~repro.benchsuite.enginebench.EngineBenchRow.from_dict`
  — constructor fields only, so a dispatched row is value-identical to a
  serial one (the serial sweep stays the parity oracle; only the timing
  and ``host`` columns differ).
* **PR 7 retry machinery, verbatim semantics.**  Every assignment carries
  the cell's attempt count as its fault ``epoch``; the worker installs it
  in ``REPRO_FAULTS_EPOCH`` before measuring, so "crash in round 0, heal
  in round 1" chaos plans govern dispatched workers exactly like pool
  workers.  A worker that dies mid-cell (connection EOF with an
  assignment outstanding) fails that attempt; past ``max_attempts`` the
  sweep aborts with a :class:`BenchmarkError` naming the cell — loud,
  structured, never a hang.
* **Fault seam.**  The coordinator's assignment path checks the
  ``sweep.dispatch`` site: an injected failure drops the worker's
  connection with the cell assigned, exercising the same requeue path a
  killed worker takes.

Wire protocol (worker → coordinator, then the reply):

==========================  ================================================
``{"op": "hello", "host"}``  Join the sweep; answered ``{"op": "welcome"}``.
``{"op": "next"}``           Ask for work.  Answered ``{"op": "cell",
                             "cell": {...}, "epoch": N}`` (run it),
                             ``{"op": "wait", "delay_ms": D}`` (everything
                             is in flight — poll again), or
                             ``{"op": "done"}`` (sweep over, exit 0).
``{"op": "result", "index", "row"|null, "error"|null, "passes", "host"}``
                             One finished cell; no reply (the worker sends
                             ``next`` again).
==========================  ================================================
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.descend.api import MAX_FRAME_BYTES, encode_frame
from repro.errors import BenchmarkError

__all__ = ["SweepCoordinator", "dispatch_cells", "run_worker"]

#: How long an idle worker sleeps when every pending cell is in flight.
IDLE_POLL_MS = 50

#: How often :func:`dispatch_cells` polls coordinator state and worker
#: process liveness.
SUPERVISE_POLL_S = 0.05


def _decode_line(line: bytes) -> Dict[str, object]:
    if len(line) > MAX_FRAME_BYTES:
        raise ValueError(f"dispatch frame exceeds {MAX_FRAME_BYTES} bytes")
    frame = json.loads(line.decode("utf-8"))
    if not isinstance(frame, dict):
        raise ValueError("dispatch frame must be a JSON object")
    return frame


class SweepCoordinator:
    """Feeds bench cells to pulling workers; merges rows in sweep order.

    Thread model: one accept thread plus one thread per connected worker.
    All sweep state (pending cells, in-flight assignments, attempt counts,
    merged rows) lives behind one lock; the per-worker threads only block
    on their own sockets.
    """

    def __init__(
        self,
        cells: Sequence[Dict[str, object]],
        store_url: Optional[str] = None,
        max_attempts: Optional[int] = None,
        progress=None,
        pass_totals: Optional[Dict[str, Dict[str, int]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        from repro.benchsuite.sweep import default_max_attempts

        self.store_url = store_url
        self.max_attempts = (
            max_attempts if max_attempts is not None else default_max_attempts()
        )
        self._progress = progress
        self._pass_totals = pass_totals
        self._bind = (host, port)
        self._lock = threading.Lock()
        self._pending: Dict[int, Dict[str, object]] = {
            int(cell["index"]): cell for cell in cells  # type: ignore[arg-type]
        }
        self._assigned: Dict[int, str] = {}  # index -> worker label
        self._attempts: Dict[int, int] = {index: 0 for index in self._pending}
        self._rows: Dict[int, object] = {}
        self._total = len(self._pending)
        self._fatal: Optional[str] = None
        self._finished = threading.Event()
        if not self._pending:
            self._finished.set()
        self._server: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._worker_threads: List[threading.Thread] = []
        self.workers_seen = 0

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> "SweepCoordinator":
        server = socket.create_server(self._bind)
        server.settimeout(0.2)
        self._server = server
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="sweep-coordinator", daemon=True
        )
        self._accept_thread.start()
        return self

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None, "coordinator not started"
        bound = self._server.getsockname()
        return bound[0], bound[1]

    def close(self) -> None:
        self._finished.set()
        if self._server is not None:
            with contextlib.suppress(OSError):
                self._server.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        for thread in self._worker_threads:
            thread.join(timeout=2.0)

    def __enter__(self) -> "SweepCoordinator":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def finished(self) -> bool:
        return self._finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._finished.wait(timeout)

    def result(self) -> List[object]:
        """The merged rows in sweep order; raises on a failed sweep."""
        if self._fatal is not None:
            raise BenchmarkError(self._fatal)
        if len(self._rows) != self._total:
            raise BenchmarkError(
                f"sweep dispatch ended with {self._total - len(self._rows)} of "
                f"{self._total} cells unmeasured"
            )
        return [self._rows[index] for index in sorted(self._rows)]

    # -- accept/serve loops -----------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._finished.is_set():
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_worker, args=(conn,), daemon=True
            )
            thread.start()
            self._worker_threads.append(thread)

    def _serve_worker(self, conn: socket.socket) -> None:
        label = "worker-?"
        current: Optional[int] = None  # the cell index this worker holds
        try:
            with conn, conn.makefile("rb") as reader:
                while True:
                    line = reader.readline()
                    if not line:
                        break
                    try:
                        frame = _decode_line(line)
                    except ValueError:
                        break
                    op = frame.get("op")
                    if op == "hello":
                        label = str(frame.get("host") or label)
                        with self._lock:
                            self.workers_seen += 1
                        conn.sendall(encode_frame({"op": "welcome"}))
                    elif op == "next":
                        reply, current = self._assign(label)
                        if reply is None:
                            # Injected dispatch fault: drop the connection
                            # with the cell assigned — the worker sees EOF,
                            # the requeue path sees a dead worker.
                            break
                        conn.sendall(encode_frame(reply))
                        if reply["op"] == "done":
                            break
                    elif op == "result":
                        self._record(frame, label)
                        current = None
                    else:
                        break
        except (OSError, ValueError):
            pass
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            if current is not None:
                self._cell_failed(current, f"worker {label} connection lost mid-cell")

    def _assign(self, label: str) -> Tuple[Optional[Dict[str, object]], Optional[int]]:
        """The next reply for an idle worker: a cell, a wait, or done.

        Returns ``(None, index)`` when the ``sweep.dispatch`` fault seam
        fires — the caller drops the connection with ``index`` assigned.
        """
        with self._lock:
            if self._fatal is not None or self._finished.is_set():
                return {"op": "done"}, None
            available = [
                index for index in sorted(self._pending) if index not in self._assigned
            ]
            if not available:
                if not self._pending:
                    return {"op": "done"}, None
                return {"op": "wait", "delay_ms": IDLE_POLL_MS}, None
            index = available[0]
            self._assigned[index] = label
            epoch = self._attempts[index]
            cell = self._pending[index]
        rule = faults.check("sweep.dispatch")
        if rule is not None:
            return None, index
        return {"op": "cell", "cell": cell, "epoch": epoch}, index

    def _record(self, frame: Dict[str, object], label: str) -> None:
        from repro.benchsuite.enginebench import EngineBenchRow
        from repro.benchsuite.sweep import merge_pass_totals

        raw_index = frame.get("index")
        if not isinstance(raw_index, int):
            return
        index = raw_index
        error = frame.get("error")
        if error is not None:
            self._cell_failed(index, str(error))
            return
        row_payload = frame.get("row")
        if not isinstance(row_payload, dict):
            self._cell_failed(index, f"worker {label} sent a result without a row")
            return
        try:
            row = EngineBenchRow.from_dict(row_payload)
        except (KeyError, TypeError, ValueError) as exc:
            self._cell_failed(index, f"worker {label} sent an unusable row: {exc}")
            return
        with self._lock:
            if index not in self._pending:
                return  # duplicate result after a requeue race: first one won
            row.retries = self._attempts[index]
            self._rows[index] = row
            del self._pending[index]
            self._assigned.pop(index, None)
            passes = frame.get("passes")
            if self._pass_totals is not None and isinstance(passes, dict):
                merge_pass_totals(self._pass_totals, passes)
            done = not self._pending
            merged = len(self._rows)
        if self._progress is not None:
            self._progress(
                f"[{merged}/{self._total}] merged "
                f"{row.benchmark}/{row.size} (scale {row.scale}) from {row.host or label}"
            )
        if done:
            self._finished.set()

    def _cell_failed(self, index: int, error: str) -> None:
        from repro.benchsuite.sweep import _cell_label

        with self._lock:
            cell = self._pending.get(index)
            if cell is None:
                return  # already measured by another worker
            self._assigned.pop(index, None)
            self._attempts[index] += 1
            attempts = self._attempts[index]
            if attempts >= self.max_attempts:
                self._fatal = (
                    f"sweep cell {_cell_label(cell)} failed in a worker "
                    f"after {attempts} attempt(s): {error}"
                )
                self._finished.set()
                return
        if self._progress is not None:
            self._progress(
                f"retrying {_cell_label(cell)} "
                f"(attempt {attempts + 1}/{self.max_attempts}): {error}"
            )


# -- the worker side -----------------------------------------------------------
def run_worker(
    address: Tuple[str, int],
    store_url: Optional[str] = None,
    timeout_s: float = 300.0,
) -> int:
    """Join a sweep coordinator and measure cells until it says ``done``.

    The worker installs a fresh store-warmed session (the same
    ``sweep.spawn`` seam as a pool worker), then loops: pull, set the
    assignment's fault epoch, measure via the shared
    :func:`~repro.benchsuite.sweep._run_cell`, report.  Returns a process
    exit code: ``0`` after ``done``, ``1`` on a lost coordinator.
    """
    from repro.benchsuite.enginebench import host_label
    from repro.benchsuite.sweep import _run_cell, _worker_init

    _worker_init(store_url)
    label = host_label()
    try:
        conn = socket.create_connection(address, timeout=timeout_s)
    except OSError as exc:
        print(f"sweep-worker: cannot reach coordinator {address}: {exc}", file=sys.stderr)
        return 1
    try:
        with conn, conn.makefile("rb") as reader:
            conn.sendall(encode_frame({"op": "hello", "host": label}))
            welcome = reader.readline()
            if not welcome:
                return 1
            while True:
                conn.sendall(encode_frame({"op": "next"}))
                line = reader.readline()
                if not line:
                    return 1
                reply = _decode_line(line)
                op = reply.get("op")
                if op == "done":
                    return 0
                if op == "wait":
                    delay = reply.get("delay_ms", IDLE_POLL_MS)
                    time.sleep(
                        max(0.0, float(delay)) / 1000.0  # type: ignore[arg-type]
                        if isinstance(delay, (int, float))
                        else IDLE_POLL_MS / 1000.0
                    )
                    continue
                if op != "cell":
                    return 1
                cell = reply.get("cell")
                if not isinstance(cell, dict):
                    return 1
                # The assignment's epoch is the cell's attempt count: chaos
                # plans keyed `epoch=0` fail the first try and heal on the
                # requeue, exactly like the pool orchestrator's rounds.
                epoch = reply.get("epoch", 0)
                epoch_before = os.environ.get(faults.ENV_EPOCH)
                os.environ[faults.ENV_EPOCH] = str(
                    epoch if isinstance(epoch, int) else 0
                )
                try:
                    index, row, error, passes = _run_cell(cell)
                finally:
                    if epoch_before is None:
                        os.environ.pop(faults.ENV_EPOCH, None)
                    else:
                        os.environ[faults.ENV_EPOCH] = epoch_before
                conn.sendall(
                    encode_frame(
                        {
                            "op": "result",
                            "index": int(index),  # type: ignore[arg-type]
                            "row": row.as_dict() if row is not None else None,
                            "error": error,
                            "passes": passes,
                            "host": label,
                        }
                    )
                )
    except (OSError, ValueError) as exc:
        print(f"sweep-worker: lost coordinator {address}: {exc}", file=sys.stderr)
        return 1


# -- the orchestrating entry point ---------------------------------------------
def _spawn_worker(address: Tuple[str, int], store_url: Optional[str]) -> subprocess.Popen:
    import repro

    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "sweep-worker",
        "--connect",
        f"{address[0]}:{address[1]}",
    ]
    if store_url:
        command += ["--store", store_url]
    env = os.environ.copy()
    # The spawned interpreter must resolve the same `repro` package this
    # process runs, regardless of the caller's cwd or a relative PYTHONPATH.
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else package_root + os.pathsep + existing
    )
    return subprocess.Popen(command, env=env)


def dispatch_cells(
    cells: Sequence[Dict[str, object]],
    jobs: int,
    store_url: Optional[str] = None,
    progress=None,
    pass_totals: Optional[Dict[str, Dict[str, int]]] = None,
    max_attempts: Optional[int] = None,
) -> List[object]:
    """Run sweep cells through a coordinator plus ``jobs`` local workers.

    The same contract as :func:`repro.benchsuite.sweep.run_cells` — rows in
    sweep order, ``pass_totals`` merged, :class:`BenchmarkError` when a
    cell exhausts its attempts — with the cells travelling over TCP, so
    externally connected ``descendc sweep-worker`` processes steal work
    alongside the local ones.  Dead workers are respawned (bounded by the
    retry budget) and their in-flight cells requeued with an advanced
    fault epoch.
    """
    from repro.benchsuite.sweep import MAX_JOBS

    jobs = max(1, min(int(jobs), MAX_JOBS, len(cells) or 1))
    coordinator = SweepCoordinator(
        cells,
        store_url=store_url,
        max_attempts=max_attempts,
        progress=progress,
        pass_totals=pass_totals,
    )
    coordinator.start()
    workers: List[subprocess.Popen] = []
    # A worker that exits nonzero before the sweep is over gets replaced,
    # but only so many times: every legitimate respawn consumes one retry
    # of some cell, so the attempt budget bounds the respawn budget too.
    respawn_budget = coordinator.max_attempts * max(1, len(cells))
    try:
        workers = [_spawn_worker(coordinator.address, store_url) for _ in range(jobs)]
        while not coordinator.wait(SUPERVISE_POLL_S):
            for slot, proc in enumerate(workers):
                code = proc.poll()
                if code is None or coordinator.finished:
                    continue
                if respawn_budget <= 0:
                    continue  # let the attempt bound produce the loud failure
                respawn_budget -= 1
                if progress is not None:
                    progress(f"sweep worker exited with code {code}; respawning")
                workers[slot] = _spawn_worker(coordinator.address, store_url)
            if (
                respawn_budget <= 0
                and not coordinator.finished
                and all(proc.poll() is not None for proc in workers)
            ):
                # Workers that keep dying before ever holding a cell never
                # advance an attempt counter; fail loudly instead of waiting
                # for a completion that cannot come.
                raise BenchmarkError(
                    "every sweep worker exited and the respawn budget is spent; "
                    "check the workers' stderr (store unreachable?)"
                )
        return coordinator.result()
    finally:
        coordinator.close()
        for proc in workers:
            if proc.poll() is None:
                with contextlib.suppress(OSError):
                    proc.terminate()
        for proc in workers:
            with contextlib.suppress(Exception):
                proc.wait(timeout=5.0)
