"""Load benchmark of the compile-service daemon: ``descendc bench --serve``.

The daemon's value proposition is amortization: one hot, store-attached
compile session serving a fleet of short-lived clients, so that only the
*first* compile of a program anywhere on the machine pays the compute
passes.  This benchmark quantifies that with two phases against the same
persistent artifact store:

* **cold** — a fresh store and a fresh daemon session: the first request
  per program runs the full pipeline, every repeat is a memory-tier hit;
* **warm** — a *new* daemon process-equivalent (fresh session, same store):
  every program is answered from the store tier; the phase fails with
  :class:`~repro.errors.BenchmarkError` if any response reports a
  ``compute``-tier pass — the zero-compute acceptance criterion.

Each phase drives the daemon over its real unix socket with concurrent
:class:`~repro.descend.api.DescendClient` threads cycling through the five
Figure 8 programs, and records throughput (requests/s) and latency
percentiles (p50/p99).  ``descendc bench --serve`` writes
``BENCH_serve_throughput.json`` (uploaded by the CI bench-smoke job).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchsuite.compilebench import PROGRAMS
from repro.benchsuite.report import format_table
from repro.descend.api import DescendClient, LocalBackend, Response
from repro.descend.ast.printer import print_program
from repro.descend.serve import ServeConfig, ServerThread
from repro.errors import BenchmarkError

#: Per-phase request total (and its CI smoke shrink).
DEFAULT_REQUESTS = 200
QUICK_REQUESTS = 60
DEFAULT_CLIENTS = 4


@dataclass
class ServePhaseRow:
    """One phase of the load run: throughput, latency, pass-tier mix."""

    phase: str
    requests: int
    clients: int
    errors: int
    wall_s: float
    latencies_ms: List[float] = field(default_factory=list)
    #: ``{pass: {tier: count}}`` summed over every response of the phase.
    pass_tiers: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else float("inf")

    def percentile_ms(self, fraction: float) -> float:
        if not self.latencies_ms:
            return float("nan")
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def compute_passes(self) -> int:
        return sum(tiers.get("compute", 0) for tiers in self.pass_tiers.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "requests": self.requests,
            "clients": self.clients,
            "errors": self.errors,
            "wall_s": self.wall_s,
            "rps": self.rps,
            "p50_ms": self.percentile_ms(0.50),
            "p99_ms": self.percentile_ms(0.99),
            "compute_passes": self.compute_passes,
            "pass_tiers": self.pass_tiers,
        }


@dataclass
class ServeBenchResult:
    rows: List[ServePhaseRow] = field(default_factory=list)
    kind: str = "serve-throughput-bench"

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "phases": [row.as_dict() for row in self.rows],
            "warm_compute_passes": sum(
                row.compute_passes for row in self.rows if row.phase == "warm"
            ),
        }

    def to_table(self) -> str:
        table = format_table(
            ["phase", "requests", "clients", "wall", "req/s", "p50", "p99", "compute passes"],
            [
                (
                    row.phase,
                    row.requests,
                    row.clients,
                    f"{row.wall_s:.2f} s",
                    f"{row.rps:.0f}",
                    f"{row.percentile_ms(0.50):.2f} ms",
                    f"{row.percentile_ms(0.99):.2f} ms",
                    row.compute_passes,
                )
                for row in self.rows
            ],
        )
        return table + "\n\nwarm phase answered every compile without a compute-tier pass"


def _merge_tiers(into: Dict[str, Dict[str, int]], response: Response) -> None:
    for pass_name, tiers in response.pass_tiers.items():
        bucket = into.setdefault(pass_name, {})
        for tier, count in tiers.items():
            bucket[tier] = bucket.get(tier, 0) + count


def _phase_sources() -> List[Tuple[str, str]]:
    return [(name, print_program(build())) for name, build in PROGRAMS.items()]


def run_phase(
    phase: str,
    store_path: str,
    socket_path: str,
    requests: int,
    clients: int,
) -> ServePhaseRow:
    """Drive one daemon over its socket with ``clients`` concurrent threads.

    A fresh :class:`LocalBackend` per phase models a freshly started daemon
    process; sharing ``store_path`` across phases is what makes the second
    phase warm.
    """
    backend = LocalBackend(label=f"serve-{phase}")
    config = ServeConfig(socket_path=socket_path, store_path=store_path)
    sources = _phase_sources()
    row = ServePhaseRow(
        phase=phase, requests=requests, clients=clients, errors=0, wall_s=0.0
    )
    lock = threading.Lock()
    failures: List[str] = []

    def worker(worker_index: int) -> None:
        client = DescendClient(socket_path)
        latencies: List[float] = []
        responses: List[Response] = []
        try:
            with client:
                for i in range(worker_index, requests, clients):
                    name, text = sources[i % len(sources)]
                    start = time.perf_counter()
                    response = client.compile(source=text, name=f"{name}.descend")
                    latencies.append((time.perf_counter() - start) * 1e3)
                    responses.append(response)
        except Exception as exc:  # noqa: BLE001 - reported as a phase failure
            with lock:
                failures.append(f"client {worker_index}: {exc}")
            return
        with lock:
            row.latencies_ms.extend(latencies)
            for response in responses:
                if not response.ok:
                    row.errors += 1
                    failures.append(
                        f"client {worker_index}: {response.error_code}: "
                        f"{response.error_message}"
                    )
                _merge_tiers(row.pass_tiers, response)

    with ServerThread(backend, config):
        with DescendClient(socket_path) as probe:
            if not probe.wait_until_ready():
                raise BenchmarkError(f"{phase}: daemon did not become ready")
        started = time.perf_counter()
        threads = [
            threading.Thread(target=worker, args=(k,), name=f"serve-bench-{phase}-{k}")
            for k in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        row.wall_s = time.perf_counter() - started
    if failures:
        raise BenchmarkError(f"{phase}: {failures[0]} ({len(failures)} failures)")
    if len(row.latencies_ms) != requests:
        raise BenchmarkError(
            f"{phase}: expected {requests} responses, got {len(row.latencies_ms)}"
        )
    return row


def run_serve_bench(
    requests: int = DEFAULT_REQUESTS,
    clients: int = DEFAULT_CLIENTS,
    progress=None,
) -> ServeBenchResult:
    result = ServeBenchResult()
    with tempfile.TemporaryDirectory(prefix="descend-servebench-") as tmp:
        store_path = f"{tmp}/store"
        for phase in ("cold", "warm"):
            if progress is not None:
                progress(
                    f"{phase}: {requests} requests over {clients} clients "
                    f"({len(PROGRAMS)} programs) ..."
                )
            row = run_phase(
                phase, store_path, f"{tmp}/{phase}.sock", requests, clients
            )
            if phase == "warm" and row.compute_passes:
                raise BenchmarkError(
                    f"warm daemon ran {row.compute_passes} compute-tier passes; "
                    f"expected all requests served from the artifact store "
                    f"(tiers: {row.pass_tiers})"
                )
            result.rows.append(row)
    return result


def write_report(result: ServeBenchResult, path: str, quick: bool = False) -> Dict[str, object]:
    """Write the JSON report CI uploads as a bench-smoke artifact."""
    payload = dict(result.as_dict())
    payload["quick"] = quick
    payload["created_unix"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Load-test the compile-service daemon (cold vs warm store)"
    )
    parser.add_argument("--requests", type=int, default=None, help="requests per phase")
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--quick", action="store_true", help="smaller run (CI smoke)")
    parser.add_argument("--output", default="BENCH_serve_throughput.json")
    parser.add_argument("--json", action="store_true", help="print the JSON payload to stdout")
    args = parser.parse_args(argv)

    requests = args.requests
    if requests is None:
        requests = QUICK_REQUESTS if args.quick else DEFAULT_REQUESTS
    progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    try:
        result = run_serve_bench(
            requests=requests, clients=max(1, args.clients), progress=progress
        )
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        payload = write_report(result, args.output, quick=args.quick)
    except OSError as exc:
        print(f"error: cannot write report to {args.output!r}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.to_table())
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
