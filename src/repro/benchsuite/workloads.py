"""Benchmark and workload definitions for the Figure 8 reproduction.

The paper runs four benchmarks (block-wide reduction, matrix transposition,
scan, matrix multiplication) at three memory footprints (256 MB, 512 MB and
1 GB of GPU memory).  The pure-Python simulator interprets every thread, so
the default footprints here are scaled down; the *relative* runtimes that
Figure 8 reports are footprint-independent under the simulator's cost model
(EXPERIMENTS.md records the scaling).  Set the environment variable
``REPRO_SCALE`` to an integer factor to enlarge every workload.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import BenchmarkError

#: The four benchmarks of Figure 8.
BENCHMARKS: Tuple[str, ...] = ("reduce", "transpose", "scan", "matmul")

#: The three footprint sizes of Figure 8.
SIZES: Tuple[str, ...] = ("small", "medium", "large")


def scale_factor(scale: Optional[int] = None) -> int:
    """Resolve the workload scale factor.

    An explicit ``scale`` (the ``--scale`` CLI flag, threaded through the
    harness without mutating the environment) wins; otherwise the
    ``REPRO_SCALE`` environment variable applies; invalid values fall back
    to 1.
    """
    if scale is not None:
        try:
            return max(1, int(scale))
        except (TypeError, ValueError):
            return 1
    try:
        value = int(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1
    return max(1, value)


@dataclass(frozen=True)
class Workload:
    """One benchmark instance: the parameters shared by both implementations."""

    benchmark: str
    size: str
    params: Dict[str, int] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.benchmark}/{self.size}"

    def footprint_elements(self) -> int:
        """Number of f64 elements of the main data structure (for reporting)."""
        params = self.params
        if self.benchmark in ("reduce", "scan"):
            return params["n"]
        if self.benchmark == "transpose":
            return params["n"] * params["n"]
        if self.benchmark == "matmul":
            return params["m"] * params["k"] + params["k"] * params["n"] + params["m"] * params["n"]
        if self.benchmark == "histogram":
            return params["n"] + params["bins"] * (params["num_blocks"] + 2)
        if self.benchmark == "stencil":
            return 2 * params["n"] + 2
        raise BenchmarkError(f"unknown benchmark {self.benchmark!r}")

    def footprint_bytes(self) -> int:
        return self.footprint_elements() * 8


# Baseline (scale = 1) parameters per benchmark and size.  They are chosen so
# that the full Figure 8 sweep (CUDA + Descend, 4 benchmarks x 3 sizes) runs
# in a couple of minutes under the pure-Python interpreter.
_BASE_PARAMS: Dict[str, Dict[str, Dict[str, int]]] = {
    "reduce": {
        "small": {"n": 4096, "block_size": 64},
        "medium": {"n": 8192, "block_size": 64},
        "large": {"n": 16384, "block_size": 64},
    },
    "transpose": {
        "small": {"n": 32, "tile": 16, "rows": 4},
        "medium": {"n": 64, "tile": 16, "rows": 4},
        "large": {"n": 96, "tile": 16, "rows": 4},
    },
    "scan": {
        "small": {"n": 2048, "block_size": 32, "elems_per_thread": 4},
        "medium": {"n": 4096, "block_size": 32, "elems_per_thread": 4},
        "large": {"n": 8192, "block_size": 32, "elems_per_thread": 4},
    },
    "matmul": {
        "small": {"m": 16, "k": 16, "n": 16, "tile": 8},
        "medium": {"m": 24, "k": 24, "n": 24, "tile": 8},
        "large": {"m": 32, "k": 32, "n": 32, "tile": 8},
    },
    # The two PR 9 workloads ride outside the Figure 8 BENCHMARKS tuple (the
    # golden rows of the paper's sweep stay untouched); the Descend engine
    # benchmark picks them up via its own DESCEND_BENCHMARKS list.
    "histogram": {
        "small": {"n": 1024, "bins": 16, "num_blocks": 8},
        "medium": {"n": 2048, "bins": 16, "num_blocks": 8},
        "large": {"n": 4096, "bins": 16, "num_blocks": 8},
    },
    "stencil": {
        "small": {"n": 4096, "block_size": 64},
        "medium": {"n": 8192, "block_size": 64},
        "large": {"n": 16384, "block_size": 64},
    },
}


def workload(benchmark: str, size: str, scale: Optional[int] = None) -> Workload:
    """Build the workload for one benchmark at one size (with scaling applied).

    ``scale`` overrides the ``REPRO_SCALE`` environment variable for this
    workload only.
    """
    if benchmark not in _BASE_PARAMS:
        raise BenchmarkError(f"unknown benchmark {benchmark!r}; expected one of {BENCHMARKS}")
    if size not in _BASE_PARAMS[benchmark]:
        raise BenchmarkError(f"unknown size {size!r}; expected one of {SIZES}")
    params = dict(_BASE_PARAMS[benchmark][size])
    factor = scale_factor(scale)
    if factor > 1:
        if benchmark in ("reduce", "scan"):
            params["n"] *= factor
        elif benchmark == "transpose":
            params["n"] *= factor
        elif benchmark == "matmul":
            params["m"] *= factor
            params["k"] *= factor
            params["n"] *= factor
        elif benchmark in ("histogram", "stencil"):
            params["n"] *= factor
    return Workload(benchmark=benchmark, size=size, params=params)


def all_workloads(scale: Optional[int] = None) -> Tuple[Workload, ...]:
    """Every benchmark/size combination of Figure 8."""
    return tuple(workload(benchmark, size, scale=scale) for benchmark in BENCHMARKS for size in SIZES)
