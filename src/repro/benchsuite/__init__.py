"""The evaluation harness: regenerates Figure 8 and the ablations of DESIGN.md.

* :mod:`repro.benchsuite.workloads` — benchmark/size definitions (small,
  medium, large — scaled-down versions of the paper's 256 MB / 512 MB / 1 GB
  footprints, configurable through ``REPRO_SCALE``),
* :mod:`repro.benchsuite.runner` — runs one benchmark in its CUDA-lite
  (handwritten) and Descend (generated) variants and verifies both results,
* :mod:`repro.benchsuite.figure8` — the Figure 8 table: relative median
  runtimes of CUDA vs Descend per benchmark and size, plus the mean,
* :mod:`repro.benchsuite.report` — plain-text table formatting,
* :mod:`repro.benchsuite.ablation` — additional studies (coalescing, type
  checking cost),
* :mod:`repro.benchsuite.enginebench` — reference vs vectorized engine
  comparison: cycle-count parity plus wall-clock speedup (``BENCH_*.json``).
"""

from repro.benchsuite.enginebench import EngineBenchResult, compare_engines, run_engine_bench
from repro.benchsuite.runner import BenchmarkRun, run_benchmark_pair
from repro.benchsuite.workloads import BENCHMARKS, SIZES, Workload, workload

__all__ = [
    "BenchmarkRun",
    "EngineBenchResult",
    "compare_engines",
    "run_benchmark_pair",
    "run_engine_bench",
    "Workload",
    "workload",
    "BENCHMARKS",
    "SIZES",
]
