"""Multi-process sweep orchestrator for the engine benchmarks.

A benchsuite sweep is a list of independent cells — one ``(variant,
benchmark, size, scale)`` workload measured on both execution engines.
Serial execution (:mod:`repro.benchsuite.enginebench`) is the default and
the parity oracle; this module shards the same cells across worker
processes when wall-clock matters more than simplicity (full descend
sweeps, CI regeneration, `repro.cli bench --jobs N`).

Guarantees relative to the serial sweep:

* **Same rows, same order.**  Workers return rows tagged with their cell
  index; the orchestrator re-assembles them in sweep order, so the merged
  ``BENCH_*.json`` is byte-identical to the serial report modulo the
  timing fields (wall-clock, speedup, ``created_unix``) and the
  ``retries`` column.  Cycle counts, race counts, parity verdicts,
  footprints and budget-skip decisions are all deterministic and
  process-independent.
* **Shared warmth.**  Every worker attaches the same persistent
  :class:`~repro.descend.store.ArtifactStore` (when one is configured), so
  shard N does not re-typecheck the programs shard M already compiled —
  the store is the cross-process analogue of the sweep-wide
  :class:`~repro.descend.driver.CompileSession`.
* **Retry, then fail loud.**  A cell that fails in a worker — an
  exception returned as data, or a worker process dying outright (the
  pool turns that into ``BrokenProcessPool``) — is retried on a fresh
  worker in the next round, up to :data:`DEFAULT_MAX_ATTEMPTS` total
  attempts; a surviving row records how many retries it cost in its
  ``retries`` column.  Only a cell that fails *every* attempt aborts the
  sweep with a :class:`BenchmarkError` naming the cell — a parity
  violation or wrong result is still loud, a flaky worker is not fatal.

Workers are ``spawn``-ed, not forked: each starts from a cold interpreter
so the "warming from the shared store" path is the one actually exercised,
and no lock or session state is inherited mid-flight.  The worker-spawn
and cell-execution seams carry :mod:`repro.faults` injection points
(``sweep.spawn`` / ``sweep.cell``); each retry round advances
``REPRO_FAULTS_EPOCH`` before building its pool, so injected worker
failures are deterministic per round and chaos runs replay exactly.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence

from repro import faults
from repro.errors import BenchmarkError

#: Hard cap on worker processes; sweeps have at most a few dozen cells.
MAX_JOBS = 32

#: Total tries per cell (1 first run + retries) before the sweep aborts.
DEFAULT_MAX_ATTEMPTS = 3


def default_max_attempts() -> int:
    """Per-cell attempt bound: ``REPRO_SWEEP_ATTEMPTS`` or the default."""
    try:
        return max(1, int(os.environ.get("REPRO_SWEEP_ATTEMPTS", DEFAULT_MAX_ATTEMPTS)))
    except ValueError:
        return DEFAULT_MAX_ATTEMPTS


def merge_pass_totals(
    totals: Dict[str, Dict[str, int]], delta: Dict[str, Dict[str, int]]
) -> None:
    """Accumulate one cell's pass summary into the sweep-wide totals."""
    for name, tiers in delta.items():
        bucket = totals.setdefault(name, {})
        for tier, count in tiers.items():
            bucket[tier] = bucket.get(tier, 0) + count


def _worker_init(store_path: Optional[str]) -> None:
    """Per-worker process setup: a fresh session warmed by the shared store."""
    faults.maybe_raise("sweep.spawn")
    from repro.descend.driver import CompileSession, set_active_session

    session = CompileSession(label=f"sweep-worker-{os.getpid()}")
    if store_path:
        from repro.descend.store import ArtifactStore

        try:
            session.attach_store(ArtifactStore(store_path))
        except OSError:
            pass  # an unusable store only costs warmth, never the sweep
    set_active_session(session)


def _run_cell(cell: Dict[str, object]):
    """Measure one sweep cell; returns ``(index, row, error, passes)``.

    ``passes`` is the cell's compile-pass summary from the worker's session
    (:meth:`~repro.descend.driver.CompileSession.pass_counts_since`) — how
    the orchestrator proves that warm-store workers deserialized plans
    instead of re-lowering them.
    """
    from repro.benchsuite.enginebench import compare_engines
    from repro.descend.driver import active_session

    session = active_session()
    mark = session.pass_counts_snapshot()
    try:
        faults.maybe_raise("sweep.cell")
        row = compare_engines(
            str(cell["benchmark"]),
            str(cell["size"]),
            repeats=int(cell["repeats"]),  # type: ignore[arg-type]
            variant=str(cell["variant"]),
            scale=cell["scale"],  # type: ignore[arg-type]
            budget_s=cell["budget_s"],  # type: ignore[arg-type]
            device_s_per_cycle=cell.get("device_s_per_cycle"),  # type: ignore[arg-type]
        )
        return cell["index"], row, None, session.pass_counts_since(mark)
    except Exception as exc:  # propagate as data: tracebacks don't cross Pool cleanly
        return cell["index"], None, f"{type(exc).__name__}: {exc}", None


def _cell_label(cell: Dict[str, object]) -> str:
    return (
        f"{cell['variant']}:{cell['benchmark']}/{cell['size']} (scale {cell['scale']})"
    )


def run_cells(
    cells: Sequence[Dict[str, object]],
    jobs: int,
    store_path: Optional[str] = None,
    progress=None,
    pass_totals: Optional[Dict[str, Dict[str, int]]] = None,
    max_attempts: Optional[int] = None,
) -> List[object]:
    """Run sweep cells across ``jobs`` worker processes; rows in sweep order.

    Each cell dict carries ``index``, ``variant``, ``benchmark``, ``size``,
    ``scale``, ``repeats`` and ``budget_s`` (see :func:`_run_cell`).  When
    ``pass_totals`` is given, every worker's compile-pass summary is merged
    into it (the ``compile_passes`` field of the bench report).

    Failed cells are retried on a fresh pool in later rounds, up to
    ``max_attempts`` tries per cell (default :func:`default_max_attempts`);
    each surviving row's ``retries`` attribute records its failed tries.
    """
    jobs = max(1, min(int(jobs), MAX_JOBS, len(cells) or 1))
    if max_attempts is None:
        max_attempts = default_max_attempts()
    context = multiprocessing.get_context("spawn")
    total = len(cells)
    rows: Dict[int, object] = {}
    remaining: Dict[int, Dict[str, object]] = {
        int(cell["index"]): cell for cell in cells  # type: ignore[arg-type]
    }
    attempts: Dict[int, int] = {index: 0 for index in remaining}
    round_no = 0
    while remaining:
        # Advance the fault epoch per retry round *before* the pool exists:
        # spawned workers inherit it, so "fail in round 0, heal in round 1"
        # chaos plans are expressible and deterministic (worker-local hit
        # counters restart with every spawned process).
        epoch_before = os.environ.get(faults.ENV_EPOCH)
        os.environ[faults.ENV_EPOCH] = str(round_no)
        failed: Dict[int, str] = {}
        try:
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(remaining)),
                mp_context=context,
                initializer=_worker_init,
                initargs=(store_path,),
            ) as pool:
                futures = {
                    pool.submit(_run_cell, cell): index
                    for index, cell in remaining.items()
                }
                for future in as_completed(futures):
                    submitted_index = futures[future]
                    try:
                        index, row, error, passes = future.result()
                    except Exception as exc:  # noqa: BLE001 - a worker died hard
                        # BrokenProcessPool (worker crash, spawn failure) or a
                        # result that would not unpickle: retryable, like any
                        # in-worker error.
                        failed[submitted_index] = f"{type(exc).__name__}: {exc}"
                        continue
                    if error is not None:
                        failed[int(index)] = str(error)
                        continue
                    index = int(index)
                    row.retries = attempts[index]
                    rows[index] = row
                    del remaining[index]
                    if pass_totals is not None and passes:
                        merge_pass_totals(pass_totals, passes)
                    if progress is not None:
                        progress(
                            f"[{len(rows)}/{total}] merged "
                            f"{getattr(row, 'benchmark', '?')}/{getattr(row, 'size', '?')}"
                            f" (scale {getattr(row, 'scale', '?')})"
                        )
        finally:
            if epoch_before is None:
                os.environ.pop(faults.ENV_EPOCH, None)
            else:
                os.environ[faults.ENV_EPOCH] = epoch_before
        for index, error in failed.items():
            attempts[index] += 1
            if attempts[index] >= max_attempts:
                raise BenchmarkError(
                    f"sweep cell {_cell_label(remaining[index])} failed in a worker "
                    f"after {attempts[index]} attempt(s): {error}"
                )
            if progress is not None:
                progress(
                    f"retrying {_cell_label(remaining[index])} "
                    f"(attempt {attempts[index] + 1}/{max_attempts}): {error}"
                )
        round_no += 1
    return [rows[index] for index in sorted(rows)]


def make_cells(
    variant: str,
    specs: Sequence[tuple],
    repeats: int,
    budget_s: Optional[float],
    device_s_per_cycle: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Cell dicts for ``specs`` of ``(benchmark, size, scale)`` triples.

    ``device_s_per_cycle`` threads the emulated device-execution wait of
    :func:`~repro.benchsuite.enginebench.compare_engines` through to the
    workers (the sweep-scaling benchmark's device-bound regime); the
    default leaves the cells pure measurement.
    """
    return [
        {
            "index": index,
            "variant": variant,
            "benchmark": benchmark,
            "size": size,
            "scale": scale,
            "repeats": repeats,
            "budget_s": budget_s,
            "device_s_per_cycle": device_s_per_cycle,
        }
        for index, (benchmark, size, scale) in enumerate(specs)
    ]
