"""Multi-process sweep orchestrator for the engine benchmarks.

A benchsuite sweep is a list of independent cells — one ``(variant,
benchmark, size, scale)`` workload measured on both execution engines.
Serial execution (:mod:`repro.benchsuite.enginebench`) is the default and
the parity oracle; this module shards the same cells across worker
processes when wall-clock matters more than simplicity (full descend
sweeps, CI regeneration, `repro.cli bench --jobs N`).

Guarantees relative to the serial sweep:

* **Same rows, same order.**  Workers return rows tagged with their cell
  index; the orchestrator re-assembles them in sweep order, so the merged
  ``BENCH_*.json`` is byte-identical to the serial report modulo the
  timing fields (wall-clock, speedup, ``created_unix``).  Cycle counts,
  race counts, parity verdicts, footprints and budget-skip decisions are
  all deterministic and process-independent.
* **Shared warmth.**  Every worker attaches the same persistent
  :class:`~repro.descend.store.ArtifactStore` (when one is configured), so
  shard N does not re-typecheck the programs shard M already compiled —
  the store is the cross-process analogue of the sweep-wide
  :class:`~repro.descend.driver.CompileSession`.
* **Fail loud.**  A cell that raises in a worker (parity violation, wrong
  result, crash) aborts the whole sweep with a :class:`BenchmarkError`
  naming the cell, exactly like the serial path.

Workers are ``spawn``-ed, not forked: each starts from a cold interpreter
so the "warming from the shared store" path is the one actually exercised,
and no lock or session state is inherited mid-flight.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Sequence

from repro.errors import BenchmarkError

#: Hard cap on worker processes; sweeps have at most a few dozen cells.
MAX_JOBS = 32


def merge_pass_totals(
    totals: Dict[str, Dict[str, int]], delta: Dict[str, Dict[str, int]]
) -> None:
    """Accumulate one cell's pass summary into the sweep-wide totals."""
    for name, tiers in delta.items():
        bucket = totals.setdefault(name, {})
        for tier, count in tiers.items():
            bucket[tier] = bucket.get(tier, 0) + count


def _worker_init(store_path: Optional[str]) -> None:
    """Per-worker process setup: a fresh session warmed by the shared store."""
    from repro.descend.driver import CompileSession, set_active_session

    session = CompileSession(label=f"sweep-worker-{os.getpid()}")
    if store_path:
        from repro.descend.store import ArtifactStore

        try:
            session.attach_store(ArtifactStore(store_path))
        except OSError:
            pass  # an unusable store only costs warmth, never the sweep
    set_active_session(session)


def _run_cell(cell: Dict[str, object]):
    """Measure one sweep cell; returns ``(index, row, error, passes)``.

    ``passes`` is the cell's compile-pass summary from the worker's session
    (:meth:`~repro.descend.driver.CompileSession.pass_counts_since`) — how
    the orchestrator proves that warm-store workers deserialized plans
    instead of re-lowering them.
    """
    from repro.benchsuite.enginebench import compare_engines
    from repro.descend.driver import active_session

    session = active_session()
    mark = session.pass_counts_snapshot()
    try:
        row = compare_engines(
            str(cell["benchmark"]),
            str(cell["size"]),
            repeats=int(cell["repeats"]),  # type: ignore[arg-type]
            variant=str(cell["variant"]),
            scale=cell["scale"],  # type: ignore[arg-type]
            budget_s=cell["budget_s"],  # type: ignore[arg-type]
        )
        return cell["index"], row, None, session.pass_counts_since(mark)
    except Exception as exc:  # propagate as data: tracebacks don't cross Pool cleanly
        return cell["index"], None, f"{type(exc).__name__}: {exc}", None


def run_cells(
    cells: Sequence[Dict[str, object]],
    jobs: int,
    store_path: Optional[str] = None,
    progress=None,
    pass_totals: Optional[Dict[str, Dict[str, int]]] = None,
) -> List[object]:
    """Run sweep cells across ``jobs`` worker processes; rows in sweep order.

    Each cell dict carries ``index``, ``variant``, ``benchmark``, ``size``,
    ``scale``, ``repeats`` and ``budget_s`` (see :func:`_run_cell`).  When
    ``pass_totals`` is given, every worker's compile-pass summary is merged
    into it (the ``compile_passes`` field of the bench report).
    """
    jobs = max(1, min(int(jobs), MAX_JOBS, len(cells) or 1))
    context = multiprocessing.get_context("spawn")
    rows: Dict[int, object] = {}
    with context.Pool(
        processes=jobs, initializer=_worker_init, initargs=(store_path,)
    ) as pool:
        for index, row, error, passes in pool.imap_unordered(_run_cell, cells, chunksize=1):
            if error is not None:
                cell = next(c for c in cells if c["index"] == index)
                pool.terminate()
                raise BenchmarkError(
                    f"sweep cell {cell['variant']}:{cell['benchmark']}/{cell['size']}"
                    f" (scale {cell['scale']}) failed in a worker: {error}"
                )
            rows[int(index)] = row  # type: ignore[arg-type]
            if pass_totals is not None and passes:
                merge_pass_totals(pass_totals, passes)
            if progress is not None:
                progress(
                    f"[{len(rows)}/{len(cells)}] merged "
                    f"{getattr(row, 'benchmark', '?')}/{getattr(row, 'size', '?')}"
                    f" (scale {getattr(row, 'scale', '?')})"
                )
    return [rows[index] for index in sorted(rows)]


def make_cells(
    variant: str,
    specs: Sequence[tuple],
    repeats: int,
    budget_s: Optional[float],
) -> List[Dict[str, object]]:
    """Cell dicts for ``specs`` of ``(benchmark, size, scale)`` triples."""
    return [
        {
            "index": index,
            "variant": variant,
            "benchmark": benchmark,
            "size": size,
            "scale": scale,
            "repeats": repeats,
            "budget_s": budget_s,
        }
        for index, (benchmark, size, scale) in enumerate(specs)
    ]
