"""Scaling benchmark of the distributed sweep: ``BENCH_sweep_scaling.json``.

The dispatcher's value proposition is wall-clock: once the shared store is
warm, a bench sweep is pure measurement work, and pull-based work stealing
should spread it across worker processes with near-linear speedup.  This
benchmark quantifies that against one daemon-style HTTP store endpoint:

* **cold** — one worker fills the store: the first compile of every
  program pays the compute passes, persisted over the HTTP protocol;
* **warm xN** — the same cells dispatched to 1, 2 and 4 workers against
  the now-warm store.  Every warm phase must report *zero* compute-tier
  passes (the fleet-wide zero-compute acceptance criterion), its rows
  must agree with every other warm phase on all stable columns (the
  serial-parity oracle, transitively), and the headline number is
  ``speedup_4w = wall(1 worker) / wall(4 workers)``.

The cells are *device-bound* (:data:`DEVICE_S_PER_CYCLE`,
:data:`SCALING_BUDGET_S`): each engine run waits out its kernels'
simulated execution time, and the CPU-heavy reference-interpreter column
is budget-skipped.  That is the dispatcher's target regime — workers
overlap their devices' execution — and it keeps the ladder meaningful on
small hosts, where contending simulator CPU (a shared resource) would
otherwise drown the overlap.  Both parameters land in the JSON payload.

Wall time includes worker spawn: the claim is end-to-end sweep latency,
not per-cell throughput.  ``descendc bench`` does not front this module
(it is a meta-benchmark of the dispatcher, not of the engines); CI runs it
directly via ``python -m repro.benchsuite.sweepbench --quick``.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.benchsuite.report import format_table
from repro.descend.api import LocalBackend
from repro.descend.serve import ServeConfig, ServerThread
from repro.errors import BenchmarkError

#: Worker counts of the scaling ladder (the cold fill always uses one).
WORKER_LADDER = (1, 2, 4)

#: Default cell set: every Descend benchmark at small x scales 1 and 2 —
#: twelve cells of comparable weight, enough measurement work to amortize
#: worker spawn without pushing the run past a few minutes.
DEFAULT_SCALES = (1, 2)
QUICK_SCALES = (1,)

#: The scaling cells are *device-bound*: after measuring, each engine run
#: waits out its kernels' simulated execution time at this clock (the
#: simulator counts cycles instead of occupying a GPU, so the wait is
#: emulated — see ``compare_engines(device_s_per_cycle=...)``).  That is
#: the regime the dispatcher exists for: a host's workers overlap their
#: devices' execution, so the sweep scales even where raw simulator CPU
#: (a shared resource) would not.  The row columns are latency-free; only
#: sweep wall-clock stretches.
DEVICE_S_PER_CYCLE = 100e-6

#: The reference interpreter is the sweep's CPU hog (seconds per cell of
#: pure simulator time); the scaling cells skip its column via the budget
#: guard so dispatch overlap, not interpreter contention, is what the
#: ladder measures.  ``0.0`` skips it on every row, deterministically.
SCALING_BUDGET_S = 0.0

#: Timing and identity columns excluded from the cross-phase parity check.
UNSTABLE_COLUMNS = frozenset(
    {
        "reference_wall_s",
        "vectorized_wall_s",
        "jit_wall_s",
        "speedup",
        "jit_speedup",
        "host",
        "retries",
    }
)


@dataclass
class SweepPhaseRow:
    """One dispatched sweep: worker count, wall clock, pass-tier mix."""

    phase: str
    workers: int
    cells: int
    wall_s: float
    hosts: int
    #: ``{pass: {tier: count}}`` summed over every cell of the phase.
    pass_tiers: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def compute_passes(self) -> int:
        return sum(tiers.get("compute", 0) for tiers in self.pass_tiers.values())

    @property
    def cells_per_s(self) -> float:
        return self.cells / self.wall_s if self.wall_s > 0 else float("inf")

    def as_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "workers": self.workers,
            "cells": self.cells,
            "wall_s": self.wall_s,
            "cells_per_s": self.cells_per_s,
            "hosts": self.hosts,
            "compute_passes": self.compute_passes,
        }


@dataclass
class SweepBenchResult:
    rows: List[SweepPhaseRow] = field(default_factory=list)
    kind: str = "sweep-scaling-bench"

    def warm_wall(self, workers: int) -> Optional[float]:
        for row in self.rows:
            if row.phase.startswith("warm") and row.workers == workers:
                return row.wall_s
        return None

    @property
    def speedup_4w(self) -> Optional[float]:
        base, wide = self.warm_wall(1), self.warm_wall(4)
        if base is None or wide is None or wide <= 0:
            return None
        return base / wide

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "phases": [row.as_dict() for row in self.rows],
            "speedup_4w": self.speedup_4w,
            "warm_compute_passes": sum(
                row.compute_passes for row in self.rows if row.phase.startswith("warm")
            ),
        }

    def to_table(self) -> str:
        table = format_table(
            ["phase", "workers", "cells", "wall", "cells/s", "hosts", "compute passes"],
            [
                (
                    row.phase,
                    row.workers,
                    row.cells,
                    f"{row.wall_s:.2f} s",
                    f"{row.cells_per_s:.2f}",
                    row.hosts,
                    row.compute_passes,
                )
                for row in self.rows
            ],
        )
        speedup = self.speedup_4w
        headline = (
            f"warm sweep speedup at 4 workers: {speedup:.2f}x"
            if speedup is not None
            else "warm sweep speedup at 4 workers: (not measured)"
        )
        return table + "\n\n" + headline


def _stable_rows(rows: Sequence[object]) -> List[Dict[str, object]]:
    return [
        {k: v for k, v in row.as_dict().items() if k not in UNSTABLE_COLUMNS}
        for row in rows
    ]


def _dispatch_phase(
    phase: str,
    cells: Sequence[Dict[str, object]],
    workers: int,
    store_url: str,
    progress=None,
) -> Tuple[SweepPhaseRow, List[object]]:
    from repro.benchsuite.dispatch import dispatch_cells

    pass_totals: Dict[str, Dict[str, int]] = {}
    started = time.perf_counter()
    rows = dispatch_cells(
        cells, workers, store_url=store_url, pass_totals=pass_totals
    )
    wall_s = time.perf_counter() - started
    hosts = len({getattr(row, "host", "") for row in rows})
    phase_row = SweepPhaseRow(
        phase=phase,
        workers=workers,
        cells=len(cells),
        wall_s=wall_s,
        hosts=hosts,
        pass_tiers=pass_totals,
    )
    if progress is not None:
        progress(
            f"{phase}: {len(cells)} cells over {workers} worker(s) in {wall_s:.2f}s "
            f"({phase_row.compute_passes} compute-tier passes)"
        )
    return phase_row, rows


def run_sweep_bench(
    scales: Sequence[int] = DEFAULT_SCALES,
    repeats: int = 1,
    ladder: Sequence[int] = WORKER_LADDER,
    progress=None,
) -> SweepBenchResult:
    from repro.benchsuite.enginebench import DESCEND_BENCHMARKS
    from repro.benchsuite.sweep import make_cells

    specs = [
        (benchmark, "small", scale)
        for scale in scales
        for benchmark in DESCEND_BENCHMARKS
    ]
    cells = make_cells(
        "descend", specs, repeats=repeats, budget_s=SCALING_BUDGET_S,
        device_s_per_cycle=DEVICE_S_PER_CYCLE,
    )
    result = SweepBenchResult()
    with tempfile.TemporaryDirectory(prefix="descend-sweepbench-") as tmp:
        config = ServeConfig(
            socket_path=f"{tmp}/serve.sock",
            store_path=f"{tmp}/store",
            store_http_port=0,
        )
        with ServerThread(LocalBackend(label="sweepbench"), config) as thread:
            store_url = thread.store_url
            assert store_url is not None
            if progress is not None:
                progress(f"store endpoint: {store_url} ({len(cells)} cells)")
            cold_row, _ = _dispatch_phase("cold", cells, 1, store_url, progress)
            result.rows.append(cold_row)
            if cold_row.compute_passes == 0:
                raise BenchmarkError(
                    "cold fill phase reported no compute-tier passes; the store "
                    "was not actually cold and the warm walls would be meaningless"
                )
            baseline: Optional[List[Dict[str, object]]] = None
            for workers in ladder:
                phase_row, rows = _dispatch_phase(
                    f"warm x{workers}", cells, workers, store_url, progress
                )
                if phase_row.compute_passes:
                    raise BenchmarkError(
                        f"warm sweep at {workers} worker(s) ran "
                        f"{phase_row.compute_passes} compute-tier passes; expected "
                        f"every compile served from the shared store "
                        f"(tiers: {phase_row.pass_tiers})"
                    )
                stable = _stable_rows(rows)
                if baseline is None:
                    baseline = stable
                elif stable != baseline:
                    raise BenchmarkError(
                        f"warm sweep at {workers} worker(s) disagrees with the "
                        f"1-worker rows on a stable column — dispatch broke the "
                        f"serial-parity oracle"
                    )
                result.rows.append(phase_row)
    return result


def write_report(result: SweepBenchResult, path: str, quick: bool = False) -> Dict[str, object]:
    """Write the JSON report CI uploads as a distributed-smoke artifact."""
    payload = dict(result.as_dict())
    payload["quick"] = quick
    payload["device_s_per_cycle"] = DEVICE_S_PER_CYCLE
    payload["budget_s"] = SCALING_BUDGET_S
    payload["created_unix"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Scaling benchmark of the distributed sweep dispatcher"
    )
    parser.add_argument(
        "--scales", nargs="*", type=int, default=None,
        help=f"workload scales of the cell set (default {DEFAULT_SCALES})",
    )
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--workers", nargs="*", type=int, default=None,
        help=f"worker counts of the scaling ladder (default {WORKER_LADDER})",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke subset: scales {QUICK_SCALES}",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, dest="min_speedup",
        help="fail unless the 4-worker warm speedup reaches this factor",
    )
    parser.add_argument("--output", default="BENCH_sweep_scaling.json")
    parser.add_argument("--json", action="store_true", help="print the JSON payload to stdout")
    args = parser.parse_args(argv)

    scales = args.scales
    if scales is None:
        scales = QUICK_SCALES if args.quick else DEFAULT_SCALES
    ladder = tuple(args.workers) if args.workers else WORKER_LADDER
    progress = lambda msg: print(msg, file=sys.stderr)  # noqa: E731
    try:
        result = run_sweep_bench(
            scales=scales, repeats=max(1, args.repeats), ladder=ladder,
            progress=progress,
        )
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    speedup = result.speedup_4w
    if (
        args.min_speedup is not None
        and (speedup is None or speedup < args.min_speedup)
    ):
        print(
            f"error: 4-worker warm speedup "
            f"{'n/a' if speedup is None else f'{speedup:.2f}x'} is below the "
            f"required {args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    try:
        payload = write_report(result, args.output, quick=args.quick)
    except OSError as exc:
        print(f"error: cannot write report to {args.output!r}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.to_table())
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
