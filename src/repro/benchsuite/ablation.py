"""Ablation studies (DESIGN.md experiments A1 and A2).

* **A1 — type-checking cost**: Descend's safety is purely static; this
  ablation measures how long the extended borrow checking takes per benchmark
  program (the paper claims "no significant runtime overhead", i.e. all cost
  is at compile time).
* **A2 — coalescing / tiling**: why the *tiled* transpose is the right
  baseline: the naive transpose (direct transposed global writes) pays one
  global-memory transaction per element on the strided side, which the cost
  model punishes exactly like real hardware does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.benchsuite.report import format_table
from repro.cudalite.kernels import transpose as cu_transpose
from repro.descend.typeck import check_program
from repro.descend_programs import matmul as d_matmul
from repro.descend_programs import reduce as d_reduce
from repro.descend_programs import scan as d_scan
from repro.descend_programs import transpose as d_transpose
from repro.descend_programs import vector as d_vector
from repro.gpusim import GpuDevice


@dataclass
class TypecheckTiming:
    """Wall-clock time for type checking one benchmark program."""

    program: str
    seconds: float
    functions: int


def typecheck_cost(repeats: int = 3) -> List[TypecheckTiming]:
    """A1: measure the type checker on every benchmark program."""
    builders = {
        "scale_vec": lambda: d_vector.build_scale_program(n=1024, block_size=64),
        "reduce": lambda: d_reduce.build_reduce_program(n=4096, block_size=64),
        "transpose": lambda: d_transpose.build_transpose_program(n=64, tile=16, rows=4),
        "scan": lambda: d_scan.build_scan_program(n=2048, block_size=32, elems_per_thread=4),
        "matmul": lambda: d_matmul.build_matmul_program(m=32, k=32, n=32, tile=8),
    }
    timings: List[TypecheckTiming] = []
    for name, builder in builders.items():
        program = builder()
        best = float("inf")
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            check_program(program)
            best = min(best, time.perf_counter() - start)
        timings.append(TypecheckTiming(program=name, seconds=best, functions=len(program.fun_defs)))
    return timings


@dataclass
class CoalescingResult:
    """A2: simulated cycles of the tiled vs the naive transpose."""

    matrix_size: int
    tiled_cycles: float
    naive_cycles: float
    tiled_transactions: int
    naive_transactions: int

    @property
    def speedup(self) -> float:
        if self.tiled_cycles == 0:
            return float("nan")
        return self.naive_cycles / self.tiled_cycles


def coalescing_ablation(matrix_size: int = 64, tile: int = 16, rows: int = 4) -> CoalescingResult:
    """A2: run the tiled and naive transposes and compare their costs."""
    rng = np.random.default_rng(7)
    data = rng.random((matrix_size, matrix_size))

    def run(kernel) -> tuple:
        device = GpuDevice()
        input_buf = device.to_device(data.reshape(-1))
        output_buf = device.malloc((matrix_size * matrix_size,), dtype=np.float64)
        launch = device.launch(
            kernel,
            grid_dim=(matrix_size // tile, matrix_size // tile),
            block_dim=(tile, rows),
            args=(input_buf, output_buf, matrix_size, tile),
        )
        assert np.allclose(device.to_host(output_buf).reshape(matrix_size, matrix_size), data.T)
        return launch.cycles, launch.cost.global_transactions

    tiled_cycles, tiled_tx = run(cu_transpose.transpose_kernel)
    naive_cycles, naive_tx = run(cu_transpose.naive_transpose_kernel)
    return CoalescingResult(
        matrix_size=matrix_size,
        tiled_cycles=tiled_cycles,
        naive_cycles=naive_cycles,
        tiled_transactions=tiled_tx,
        naive_transactions=naive_tx,
    )


def main() -> int:  # pragma: no cover - exercised via the CLI/benchmarks
    timings = typecheck_cost()
    print("A1: type-checking cost per benchmark program")
    print(
        format_table(
            ["program", "functions", "seconds"],
            [(t.program, t.functions, round(t.seconds, 4)) for t in timings],
        )
    )
    print()
    result = coalescing_ablation()
    print("A2: tiled vs naive transpose (coalescing)")
    print(
        format_table(
            ["matrix", "tiled cycles", "naive cycles", "naive/tiled", "tiled tx", "naive tx"],
            [
                (
                    result.matrix_size,
                    round(result.tiled_cycles, 1),
                    round(result.naive_cycles, 1),
                    round(result.speedup, 2),
                    result.tiled_transactions,
                    result.naive_transactions,
                )
            ],
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
