"""Figure 8: relative runtimes between handwritten CUDA and Descend.

Running ``python -m repro.benchsuite.figure8`` regenerates the figure's data:
for every benchmark (Reduce, Transpose, Scan, MM) and every footprint size
(small, medium, large) it reports the simulated kernel cycles of the
handwritten CUDA-lite implementation and of the Descend implementation, their
ratio, and the geometric mean over all cells (the "mean" bar of the figure).

The expected shape (which the tests assert) is the paper's result: Descend
performs the same memory accesses as the handwritten code, so the relative
runtime is ~1.0 for every benchmark and size.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.benchsuite.report import format_bytes, format_table
from repro.benchsuite.runner import BenchmarkRun, run_benchmark_pair
from repro.benchsuite.workloads import BENCHMARKS, SIZES, workload


@dataclass
class Figure8Row:
    """One bar pair of Figure 8."""

    benchmark: str
    size: str
    cuda_cycles: float
    descend_cycles: float
    relative: float
    footprint_bytes: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "size": self.size,
            "cuda_cycles": self.cuda_cycles,
            "descend_cycles": self.descend_cycles,
            "relative_runtime": self.relative,
            "footprint_bytes": self.footprint_bytes,
        }


@dataclass
class Figure8Result:
    """All rows of Figure 8 plus the mean."""

    rows: List[Figure8Row] = field(default_factory=list)

    @property
    def geometric_mean(self) -> float:
        ratios = [row.relative for row in self.rows if row.relative > 0]
        if not ratios:
            return float("nan")
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))

    def as_dict(self) -> Dict[str, object]:
        return {
            "rows": [row.as_dict() for row in self.rows],
            "geometric_mean_relative_runtime": self.geometric_mean,
        }

    def to_table(self) -> str:
        table = format_table(
            ["benchmark", "size", "footprint", "CUDA cycles", "Descend cycles", "Descend/CUDA"],
            [
                (
                    row.benchmark,
                    row.size,
                    format_bytes(row.footprint_bytes),
                    round(row.cuda_cycles, 1),
                    round(row.descend_cycles, 1),
                    row.relative,
                )
                for row in self.rows
            ],
        )
        return table + f"\n\ngeometric mean Descend/CUDA relative runtime: {self.geometric_mean:.3f}"


def run_figure8(
    benchmarks: Sequence[str] = BENCHMARKS,
    sizes: Sequence[str] = SIZES,
    repeats: int = 1,
    progress=None,
    engine: str = "reference",
    scale: Optional[int] = None,
) -> Figure8Result:
    """Run the Figure 8 sweep (optionally restricted to some benchmarks/sizes).

    ``engine`` picks the execution engine for both variants (CUDA-lite and
    Descend); the cycle counts (and therefore every number in the figure)
    are engine-independent, but ``"vectorized"`` regenerates the data much
    faster.  ``scale`` enlarges every workload footprint (equivalent to the
    ``REPRO_SCALE`` environment variable, without mutating the environment).
    """
    result = Figure8Result()
    for benchmark in benchmarks:
        for size in sizes:
            if progress is not None:
                progress(f"running {benchmark}/{size} ...")
            run = run_benchmark_pair(benchmark, size, repeats=repeats, engine=engine, scale=scale)
            result.rows.append(_row_from_run(run))
    return result


def _row_from_run(run: BenchmarkRun) -> Figure8Row:
    return Figure8Row(
        benchmark=run.workload.benchmark,
        size=run.workload.size,
        cuda_cycles=run.cuda.cycles,
        descend_cycles=run.descend.cycles,
        relative=run.relative_runtime,
        footprint_bytes=run.workload.footprint_bytes(),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Figure 8 of the Descend paper")
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCHMARKS), choices=list(BENCHMARKS))
    parser.add_argument("--sizes", nargs="*", default=list(SIZES), choices=list(SIZES))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--engine", default="reference", choices=("reference", "vectorized", "jit"),
        help="execution engine for both variants (cycle counts are identical; "
        "jit applies to the Descend side, the CUDA-lite side runs vectorized)",
    )
    parser.add_argument(
        "--scale", type=int, default=None,
        help="workload scale factor (overrides the REPRO_SCALE environment variable)",
    )
    parser.add_argument("--json", action="store_true", help="print machine-readable JSON")
    args = parser.parse_args(argv)

    result = run_figure8(
        benchmarks=args.benchmarks,
        sizes=args.sizes,
        repeats=args.repeats,
        progress=lambda msg: print(msg, file=sys.stderr),
        engine=args.engine,
        scale=args.scale,
    )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
    else:
        print(result.to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
