"""Plain-text report formatting for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a simple aligned text table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    separator = "  ".join("-" * width for width in widths)
    output = [line(list(headers)), separator]
    output.extend(line(row) for row in rendered_rows)
    return "\n".join(output)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_bytes(num_bytes: int) -> str:
    """Human readable byte counts (for workload footprints)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GiB"
