"""Engine benchmark: reference vs vectorized on the Figure 8 workloads.

Running ``python -m repro.cli bench`` (or ``python -m
repro.benchsuite.enginebench``) executes every selected Figure 8 workload
twice on the CUDA-lite kernels — once per execution engine — and reports

* the simulated kernel cycles of both engines (they must be *identical*;
  a mismatch aborts with :class:`BenchmarkError`, which is the regression
  gate CI relies on), and
* the wall-clock time of running the simulator itself, plus the resulting
  speedup of the vectorized engine.

The JSON report (``BENCH_*.json`` by default) is uploaded as a CI artifact
by the bench-smoke job so the speedup trajectory accumulates over time.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.benchsuite.report import format_bytes, format_table
from repro.benchsuite.runner import _CUDA_RUNNERS, _reference_and_data
from repro.benchsuite.workloads import BENCHMARKS, SIZES, Workload, workload
from repro.errors import BenchmarkError
from repro.gpusim import GpuDevice

#: Sizes benchmarked by default and by the CI smoke job (``--quick``).
DEFAULT_SIZES = ("small", "medium")
QUICK_SIZES = ("small",)


@dataclass
class EngineBenchRow:
    """One workload, both engines."""

    benchmark: str
    size: str
    reference_cycles: float
    vectorized_cycles: float
    reference_wall_s: float
    vectorized_wall_s: float
    footprint_bytes: int

    @property
    def cycles_match(self) -> bool:
        return self.reference_cycles == self.vectorized_cycles

    @property
    def speedup(self) -> float:
        if self.vectorized_wall_s == 0:
            return float("inf")
        return self.reference_wall_s / self.vectorized_wall_s

    def as_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "size": self.size,
            "reference_cycles": self.reference_cycles,
            "vectorized_cycles": self.vectorized_cycles,
            "cycles_match": self.cycles_match,
            "reference_wall_s": self.reference_wall_s,
            "vectorized_wall_s": self.vectorized_wall_s,
            "speedup": self.speedup,
            "footprint_bytes": self.footprint_bytes,
        }


@dataclass
class EngineBenchResult:
    """All benchmarked workloads plus the aggregates CI tracks."""

    rows: List[EngineBenchRow] = field(default_factory=list)

    @property
    def all_cycles_match(self) -> bool:
        return all(row.cycles_match for row in self.rows)

    @property
    def geometric_mean_speedup(self) -> float:
        speedups = [row.speedup for row in self.rows if row.speedup > 0]
        if not speedups:
            return float("nan")
        return math.exp(sum(math.log(s) for s in speedups) / len(speedups))

    @property
    def min_speedup(self) -> float:
        if not self.rows:
            return float("nan")
        return min(row.speedup for row in self.rows)

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "engine-bench",
            "workloads": [row.as_dict() for row in self.rows],
            "all_cycles_match": self.all_cycles_match,
            "geometric_mean_speedup": self.geometric_mean_speedup,
            "min_speedup": self.min_speedup,
        }

    def to_table(self) -> str:
        table = format_table(
            ["benchmark", "size", "footprint", "cycles", "parity", "ref wall", "vec wall", "speedup"],
            [
                (
                    row.benchmark,
                    row.size,
                    format_bytes(row.footprint_bytes),
                    round(row.reference_cycles, 1),
                    "==" if row.cycles_match else "MISMATCH",
                    f"{row.reference_wall_s * 1e3:.1f} ms",
                    f"{row.vectorized_wall_s * 1e3:.1f} ms",
                    f"{row.speedup:.1f}x",
                )
                for row in self.rows
            ],
        )
        return (
            table
            + f"\n\ngeometric mean speedup: {self.geometric_mean_speedup:.1f}x"
            + f" (min {self.min_speedup:.1f}x); cycle parity: "
            + ("exact for every workload" if self.all_cycles_match else "VIOLATED")
        )


def _time_variant(runner, workload_: Workload, data, reference, engine: str, repeats: int):
    """Best-of-``repeats`` wall-clock of simulating the workload on one engine."""
    best_wall = float("inf")
    cycles = float("nan")
    for _ in range(max(1, repeats)):
        device = GpuDevice(execution_mode=engine)
        start = time.perf_counter()
        cycles, result, races, _stats = runner(device, workload_.params, data)
        wall = time.perf_counter() - start
        best_wall = min(best_wall, wall)
        if races:
            raise BenchmarkError(
                f"{workload_.label} reported {races} data races under the {engine} engine"
            )
        if not np.allclose(result, reference):
            raise BenchmarkError(
                f"{workload_.label} produced a wrong result under the {engine} engine"
            )
    return cycles, best_wall


def compare_engines(benchmark: str, size: str, repeats: int = 1) -> EngineBenchRow:
    """Run one workload on both engines and check cycle-count parity."""
    workload_ = workload(benchmark, size)
    data, reference = _reference_and_data(workload_)
    runner = _CUDA_RUNNERS[benchmark]
    ref_cycles, ref_wall = _time_variant(runner, workload_, data, reference, "reference", repeats)
    vec_cycles, vec_wall = _time_variant(runner, workload_, data, reference, "vectorized", repeats)
    row = EngineBenchRow(
        benchmark=benchmark,
        size=size,
        reference_cycles=ref_cycles,
        vectorized_cycles=vec_cycles,
        reference_wall_s=ref_wall,
        vectorized_wall_s=vec_wall,
        footprint_bytes=workload_.footprint_bytes(),
    )
    if not row.cycles_match:
        raise BenchmarkError(
            f"cycle-count parity violated for {workload_.label}: "
            f"reference={ref_cycles} vectorized={vec_cycles}"
        )
    return row


def run_engine_bench(
    benchmarks: Sequence[str] = BENCHMARKS,
    sizes: Sequence[str] = DEFAULT_SIZES,
    repeats: int = 1,
    progress=None,
) -> EngineBenchResult:
    """Benchmark every selected workload on both engines."""
    result = EngineBenchResult()
    for benchmark in benchmarks:
        for size in sizes:
            if progress is not None:
                progress(f"benchmarking {benchmark}/{size} on both engines ...")
            result.rows.append(compare_engines(benchmark, size, repeats=repeats))
    return result


def write_report(result: EngineBenchResult, path: str, quick: bool = False) -> Dict[str, object]:
    """Write the JSON report CI uploads as the bench-smoke artifact."""
    payload = dict(result.as_dict())
    payload["quick"] = quick
    payload["created_unix"] = time.time()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the reference vs the vectorized execution engine"
    )
    parser.add_argument("--benchmarks", nargs="*", default=list(BENCHMARKS), choices=list(BENCHMARKS))
    parser.add_argument("--sizes", nargs="*", default=None, choices=list(SIZES))
    parser.add_argument("--repeats", type=int, default=1)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke subset: sizes {QUICK_SIZES} only",
    )
    parser.add_argument(
        "--output", default="BENCH_engine.json",
        help="path of the JSON report (default: %(default)s)",
    )
    parser.add_argument("--json", action="store_true", help="print the JSON payload to stdout")
    args = parser.parse_args(argv)

    sizes = args.sizes if args.sizes else (list(QUICK_SIZES) if args.quick else list(DEFAULT_SIZES))
    try:
        result = run_engine_bench(
            benchmarks=args.benchmarks,
            sizes=sizes,
            repeats=args.repeats,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
    except BenchmarkError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        payload = write_report(result, args.output, quick=args.quick)
    except OSError as exc:
        print(f"error: cannot write report to {args.output!r}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(result.to_table())
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
